"""repro — a reproduction of *Optimizing Queries with Aggregate Views*
(Surajit Chaudhuri and Kyuseok Shim, EDBT 1996).

The package implements the paper's contribution — cost-based
optimization of multi-block queries joining base tables and aggregate
views — together with every substrate it needs: a paginated storage
engine with page-IO accounting, a catalog with Selinger-style
statistics, a SQL frontend (including Kim-style unnesting of correlated
subqueries), the pull-up / push-down / coalescing transformations, an
IO-only cost model, and three optimizers (traditional two-phase, greedy
conservative, and the full Section 5 algorithm).

Quick start::

    from repro import Database

    db = Database()
    db.create_table("emp", [("eno", "int"), ("dno", "int"),
                            ("sal", "float"), ("age", "int")],
                    primary_key=["eno"])
    db.insert("emp", [(1, 0, 55.0, 21), (2, 0, 70.0, 45)])
    result = db.query(
        "select e1.sal from emp e1 "
        "where e1.age < 22 and e1.sal > "
        "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)"
    )
"""

from .db import Database, QueryResult, OPTIMIZERS
from .catalog.schema import Column
from .cost.params import CostParams
from .datatypes import DataType
from .errors import ReproError
from .optimizer.options import OptimizerOptions
from .optimizer.canonical import (
    OptimizationResult,
    optimize_query,
    optimize_traditional,
)
from .algebra.aggregates import AggregateFunction, register_aggregate
from .algebra.plan import explain

__version__ = "1.0.0"

__all__ = [
    "Database",
    "QueryResult",
    "OPTIMIZERS",
    "Column",
    "CostParams",
    "DataType",
    "ReproError",
    "OptimizerOptions",
    "OptimizationResult",
    "optimize_query",
    "optimize_traditional",
    "AggregateFunction",
    "register_aggregate",
    "explain",
    "__version__",
]
