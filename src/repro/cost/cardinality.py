"""Selectivity and cardinality estimation over column statistics.

Every plan node gets per-column metadata (:class:`ColMeta`) propagated
bottom-up. The base formulas are the classic System R ones —
``1/V(col)`` for equality with a literal, range fractions for
inequalities, ``1/max(V(a), V(b))`` for equi-joins, configurable
defaults elsewhere — refined by the distribution detail the statistics
subsystem collects:

- **Null fractions** discount equality/range/join selectivities by the
  non-null fraction (NULL compares to nothing and joins with nothing).
- **MCV lists** answer equality with a known-common literal exactly and
  split equi-join selectivity into a matched-MCV part and a residual
  (the Postgres ``eqjoinsel`` shape), which is where skewed join
  estimates stop being off by orders of magnitude.
- **Equi-depth histograms** answer range predicates by bucket
  interpolation instead of a straight line between min and max.

All refinements degrade exactly to the System R formulas when the
statistics carry no MCVs, no histogram, and no nulls — uniform data
costs nothing and estimates stay bit-identical to the uniform model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    FieldKey,
    Literal,
    Not,
    Or,
    comparison_with_literal,
    equijoin_sides,
)
from ..catalog.statistics import ColumnStats
from ..stats.histogram import EquiDepthHistogram
from .params import CostParams


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class ColMeta:
    """Estimator's knowledge about one column of an intermediate result.

    Field order up to ``max_value`` is public API (callers construct
    ``ColMeta(ndv, min_value, max_value)`` positionally); distribution
    fields append after it with neutral defaults.
    """

    ndv: float
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    null_frac: float = 0.0
    mcvs: Tuple[Tuple[Any, float], ...] = ()
    histogram: Optional[EquiDepthHistogram] = None

    @classmethod
    def from_stats(
        cls,
        stats: Optional[ColumnStats],
        rows: float,
        use_statistics: bool = True,
    ) -> "ColMeta":
        if (
            not use_statistics
            or stats is None
            or (stats.n_distinct == 0 and stats.null_count == 0)
        ):
            return cls(ndv=max(1.0, rows))
        if stats.n_distinct == 0:
            # All-NULL column: one "value class", everything filtered by
            # the null fraction.
            return cls(ndv=1.0, null_frac=1.0)
        low = stats.min_value if _is_number(stats.min_value) else None
        high = stats.max_value if _is_number(stats.max_value) else None
        return cls(
            ndv=float(stats.n_distinct),
            min_value=low,
            max_value=high,
            null_frac=stats.null_fraction(int(rows)),
            mcvs=stats.mcvs,
            histogram=stats.histogram,
        )

    def clamped(self, rows: float) -> "ColMeta":
        """Distinct values can never exceed the row count."""
        if 1.0 <= self.ndv <= rows:
            return self
        return ColMeta(
            max(1.0, min(self.ndv, rows)),
            self.min_value,
            self.max_value,
            self.null_frac,
            self.mcvs,
            self.histogram,
        )

    @property
    def mcv_total_fraction(self) -> float:
        return sum(fraction for _, fraction in self.mcvs)


ColMetaMap = Dict[FieldKey, ColMeta]

_UNKNOWN = ColMeta(ndv=1.0)


class CardinalityEstimator:
    """Stateless selectivity arithmetic over :class:`ColMeta` maps."""

    def __init__(self, params: CostParams):
        self.params = params

    # ------------------------------------------------------------------
    # Predicate selectivity
    # ------------------------------------------------------------------

    def selectivity(self, predicate: Expression, meta: ColMetaMap) -> float:
        """Estimated fraction of rows satisfying *predicate*."""
        if isinstance(predicate, And):
            result = 1.0
            for item in predicate.items:
                result *= self.selectivity(item, meta)
            return result
        if isinstance(predicate, Or):
            miss = 1.0
            for item in predicate.items:
                miss *= 1.0 - self.selectivity(item, meta)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.selectivity(predicate.item, meta))
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, meta)
        if isinstance(predicate, Literal):
            return 1.0 if predicate.value else 0.0
        return self.params.default_selectivity

    def _comparison_selectivity(
        self, predicate: Comparison, meta: ColMetaMap
    ) -> float:
        literal_form = comparison_with_literal(predicate)
        if literal_form is not None:
            key, op, value = literal_form
            return self._literal_selectivity(meta.get(key), op, value)
        sides = equijoin_sides(predicate)
        if sides is not None:
            return self.equijoin_selectivity(
                meta.get(sides[0]), meta.get(sides[1])
            )
        if (
            predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            or isinstance(predicate.right, ColumnRef)
        ):
            return self.params.default_selectivity
        return self.params.default_selectivity

    def eq_selectivity(self, column: Optional[ColMeta], value: Any) -> float:
        """Selectivity of ``col = value`` — the MCV-aware equality
        estimate, also used to size index probes with literal keys."""
        if column is None:
            return self.params.default_selectivity
        return self._eq_fraction(column, value) * (1.0 - column.null_frac)

    def _eq_fraction(self, column: ColMeta, value: Any) -> float:
        """Fraction of *non-null* rows equal to *value*."""
        for mcv_value, fraction in column.mcvs:
            if mcv_value == value:
                return fraction
        if column.mcvs:
            # Not a common value: the non-MCV mass spread over the
            # remaining distinct values (the Postgres "otherdistinct"
            # rule).
            other = max(0.0, 1.0 - column.mcv_total_fraction)
            remaining = max(1.0, column.ndv - len(column.mcvs))
            return other / remaining
        return 1.0 / max(1.0, column.ndv)

    def _literal_selectivity(
        self, column: Optional[ColMeta], op: str, value: object
    ) -> float:
        if column is None:
            return self.params.default_selectivity
        non_null = 1.0 - column.null_frac
        if op == "=":
            return self._eq_fraction(column, value) * non_null
        if op == "!=":
            return max(0.0, 1.0 - self._eq_fraction(column, value)) * non_null
        if not _is_number(value):
            return self.params.default_selectivity
        # Range predicate over the histogram (plus MCVs in range) when
        # the column has one; linear min/max interpolation otherwise.
        histogram = column.histogram
        if histogram is not None and histogram.fractions:
            return min(
                1.0, self._range_fraction(column, op, float(value))
            ) * non_null
        if (
            column.min_value is not None
            and column.max_value is not None
            and column.max_value > column.min_value
        ):
            span = float(column.max_value) - float(column.min_value)
            if op in ("<", "<="):
                fraction = (float(value) - float(column.min_value)) / span
            else:  # > or >=
                fraction = (float(column.max_value) - float(value)) / span
            floor = 1.0 / max(1.0, column.ndv)
            return min(1.0, max(floor, fraction)) * non_null
        return self.params.default_selectivity

    def _range_fraction(self, column: ColMeta, op: str, value: float) -> float:
        """Non-null fraction satisfying a range op, composing the MCV
        list with the histogram over the remaining values."""
        histogram = column.histogram
        assert histogram is not None
        if op == "<":
            base = histogram.fraction_below(value, inclusive=False)
        elif op == "<=":
            base = histogram.fraction_below(value, inclusive=True)
        elif op == ">":
            base = 1.0 - histogram.fraction_below(value, inclusive=True)
        else:  # >=
            base = 1.0 - histogram.fraction_below(value, inclusive=False)
        mcv_part = sum(
            fraction
            for mcv_value, fraction in column.mcvs
            if _is_number(mcv_value)
            and _op_holds(float(mcv_value), op, value)
        )
        other = max(0.0, 1.0 - column.mcv_total_fraction)
        return max(0.0, mcv_part + other * base)

    # ------------------------------------------------------------------
    # Join and grouping cardinalities
    # ------------------------------------------------------------------

    def equijoin_selectivity(
        self, left: Optional[ColMeta], right: Optional[ColMeta]
    ) -> float:
        """Selectivity of ``a = b`` across two inputs.

        With MCV lists on both sides, the estimate decomposes the way
        Postgres's ``eqjoinsel`` does: the matched common values
        contribute their exact frequency product, each side's unmatched
        common mass meets the other side's residual mass at one value's
        share, and the two residual masses meet at
        ``1/max(residual distinct counts)``. Without MCVs this is
        exactly ``1/max(V(a), V(b))``.
        """
        left = left or _UNKNOWN
        right = right or _UNKNOWN
        non_null = (1.0 - left.null_frac) * (1.0 - right.null_frac)
        if left.mcvs and right.mcvs:
            right_map = dict(right.mcvs)
            match = 0.0
            matched_left = 0.0
            matched_right = 0.0
            for value, fraction in left.mcvs:
                other = right_map.get(value)
                if other is not None:
                    match += fraction * other
                    matched_left += fraction
                    matched_right += other
            total_left = left.mcv_total_fraction
            total_right = right.mcv_total_fraction
            unmatched_left = max(0.0, total_left - matched_left)
            unmatched_right = max(0.0, total_right - matched_right)
            other_left = max(0.0, 1.0 - total_left)
            other_right = max(0.0, 1.0 - total_right)
            nd_left = max(1.0, left.ndv - len(left.mcvs))
            nd_right = max(1.0, right.ndv - len(right.mcvs))
            selectivity = (
                match
                + unmatched_left * other_right / nd_right
                + unmatched_right * other_left / nd_left
                + other_left * other_right / max(nd_left, nd_right)
            )
            return min(1.0, selectivity) * non_null
        return non_null / max(left.ndv, right.ndv, 1.0)

    def join_rows(
        self,
        left_rows: float,
        right_rows: float,
        equi_keys: Tuple[Tuple[FieldKey, FieldKey], ...],
        residuals: Tuple[Expression, ...],
        meta: ColMetaMap,
    ) -> float:
        rows = left_rows * right_rows
        for left_key, right_key in equi_keys:
            rows *= self.equijoin_selectivity(
                meta.get(left_key), meta.get(right_key)
            )
        for predicate in residuals:
            rows *= self.selectivity(predicate, meta)
        return max(0.0, rows)

    def group_rows(
        self,
        input_rows: float,
        group_keys: Tuple[FieldKey, ...],
        meta: ColMetaMap,
    ) -> float:
        """Estimated group count: product of key NDVs capped by rows."""
        if input_rows <= 0:
            return 0.0
        distinct = 1.0
        for key in group_keys:
            distinct *= meta[key].ndv if key in meta else input_rows
            if distinct >= input_rows:
                return input_rows
        return max(1.0, min(distinct, input_rows))

    def partial_group_rows(
        self,
        input_rows: float,
        group_keys: Tuple[FieldKey, ...],
        meta: ColMetaMap,
    ) -> Tuple[float, float]:
        """Estimated ``(groups, reduction)`` of an eager partial
        group-by below a join: the NDV-based group count of
        :meth:`group_rows` plus the collapse factor ``input_rows /
        groups`` (≥ 1.0). The optimizer's eager-aggregation step uses
        the reduction to skip generating alternatives the statistics
        say cannot shrink their input."""
        groups = self.group_rows(input_rows, group_keys, meta)
        if groups <= 0:
            return 0.0, 1.0
        return groups, max(1.0, input_rows / groups)

    def having_selectivity(
        self, predicate: Expression, meta: ColMetaMap
    ) -> float:
        """Selectivity of a HAVING conjunct. Conjuncts over grouping
        columns use normal statistics; anything touching an aggregate
        output falls back to the HAVING default."""
        known = all(key in meta for key in predicate.columns())
        if known:
            return self.selectivity(predicate, meta)
        return self.params.having_selectivity


def _op_holds(left: float, op: str, right: float) -> bool:
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right
