"""Selinger-style selectivity and cardinality estimation.

Every plan node gets per-column metadata (:class:`ColMeta`: distinct
count and numeric range) propagated bottom-up. Selectivities follow the
classic System R formulas: ``1/V(col)`` for equality with a literal,
range fractions for inequalities when min/max are known, ``1/max(V(a),
V(b))`` for equi-joins, and configurable defaults elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    FieldKey,
    Literal,
    Not,
    Or,
    comparison_with_literal,
    equijoin_sides,
)
from ..catalog.statistics import ColumnStats
from .params import CostParams


@dataclass(frozen=True)
class ColMeta:
    """Estimator's knowledge about one column of an intermediate result."""

    ndv: float
    min_value: Optional[float] = None
    max_value: Optional[float] = None

    @classmethod
    def from_stats(cls, stats: Optional[ColumnStats], rows: float) -> "ColMeta":
        if stats is None or stats.n_distinct == 0:
            return cls(ndv=max(1.0, rows))
        low = stats.min_value if isinstance(stats.min_value, (int, float)) else None
        high = stats.max_value if isinstance(stats.max_value, (int, float)) else None
        return cls(ndv=float(stats.n_distinct), min_value=low, max_value=high)

    def clamped(self, rows: float) -> "ColMeta":
        """Distinct values can never exceed the row count."""
        if 1.0 <= self.ndv <= rows:
            return self
        return ColMeta(
            max(1.0, min(self.ndv, rows)), self.min_value, self.max_value
        )


ColMetaMap = Dict[FieldKey, ColMeta]


class CardinalityEstimator:
    """Stateless selectivity arithmetic over :class:`ColMeta` maps."""

    def __init__(self, params: CostParams):
        self.params = params

    # ------------------------------------------------------------------
    # Predicate selectivity
    # ------------------------------------------------------------------

    def selectivity(self, predicate: Expression, meta: ColMetaMap) -> float:
        """Estimated fraction of rows satisfying *predicate*."""
        if isinstance(predicate, And):
            result = 1.0
            for item in predicate.items:
                result *= self.selectivity(item, meta)
            return result
        if isinstance(predicate, Or):
            miss = 1.0
            for item in predicate.items:
                miss *= 1.0 - self.selectivity(item, meta)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.selectivity(predicate.item, meta))
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, meta)
        if isinstance(predicate, Literal):
            return 1.0 if predicate.value else 0.0
        return self.params.default_selectivity

    def _comparison_selectivity(
        self, predicate: Comparison, meta: ColMetaMap
    ) -> float:
        literal_form = comparison_with_literal(predicate)
        if literal_form is not None:
            key, op, value = literal_form
            return self._literal_selectivity(meta.get(key), op, value)
        sides = equijoin_sides(predicate)
        if sides is not None:
            left_meta = meta.get(sides[0])
            right_meta = meta.get(sides[1])
            left_ndv = left_meta.ndv if left_meta else 1.0
            right_ndv = right_meta.ndv if right_meta else 1.0
            return 1.0 / max(left_ndv, right_ndv, 1.0)
        if (
            predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            or isinstance(predicate.right, ColumnRef)
        ):
            return self.params.default_selectivity
        return self.params.default_selectivity

    def _literal_selectivity(
        self, column: Optional[ColMeta], op: str, value: object
    ) -> float:
        if column is None:
            return self.params.default_selectivity
        if op == "=":
            return 1.0 / max(1.0, column.ndv)
        if op == "!=":
            return max(0.0, 1.0 - 1.0 / max(1.0, column.ndv))
        # Range predicate: interpolate when the column range is known.
        if (
            isinstance(value, (int, float))
            and column.min_value is not None
            and column.max_value is not None
            and column.max_value > column.min_value
        ):
            span = float(column.max_value) - float(column.min_value)
            if op in ("<", "<="):
                fraction = (float(value) - float(column.min_value)) / span
            else:  # > or >=
                fraction = (float(column.max_value) - float(value)) / span
            return min(1.0, max(1.0 / max(1.0, column.ndv), fraction))
        return self.params.default_selectivity

    # ------------------------------------------------------------------
    # Join and grouping cardinalities
    # ------------------------------------------------------------------

    def join_rows(
        self,
        left_rows: float,
        right_rows: float,
        equi_keys: Tuple[Tuple[FieldKey, FieldKey], ...],
        residuals: Tuple[Expression, ...],
        meta: ColMetaMap,
    ) -> float:
        rows = left_rows * right_rows
        for left_key, right_key in equi_keys:
            left_ndv = meta[left_key].ndv if left_key in meta else 1.0
            right_ndv = meta[right_key].ndv if right_key in meta else 1.0
            rows /= max(left_ndv, right_ndv, 1.0)
        for predicate in residuals:
            rows *= self.selectivity(predicate, meta)
        return max(0.0, rows)

    def group_rows(
        self,
        input_rows: float,
        group_keys: Tuple[FieldKey, ...],
        meta: ColMetaMap,
    ) -> float:
        """Estimated group count: product of key NDVs capped by rows."""
        if input_rows <= 0:
            return 0.0
        distinct = 1.0
        for key in group_keys:
            distinct *= meta[key].ndv if key in meta else input_rows
            if distinct >= input_rows:
                return input_rows
        return max(1.0, min(distinct, input_rows))

    def having_selectivity(
        self, predicate: Expression, meta: ColMetaMap
    ) -> float:
        """Selectivity of a HAVING conjunct. Conjuncts over grouping
        columns use normal statistics; anything touching an aggregate
        output falls back to the HAVING default."""
        known = all(key in meta for key in predicate.columns())
        if known:
            return self.selectivity(predicate, meta)
        return self.params.having_selectivity
