"""Tunable parameters shared by the cost model and the executor.

The executor consumes these too: spill decisions (hash tables or sorts
that exceed ``memory_pages``) are *charged* at execution time with the
same formulas the cost model uses for estimation, keeping the two IO
numbers comparable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostParams:
    """Knobs of the IO cost model.

    - ``memory_pages``: buffer pool pages available to one operator
      (block nested-loop blocking factor, sort run size, hash build
      threshold).
    - ``default_selectivity``: fallback predicate selectivity when
      statistics cannot say better (System R's 1/3-style default).
    - ``having_selectivity``: fallback selectivity of a HAVING conjunct
      over aggregate outputs, where no column statistics exist.
    - ``cpu_tuple_weight``: cost units charged per tuple an operator
      produces, on top of page IO. Zero (the default) is the paper's
      IO-only model (Section 5); a positive weight is the paper's
      "weighted combination of CPU and IO cost" adaptation. Executed
      weighted cost can be recomputed from per-node actual row counts.
    - ``cpu_cell_weight``: cost units charged per *cell* (tuple ×
      live output column) an operator produces — the width-aware emit
      term. The columnar engine pays per surviving cell in its
      counts-encoded join expansion, so a positive weight lets the DP
      prefer join orders that keep wide columns below
      duplicate-expanding joins. Zero (the default) keeps the paper's
      IO-only objective.
    """

    memory_pages: int = 64
    default_selectivity: float = 1.0 / 3.0
    having_selectivity: float = 1.0 / 3.0
    cpu_tuple_weight: float = 0.0
    cpu_cell_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_pages < 3:
            raise ValueError("memory_pages must be at least 3")
        if not 0.0 < self.default_selectivity <= 1.0:
            raise ValueError("default_selectivity must be in (0, 1]")
        if not 0.0 < self.having_selectivity <= 1.0:
            raise ValueError("having_selectivity must be in (0, 1]")
        if self.cpu_tuple_weight < 0.0:
            raise ValueError("cpu_tuple_weight must be non-negative")
        if self.cpu_cell_weight < 0.0:
            raise ValueError("cpu_cell_weight must be non-negative")
