"""The IO-only cost model: annotates plans with cardinality and cost.

For every operator the model charges the same formulas the executor
charges at runtime (``repro.engine.spill`` holds the shared spill
arithmetic), evaluated over *estimated* page counts. ``PlanProps``
carries the derived properties the paper's algorithms consume:

- ``rows`` / ``pages`` — data-reduction effects of group-by placement;
- ``width`` — the projection-size disadvantage of pull-up (Section 3)
  and the greedy conservative heuristic's width guard (Section 5.2);
- ``order`` — interesting orders (grouping columns, join columns);
- ``cost`` — cumulative page IO, the optimizer's objective;
- ``colmeta`` — per-column distinct counts and ranges for downstream
  selectivity estimation.

The model satisfies the principle of optimality the paper assumes
(Section 5): a node's cost is its children's cost plus a local charge.
"""

from __future__ import annotations

import math
from dataclasses import (
    dataclass,
    field as dataclass_field,
    replace as dataclass_replace,
)
from typing import Dict, Optional, Tuple

from ..algebra.expressions import FieldKey
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
    SubqueryMarkNode,
)
from ..catalog.catalog import Catalog
from ..catalog.schema import RID_COLUMN
from ..engine.spill import (
    external_sort_extra_io,
    hash_group_extra_io,
    hash_spill_extra_io,
    nlj_blocks,
)
from ..errors import PlanError
from ..storage.page import pages_for
from .cardinality import CardinalityEstimator, ColMeta, ColMetaMap
from .params import CostParams


@dataclass
class PlanProps:
    """Derived properties of an annotated plan node."""

    rows: float
    width: int
    pages: float
    cost: float
    order: Tuple[FieldKey, ...] = ()
    colmeta: ColMetaMap = dataclass_field(default_factory=dict)

    @property
    def total_width_bytes(self) -> float:
        return self.rows * self.width


def executed_weighted_cost(
    plan: PlanNode, params: CostParams, executed_io: int
) -> float:
    """The executed counterpart of the weighted CPU+IO objective:
    measured page IO plus the CPU weight times the *actual* tuples each
    operator produced (recorded by the executor)."""
    from ..algebra.plan import plan_nodes

    cpu_tuples = sum(
        node.actual_rows or 0 for node in plan_nodes(plan)
    )
    return executed_io + params.cpu_tuple_weight * cpu_tuples


def estimated_pages(rows: float, width: int) -> float:
    """Fractional page estimate consistent with storage pagination."""
    return float(pages_for(int(math.ceil(max(0.0, rows))), width))


class CostModel:
    """Annotates plan trees bottom-up with :class:`PlanProps`."""

    def __init__(
        self,
        catalog: Catalog,
        params: Optional[CostParams] = None,
        use_statistics: bool = True,
    ):
        self.catalog = catalog
        self.params = params or CostParams()
        self.estimator = CardinalityEstimator(self.params)
        # The statistics ablation (OptimizerOptions.use_statistics=False):
        # row/page counts stay real (they size the IO formulas), but
        # every column falls back to the unknown-stats default.
        self.use_statistics = use_statistics

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def annotate(self, plan: PlanNode) -> PlanProps:
        """Annotate *plan* assuming its children are already annotated."""
        if isinstance(plan, ScanNode):
            props = self._annotate_scan(plan)
        elif isinstance(plan, JoinNode):
            props = self._annotate_join(plan)
        elif isinstance(plan, GroupByNode):
            props = self._annotate_group_by(plan)
        elif isinstance(plan, SortNode):
            props = self._annotate_sort(plan)
        elif isinstance(plan, RenameNode):
            props = self._annotate_rename(plan)
        elif isinstance(plan, ProjectNode):
            props = self._annotate_project(plan)
        elif isinstance(plan, FilterNode):
            props = self._annotate_filter(plan)
        elif isinstance(plan, SubqueryMarkNode):
            props = self._annotate_mark(plan)
        elif isinstance(plan, LimitNode):
            props = self._annotate_limit(plan)
        else:
            raise PlanError(f"cannot cost node type {type(plan).__name__}")
        if self.params.cpu_tuple_weight:
            # the Section 5 adaptation: weighted CPU + IO objective
            props.cost += self.params.cpu_tuple_weight * props.rows
        if self.params.cpu_cell_weight:
            # width-aware emit term: every live output column of every
            # produced tuple costs one cell — what the columnar engine's
            # counts-encoded expansion actually pays per surviving cell
            props.cost += (
                self.params.cpu_cell_weight * props.rows * len(plan.schema)
            )
        plan.props = props
        return props

    def annotate_tree(self, plan: PlanNode) -> PlanProps:
        """Annotate a whole (possibly hand-built) plan tree."""
        for child in plan.children:
            self.annotate_tree(child)
        return self.annotate(plan)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def _annotate_scan(self, plan: ScanNode) -> PlanProps:
        stats = self.catalog.stats(plan.table_name)
        table_rows = float(stats.row_count)
        meta: ColMetaMap = {}
        table = self.catalog.table(plan.table_name)
        for column in table.columns:
            meta[(plan.alias, column.name)] = ColMeta.from_stats(
                stats.column(column.name),
                table_rows,
                use_statistics=self.use_statistics,
            )
        meta[(plan.alias, RID_COLUMN)] = ColMeta(ndv=max(1.0, table_rows))

        selectivity = 1.0
        for predicate in plan.filters:
            selectivity *= self.estimator.selectivity(predicate, meta)

        order: Tuple[FieldKey, ...] = ()
        if plan.index_name is not None:
            info = self.catalog.info(plan.table_name)
            index = info.indexes.get(plan.index_name)
            if index is None:
                raise PlanError(
                    f"unknown index {plan.index_name!r} in scan of "
                    f"{plan.table_name!r}"
                )
            # Equality probe: traversal (which reaches the first leaf) +
            # extra leaf pages + one data page per matching tuple
            # (unclustered discipline, mirroring OrderedIndex charging).
            # With a literal probe value the match count is MCV-aware:
            # probing a known-hot key is priced at its real frequency,
            # not the 1/NDV average.
            eq_meta = meta.get((plan.alias, index.column_names[0]))
            if plan.index_values and eq_meta is not None:
                matches = table_rows * self.estimator.eq_selectivity(
                    eq_meta, plan.index_values[0]
                )
            else:
                matches = table_rows / max(
                    1.0, eq_meta.ndv if eq_meta else 1.0
                )
            extra_leaves = max(
                0.0, math.ceil(matches / index.entries_per_page) - 1
            )
            cost = index.height + extra_leaves + matches
            order = tuple((plan.alias, name) for name in index.column_names)
            # The probe predicate was consumed into ``index_values`` by
            # the access-path builder, so it is absent from
            # ``plan.filters``: the output estimate starts from the
            # probe's matches, then applies the residual filters.
            rows = matches * selectivity
        else:
            cost = float(stats.page_count)
            rows = table_rows * selectivity

        out_meta = {
            key: value.clamped(rows)
            for key, value in meta.items()
            if plan.schema.has(*key)
        }
        return PlanProps(
            rows=rows,
            width=plan.schema.width,
            pages=estimated_pages(rows, plan.schema.width),
            cost=cost,
            order=order,
            colmeta=out_meta,
        )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def _annotate_join(self, plan: JoinNode) -> PlanProps:
        left = plan.left.props
        right = plan.right.props
        if left is None or (right is None and plan.method != "inlj"):
            raise PlanError("join children must be annotated first")

        meta: ColMetaMap = dict(left.colmeta)
        if plan.method == "inlj":
            right_meta, right_rows = self._inner_scan_meta(plan)
            meta.update(right_meta)
        else:
            meta.update(right.colmeta)
            right_rows = right.rows

        inner_rows = self.estimator.join_rows(
            left.rows, right_rows, plan.equi_keys, plan.residuals, meta
        )
        if plan.kind == "inner":
            rows = inner_rows
        else:
            # Non-inner kinds derive from the inner-match estimate: a
            # semi join keeps at most one output per left row (and never
            # more than the matches), an anti join keeps the rest, a
            # LEFT outer join emits the matches plus one NULL-padded row
            # per unmatched left row.
            semi = min(left.rows, inner_rows)
            anti = max(0.0, left.rows - semi)
            if plan.kind == "semi":
                rows = semi
            elif plan.kind == "anti":
                rows = anti
            else:  # left outer
                rows = inner_rows + anti
        # Equality propagates the smaller NDV to both sides (each side
        # keeps its own distribution detail — range, nulls, MCVs).
        for left_key, right_key in plan.equi_keys:
            if left_key in meta and right_key in meta:
                shared = min(meta[left_key].ndv, meta[right_key].ndv)
                meta[left_key] = dataclass_replace(
                    meta[left_key], ndv=shared
                )
                meta[right_key] = dataclass_replace(
                    meta[right_key], ndv=shared
                )

        cost, order = self._join_cost(plan, left, right, rows)
        # Order is only meaningful as a prefix of columns the join still
        # outputs: a pruned projection may drop a sort/join key the
        # moment no ancestor references it.
        out_order: list = []
        for key in order:
            if plan.schema.has(*key):
                out_order.append(key)
            else:
                break
        order = tuple(out_order)

        out_meta = {
            key: value.clamped(rows)
            for key, value in meta.items()
            if plan.schema.has(*key)
        }
        return PlanProps(
            rows=rows,
            width=plan.schema.width,
            pages=estimated_pages(rows, plan.schema.width),
            cost=cost,
            order=order,
            colmeta=out_meta,
        )

    def _inner_scan_meta(self, plan: JoinNode):
        """Column metadata of an INLJ inner (never fully scanned)."""
        inner = plan.right
        if not isinstance(inner, ScanNode):
            raise PlanError("index NLJ requires a base-table inner scan")
        stats = self.catalog.stats(inner.table_name)
        table = self.catalog.table(inner.table_name)
        table_rows = float(stats.row_count)
        meta: ColMetaMap = {}
        for column in table.columns:
            meta[(inner.alias, column.name)] = ColMeta.from_stats(
                stats.column(column.name),
                table_rows,
                use_statistics=self.use_statistics,
            )
        meta[(inner.alias, RID_COLUMN)] = ColMeta(ndv=max(1.0, table_rows))
        selectivity = 1.0
        for predicate in inner.filters:
            selectivity *= self.estimator.selectivity(predicate, meta)
        return meta, table_rows * selectivity

    def _join_cost(self, plan, left, right, rows):
        memory = self.params.memory_pages
        method = plan.method

        if method == "hj":
            extra = hash_spill_extra_io(right.pages, left.pages, memory)
            return left.cost + right.cost + extra, ()

        if method == "smj":
            left_keys = tuple(pair[0] for pair in plan.equi_keys)
            right_keys = tuple(pair[1] for pair in plan.equi_keys)
            cost = left.cost + right.cost
            if left.order[: len(left_keys)] != left_keys:
                cost += external_sort_extra_io(left.pages, memory)
            if right.order[: len(right_keys)] != right_keys:
                cost += external_sort_extra_io(right.pages, memory)
            return cost, left_keys

        if method == "inlj":
            inner = plan.right
            info = self.catalog.info(inner.table_name)
            index = info.indexes.get(plan.index_name or "")
            if index is None:
                raise PlanError(
                    f"unknown index {plan.index_name!r} for index NLJ"
                )
            stats = self.catalog.stats(inner.table_name)
            table_rows = float(stats.row_count)
            key_meta = ColMeta.from_stats(
                stats.column(index.column_names[0]),
                table_rows,
                use_statistics=self.use_statistics,
            )
            matches = table_rows / max(1.0, key_meta.ndv)
            extra_leaves = max(
                0.0, math.ceil(matches / index.entries_per_page) - 1
            )
            probe_cost = index.height + extra_leaves + matches
            return left.cost + left.rows * probe_cost, left.order

        # Block nested-loop join.
        blocks = nlj_blocks(left.pages, memory)
        inner_is_scan = (
            isinstance(plan.right, ScanNode) and plan.right.index_name is None
        )
        cache_pages = max(1, memory - 2)
        if inner_is_scan:
            table_pages = float(self.catalog.stats(plan.right.table_name).page_count)
            if table_pages <= cache_pages or blocks == 1:
                inner_cost = right.cost  # single scan (cached or one block)
            else:
                inner_cost = right.cost + (blocks - 1) * table_pages
        else:
            if right.pages <= cache_pages:
                inner_cost = right.cost
            else:
                inner_cost = right.cost + right.pages + blocks * right.pages
        return left.cost + inner_cost, left.order

    # ------------------------------------------------------------------
    # Group-by, sort, rename
    # ------------------------------------------------------------------

    def _annotate_group_by(self, plan: GroupByNode) -> PlanProps:
        child = plan.child.props
        if child is None:
            raise PlanError("group-by child must be annotated first")
        meta = dict(child.colmeta)
        groups = self.estimator.group_rows(child.rows, plan.group_keys, meta)

        internal_width = plan.internal_schema.width
        if plan.method == "sort":
            child_keys = set(plan.group_keys)
            prefix = set(child.order[: len(plan.group_keys)])
            if prefix != child_keys:
                raise PlanError(
                    "sort-based group-by requires input ordered on the "
                    "grouping columns (insert a SortNode)"
                )
            extra = 0.0
            order = child.order
        else:
            extra = hash_group_extra_io(
                child.pages,
                estimated_pages(groups, internal_width),
                self.params.memory_pages,
            )
            order = ()

        # aggregate outputs: one distinct value per group at worst
        for name, _call in plan.aggregates:
            meta[(None, name)] = ColMeta(ndv=max(1.0, groups))
        for key in plan.group_keys:
            if key in meta:
                meta[key] = meta[key].clamped(groups)

        rows = groups
        for predicate in plan.having:
            rows *= self.estimator.having_selectivity(predicate, meta)

        out_meta = {
            key: value.clamped(rows)
            for key, value in meta.items()
            if plan.schema.has(*key)
        }
        out_order = tuple(
            key for key in order if plan.schema.has(*key)
        ) if order else ()
        return PlanProps(
            rows=rows,
            width=plan.schema.width,
            pages=estimated_pages(rows, plan.schema.width),
            cost=child.cost + extra,
            order=out_order,
            colmeta=out_meta,
        )

    def _annotate_sort(self, plan: SortNode) -> PlanProps:
        child = plan.child.props
        if child is None:
            raise PlanError("sort child must be annotated first")
        ascending_only = not any(plan.descending)
        if ascending_only and child.order[: len(plan.keys)] == plan.keys:
            extra = 0.0
        else:
            extra = external_sort_extra_io(
                child.pages, self.params.memory_pages
            )
        return PlanProps(
            rows=child.rows,
            width=child.width,
            pages=child.pages,
            cost=child.cost + extra,
            order=plan.keys if ascending_only else (),
            colmeta=dict(child.colmeta),
        )

    def _annotate_limit(self, plan: LimitNode) -> PlanProps:
        child = plan.child.props
        if child is None:
            raise PlanError("limit child must be annotated first")
        rows = min(child.rows, float(plan.count))
        return PlanProps(
            rows=rows,
            width=child.width,
            pages=estimated_pages(rows, child.width),
            cost=child.cost,
            order=child.order,
            colmeta={
                key: value.clamped(rows)
                for key, value in child.colmeta.items()
            },
        )

    def _annotate_filter(self, plan: FilterNode) -> PlanProps:
        child = plan.child.props
        if child is None:
            raise PlanError("filter child must be annotated first")
        selectivity = 1.0
        for predicate in plan.predicates:
            selectivity *= self.estimator.having_selectivity(
                predicate, child.colmeta
            )
        rows = child.rows * selectivity
        meta = {
            key: value.clamped(rows)
            for key, value in child.colmeta.items()
        }
        return PlanProps(
            rows=rows,
            width=child.width,
            pages=estimated_pages(rows, child.width),
            cost=child.cost,
            order=child.order,
            colmeta=meta,
        )

    def _annotate_mark(self, plan: SubqueryMarkNode) -> PlanProps:
        child = plan.child.props
        inner = plan.inner.props
        if child is None or inner is None:
            raise PlanError("subquery mark children must be annotated first")
        # The fallback re-scans the materialized inner per outer row —
        # a pure CPU charge (the inner is read from memory), priced per
        # inner tuple touched so flattened plans win whenever they can.
        probe_cpu = (
            self.params.cpu_tuple_weight * child.rows * max(1.0, inner.rows)
        )
        rows = child.rows * self.params.default_selectivity
        meta = {
            key: value.clamped(rows)
            for key, value in child.colmeta.items()
        }
        return PlanProps(
            rows=rows,
            width=child.width,
            pages=estimated_pages(rows, child.width),
            cost=child.cost + inner.cost + probe_cpu,
            order=child.order,
            colmeta=meta,
        )

    def _annotate_project(self, plan: ProjectNode) -> PlanProps:
        child = plan.child.props
        if child is None:
            raise PlanError("project child must be annotated first")
        from ..algebra.expressions import ColumnRef

        meta: ColMetaMap = {}
        order = []
        copied = {}  # child key -> output key, for plain column copies
        for alias, name, expression in plan.outputs:
            if isinstance(expression, ColumnRef) and expression.key in child.colmeta:
                meta[(alias, name)] = child.colmeta[expression.key]
                copied[expression.key] = (alias, name)
            else:
                meta[(alias, name)] = ColMeta(ndv=max(1.0, child.rows))
        for key in child.order:
            if key in copied:
                order.append(copied[key])
            else:
                break
        return PlanProps(
            rows=child.rows,
            width=plan.schema.width,
            pages=estimated_pages(child.rows, plan.schema.width),
            cost=child.cost,
            order=tuple(order),
            colmeta=meta,
        )

    def _annotate_rename(self, plan: RenameNode) -> PlanProps:
        child = plan.child.props
        if child is None:
            raise PlanError("rename child must be annotated first")
        remap = {
            source: (new_alias, new_name)
            for new_alias, new_name, source in plan.mapping
        }
        meta = {
            remap[key]: value
            for key, value in child.colmeta.items()
            if key in remap
        }
        order = []
        for key in child.order:
            if key in remap:
                order.append(remap[key])
            else:
                break  # order is only meaningful as a prefix
        return PlanProps(
            rows=child.rows,
            width=plan.schema.width,
            pages=estimated_pages(child.rows, plan.schema.width),
            cost=child.cost,
            order=tuple(order),
            colmeta=meta,
        )
