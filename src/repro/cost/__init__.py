"""IO-only cost model and Selinger-style cardinality estimation.

"The optimization algorithm that we present minimizes IO cost. This is a
reasonable criteria in the context of decision-support applications"
(Section 5). Costs count 4096-byte page reads and writes; the physical
operators in :mod:`repro.engine` charge the *same* formulas against
actual intermediate sizes, so estimated and executed IO are directly
comparable (benchmark E12 quantifies the gap).
"""

from .params import CostParams
from .cardinality import CardinalityEstimator
from .model import CostModel, PlanProps

__all__ = ["CostParams", "CardinalityEstimator", "CostModel", "PlanProps"]
