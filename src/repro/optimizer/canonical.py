"""Optimization of canonical queries (Figure 3) — Sections 5.1–5.4.

Two entry points:

- :func:`optimize_traditional` — the two-phase baseline of Section 5.1:
  every aggregate view optimized locally (Selinger DP, group-by after
  all joins), then a linear join order over base tables and view
  results, with the outer group-by last.
- :func:`optimize_query` — the paper's algorithm:

  1. reduce each view to its minimal invariant set V′ (Section 4.1),
     moving V − V′ into the outer block (B′ = B ∪ ⋃(Vᵢ − Vᵢ′));
  2. enumerate pull-up sets Wᵢ ⊆ B′ per view — restricted to
     predicate-connected sets of size ≤ k (the paper's two search-space
     restrictions), always including ∅ and the "restore" set Vᵢ − Vᵢ′
     (which reproduces the traditional view boundary and anchors the
     no-worse guarantee);
  3. for each consistent (pairwise-disjoint) combination, build the
     pulled-up queries Φ(Vᵢ′, Wᵢ) via the pull-up transformation,
     optimize each with the greedy-conservative DP, then optimize the
     outer block over the Φ results and the remaining B′ relations;
  4. return the cheapest plan over all combinations — never worse than
     the traditional plan, which is explicitly costed as a baseline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..algebra.expressions import ColumnRef, Expression, FieldKey
from ..algebra.plan import LimitNode, PlanNode, RenameNode, SortNode
from ..algebra.query import (
    AggregateView,
    CanonicalQuery,
    QueryBlock,
    SubquerySpec,
)
from ..catalog.catalog import Catalog
from ..cost.params import CostParams
from ..errors import PlanError
from ..transforms.decorrelate import decorrelate_query
from ..transforms.invariant import split_view
from ..transforms.propagate import propagate_predicates
from ..transforms.pullup import pull_up
from ..views.matcher import match_view
from ..views.rewrite import build_rewrite_plan
from .block import BaseLeaf, BlockOptimizer, DerivedLeaf, GroupingSpec, Leaf
from .joingraph import JoinGraph
from .options import OptimizerOptions
from .pruning import prune_plan
from .stats import SearchStats


@dataclass
class OptimizationResult:
    """The chosen plan plus the search's paper-trail."""

    plan: PlanNode
    cost: float
    stats: SearchStats
    pull_choices: Dict[str, Tuple[str, ...]] = dataclass_field(
        default_factory=dict
    )
    # every enumerated combination: ({view: W}, total estimated cost)
    alternatives: List[Tuple[Dict[str, Tuple[str, ...]], float]] = (
        dataclass_field(default_factory=list)
    )
    traditional_cost: Optional[float] = None

    @property
    def improvement_over_traditional(self) -> Optional[float]:
        if self.traditional_cost is None or self.cost <= 0:
            return None
        return self.traditional_cost / self.cost


def _block_spec(block: QueryBlock) -> Optional[GroupingSpec]:
    if not block.is_grouped:
        return None
    return GroupingSpec(
        group_keys=tuple(ref.key for ref in block.group_by),
        aggregates=block.aggregates,
        having=block.having,
    )


def _query_spec(query: CanonicalQuery) -> Optional[GroupingSpec]:
    if not query.is_grouped:
        return None
    return GroupingSpec(
        group_keys=tuple(ref.key for ref in query.group_by),
        aggregates=query.aggregates,
        having=query.having,
    )


def _maybe_rewrite_block(
    block: QueryBlock, plan: PlanNode, optimizer: BlockOptimizer
) -> PlanNode:
    """Cost-based adoption of materialized-view rewrites: each legal
    match (``views.matcher``) yields an alternative backing-table plan
    for the same block (``views.rewrite``), kept only if cheaper under
    the cost model — the rewrite is an extra leaf alternative, never a
    forced substitution."""
    if not optimizer.options.enable_view_rewrite:
        return plan
    views = optimizer.catalog.materialized_views()
    if not views:
        return plan
    best = plan
    for view in views:
        match = match_view(block, view)
        if match is None:
            continue
        optimizer.stats.view_rewrites_considered += 1
        candidate = build_rewrite_plan(match, block, optimizer.model)
        if candidate.props.cost < best.props.cost:
            best = candidate
    if best is not plan:
        optimizer.stats.view_rewrites_adopted += 1
    return best


def _optimize_view(
    view: AggregateView, optimizer: BlockOptimizer
) -> DerivedLeaf:
    """Optimize a view's block and expose it under the view alias."""
    block = view.block
    plan = optimizer.optimize_block(
        leaves=[BaseLeaf(ref) for ref in block.relations],
        predicates=block.predicates,
        spec=_block_spec(block),
        select=block.select,
    )
    plan = _maybe_rewrite_block(block, plan, optimizer)
    rename = RenameNode(
        plan,
        [
            (view.alias, name, (None, name))
            for name, _ in block.select
        ],
    )
    optimizer.model.annotate(rename)
    return DerivedLeaf(alias=view.alias, plan=rename)


def _mark_inner_plan(
    spec: SubquerySpec, optimizer: BlockOptimizer
) -> PlanNode:
    """Plan an unflattened spec's inner side for mark-join execution:
    optimize its relations and local predicates as an ordinary block,
    then rename the outputs back to their qualified inner columns so
    the mark node's correlation / value / aggregate expressions
    resolve against the materialized rows."""
    needed: set = set()
    for inner, _ in spec.correlations:
        needed |= set(inner.columns())
    if spec.value is not None:
        needed |= set(spec.value.columns())
    if spec.aggregate is not None:
        needed |= set(spec.aggregate.columns())
    keys: List[FieldKey] = sorted(
        key for key in needed if key[0] is not None
    )
    if not keys:
        # e.g. uncorrelated EXISTS / COUNT(*): any column gives shape.
        relation = spec.relations[0]
        table = optimizer.catalog.table(relation.table)
        keys = [(relation.alias, table.columns[0].name)]
    select = [
        (f"{alias}__{name}", ColumnRef(alias, name)) for alias, name in keys
    ]
    plan = optimizer.optimize_block(
        leaves=[BaseLeaf(ref) for ref in spec.relations],
        predicates=spec.local_predicates,
        spec=None,
        select=select,
    )
    rename = RenameNode(
        plan,
        [
            (alias, name, (None, f"{alias}__{name}"))
            for alias, name in keys
        ],
    )
    optimizer.model.annotate(rename)
    return rename


def _optimize_outer(
    query: CanonicalQuery,
    derived: Sequence[DerivedLeaf],
    optimizer: BlockOptimizer,
) -> PlanNode:
    leaves: List[Leaf] = [BaseLeaf(ref) for ref in query.base_tables]
    leaves.extend(derived)
    for unit in query.joins:
        if unit.table is not None:
            leaves.append(BaseLeaf(unit.table))
    # WHERE conjuncts over a LEFT unit's columns must see the padded
    # join output (a residual inside an outer join is a match
    # condition, not a filter): route them to the post-join stage.
    left_aliases = frozenset(
        unit.alias for unit in query.joins if unit.kind == "left"
    )
    post_predicates: List[Expression] = []
    dp_predicates: List[Expression] = []
    for predicate in query.predicates:
        if predicate.aliases() & left_aliases:
            post_predicates.append(predicate)
        else:
            dp_predicates.append(predicate)
    marks = tuple(
        (spec, _mark_inner_plan(spec, optimizer))
        for spec in query.subqueries
    )
    plan = optimizer.optimize_block(
        leaves=leaves,
        predicates=dp_predicates,
        spec=_query_spec(query),
        select=query.select,
        join_units=query.joins,
        post_predicates=tuple(post_predicates),
        marks=marks,
    )
    if (
        not derived
        and query.base_tables
        and query.is_grouped
        and not query.joins
        and not query.subqueries
    ):
        # A grouped query over base tables only is itself a candidate
        # for answering from a materialized view.
        outer_block = QueryBlock(
            relations=query.base_tables,
            predicates=query.predicates,
            group_by=query.group_by,
            aggregates=query.aggregates,
            having=query.having,
            select=query.select,
        )
        plan = _maybe_rewrite_block(outer_block, plan, optimizer)
    return _apply_presentation(plan, query, optimizer)


def _apply_presentation(
    plan: PlanNode, query: CanonicalQuery, optimizer: BlockOptimizer
) -> PlanNode:
    """Wrap the block plan with the query's ORDER BY / LIMIT."""
    if query.order_by:
        plan = SortNode(
            plan,
            keys=[(None, name) for name, _ in query.order_by],
            descending=[descending for _, descending in query.order_by],
        )
        optimizer.model.annotate(plan)
    if query.limit is not None:
        plan = LimitNode(plan, query.limit)
        optimizer.model.annotate(plan)
    return plan


def optimize_traditional(
    query: CanonicalQuery,
    catalog: Catalog,
    params: Optional[CostParams] = None,
    propagate: bool = True,
    options: Optional[OptimizerOptions] = None,
    decorrelate: bool = True,
) -> OptimizationResult:
    """The Section 5.1 baseline: local view optimization, then a linear
    join order treating the views as base relations, group-bys last.

    Predicate propagation across blocks runs first — the paper's
    premise is that traditional optimizers already do that much
    ([MFPR90, LMS94], Section 1); ``propagate=False`` ablates it.
    Only the ``enable_view_rewrite`` and ``enable_projection_pruning``
    knobs are honored from *options*: the rest of the baseline's
    behavior is fixed by definition. ``decorrelate=False`` skips
    subquery flattening for callers that already decorrelated (the
    full optimizer's baseline comparison)."""
    stats = SearchStats()
    if decorrelate:
        query = decorrelate_query(query, options, stats)
    if propagate:
        query = propagate_predicates(query)
    baseline_options = OptimizerOptions(
        enable_view_rewrite=(
            options.enable_view_rewrite if options is not None else True
        ),
        enable_projection_pruning=(
            options.enable_projection_pruning if options is not None else True
        ),
        # mode="traditional" never reaches the eager branches; stated
        # here so the baseline's options read as what it actually does
        enable_eager_aggregation=False,
    )
    optimizer = BlockOptimizer(
        catalog, params, baseline_options, mode="traditional", stats=stats
    )
    derived = [_optimize_view(view, optimizer) for view in query.views]
    plan = _optimize_outer(query, derived, optimizer)
    if baseline_options.enable_projection_pruning:
        # View boundaries: the block DP optimized each view for all of
        # its declared outputs; the lifetime pass narrows them to what
        # the outer block actually consumes.
        plan = prune_plan(plan, model=optimizer.model, stats=stats)
    return OptimizationResult(
        plan=plan,
        cost=plan.props.cost,
        stats=stats,
        pull_choices={view.alias: () for view in query.views},
    )


def optimize_query(
    query: CanonicalQuery,
    catalog: Catalog,
    params: Optional[CostParams] = None,
    options: Optional[OptimizerOptions] = None,
) -> OptimizationResult:
    """The full cost-based algorithm of Sections 5.3/5.4."""
    options = options or OptimizerOptions()
    stats = SearchStats()
    optimizer = BlockOptimizer(
        catalog, params, options, mode="greedy", stats=stats
    )

    # Step 0a: flatten subqueries into join units / grouped views (Kim-
    # style decorrelation); unflattenable specs stay behind as marks.
    query = decorrelate_query(query, options, stats)
    # Join units and mark subqueries pin the outer block's shape: the
    # invariant-split / pull-up machinery assumes a pure inner-join
    # outer block, so both stay off when units are present.
    has_units = bool(query.joins) or bool(query.subqueries)

    # Step 0b: [LMS94]-style predicate propagation (the preprocessing
    # the paper assumes of every optimizer, Section 1).
    if options.enable_predicate_propagation:
        query = propagate_predicates(query)

    # Step 1: minimal invariant sets (B' construction).
    working = query
    restore_sets: Dict[str, Tuple[str, ...]] = {}
    if options.enable_invariant_split and query.views and not has_units:
        new_views: List[AggregateView] = []
        extra_tables = []
        extra_predicates: List[Expression] = []
        for view in query.views:
            reduced, moved, join_back = split_view(view, catalog)
            new_views.append(reduced)
            extra_tables.extend(moved)
            extra_predicates.extend(join_back)
            restore_sets[view.alias] = tuple(ref.alias for ref in moved)
        if extra_tables:
            working = CanonicalQuery(
                base_tables=query.base_tables + tuple(extra_tables),
                views=tuple(new_views),
                predicates=query.predicates + tuple(extra_predicates),
                group_by=query.group_by,
                aggregates=query.aggregates,
                having=query.having,
                select=query.select,
                order_by=query.order_by,
                limit=query.limit,
            )

    # Step 2: pull-up candidates per view. With join units present,
    # pulling a base table into a view would change the unit join's
    # inputs, so only the empty set is enumerated per view.
    candidates: Dict[str, List[Tuple[str, ...]]] = {}
    for view in working.views:
        sets = (
            [()]
            if has_units
            else _pullup_candidates(working, view.alias, options)
        )
        restore = restore_sets.get(view.alias, ())
        if restore and restore not in sets:
            sets.append(tuple(sorted(restore)))
        candidates[view.alias] = sets
        stats.pullup_sets_enumerated += len(sets)

    # Step 3: consistent combinations. Disjointness of the pull-up
    # sets is checked over bitmasks (one bit per base table), so each
    # combination costs a couple of integer ops instead of building
    # alias sets.
    view_aliases = [view.alias for view in working.views]
    combos: List[Dict[str, Tuple[str, ...]]] = []
    truncated = 0
    if view_aliases:
        combo_graph = JoinGraph(
            (ref.alias for ref in working.base_tables), working.predicates
        )
        choice_lists = [
            [
                (pulled, combo_graph.mask_of(pulled))
                for pulled in candidates[alias]
            ]
            for alias in view_aliases
        ]
        for choice in itertools.product(*choice_lists):
            used = 0
            consistent = True
            for _, mask in choice:
                if used & mask:
                    consistent = False
                    break
                used |= mask
            if not consistent:
                continue
            if len(combos) >= options.max_combinations:
                truncated += 1
                continue
            combos.append(
                {
                    alias: pulled
                    for alias, (pulled, _) in zip(view_aliases, choice)
                }
            )
    else:
        combos.append({})
    stats.combinations_enumerated += len(combos)
    stats.combinations_truncated += truncated

    # Step 4: cost each combination. The plan for Φ(Vᵢ′, Wᵢ) depends
    # only on (view, Wᵢ) — pulls into *other* views never change this
    # view's block — so view plans are shared across combinations, the
    # paper's "we do not need to optimize Φ(V′, W) separately". With
    # ``share_view_dp`` the sharing goes further: one DP over V′ ∪ ⋃W
    # per view serves every W (Section 5.3's construction).
    view_plan_cache: Dict[Tuple[str, Tuple[str, ...]], DerivedLeaf] = {}
    if options.share_view_dp:
        for view in working.views:
            view_plan_cache.update(
                _shared_view_plans(
                    working,
                    view.alias,
                    candidates[view.alias],
                    optimizer,
                    catalog,
                )
            )

    def view_leaf(
        view_alias: str, pulled: Tuple[str, ...], pulled_query
    ) -> DerivedLeaf:
        key = (view_alias, pulled)
        cached = view_plan_cache.get(key)
        if cached is not None:
            stats.view_plans_reused += 1
            return cached
        leaf = _optimize_view(pulled_query.view(view_alias), optimizer)
        view_plan_cache[key] = leaf
        return leaf

    best_plan: Optional[PlanNode] = None
    best_choice: Dict[str, Tuple[str, ...]] = {}
    alternatives: List[Tuple[Dict[str, Tuple[str, ...]], float]] = []
    for combo in combos:
        pulled_query = working
        for view_alias, pulled in combo.items():
            if pulled:
                pulled_query = pull_up(
                    pulled_query, view_alias, pulled, catalog
                )
        derived = [
            view_leaf(view.alias, combo.get(view.alias, ()), pulled_query)
            for view in pulled_query.views
        ]
        plan = _optimize_outer(pulled_query, derived, optimizer)
        alternatives.append((combo, plan.props.cost))
        if best_plan is None or plan.props.cost < best_plan.props.cost:
            best_plan = plan
            best_choice = combo
    assert best_plan is not None

    if options.enable_projection_pruning:
        # Narrow view boundaries *before* the traditional comparison:
        # both plans are compared post-prune, preserving the no-worse
        # guarantee under the narrowed widths.
        best_plan = prune_plan(best_plan, model=optimizer.model, stats=stats)

    # Guarantee: never worse than the traditional optimizer. The query
    # is already decorrelated; don't flatten (or count) again.
    traditional = optimize_traditional(
        query, catalog, params, options=options, decorrelate=False
    )
    stats.merge(traditional.stats)
    if traditional.cost < best_plan.props.cost:
        best_plan = traditional.plan
        best_choice = traditional.pull_choices

    return OptimizationResult(
        plan=best_plan,
        cost=best_plan.props.cost,
        stats=stats,
        pull_choices=best_choice,
        alternatives=alternatives,
        traditional_cost=traditional.cost,
    )


def _shared_view_plans(
    working: CanonicalQuery,
    view_alias: str,
    pulled_sets: Sequence[Tuple[str, ...]],
    optimizer: BlockOptimizer,
    catalog: Catalog,
) -> Dict[Tuple[str, Tuple[str, ...]], DerivedLeaf]:
    """One shared DP for all of a view's pull-up sets (Section 5.3).

    The DP runs over the *maximal* pulled block Φ(V′, ⋃W); each W's plan
    is the best retained subplan for the subset V′ ∪ W, extended with
    that W's own group-by — exactly the paper's construction.
    """
    union: Set[str] = set()
    for pulled in pulled_sets:
        union |= set(pulled)
    maximal_query = (
        pull_up(working, view_alias, sorted(union), catalog)
        if union
        else working
    )
    maximal_block = maximal_query.view(view_alias).block

    requests = []
    per_request_blocks: Dict[Tuple[str, ...], QueryBlock] = {}
    for pulled in pulled_sets:
        pulled_query = (
            pull_up(working, view_alias, pulled, catalog)
            if pulled
            else working
        )
        block = pulled_query.view(view_alias).block
        per_request_blocks[pulled] = block
        requests.append(
            (
                pulled,
                frozenset(ref.alias for ref in block.relations),
                _block_spec(block),
                block.select,
            )
        )

    plans = optimizer.optimize_block_shared(
        leaves=[BaseLeaf(ref) for ref in maximal_block.relations],
        predicates=maximal_block.predicates,
        base_spec=_block_spec(maximal_block),
        base_select=maximal_block.select,
        requests=requests,
    )
    leaves: Dict[Tuple[str, Tuple[str, ...]], DerivedLeaf] = {}
    for pulled, plan in plans.items():
        block = per_request_blocks[pulled]
        plan = _maybe_rewrite_block(block, plan, optimizer)
        rename = RenameNode(
            plan,
            [(view_alias, name, (None, name)) for name, _ in block.select],
        )
        optimizer.model.annotate(rename)
        leaves[(view_alias, pulled)] = DerivedLeaf(
            alias=view_alias, plan=rename
        )
    return leaves


def _pullup_candidates(
    query: CanonicalQuery,
    view_alias: str,
    options: OptimizerOptions,
) -> List[Tuple[str, ...]]:
    """Pull-up sets W for one view: ∅ plus predicate-connected subsets
    of the base tables up to the k-level cap (Section 5.3's practical
    restrictions)."""
    sets: List[Tuple[str, ...]] = [()]
    if not options.enable_pullup or options.k_level == 0:
        return sets
    base_aliases = sorted(ref.alias for ref in query.base_tables)
    if not base_aliases:
        return sets

    if not options.require_shared_predicate:
        for size in range(1, min(options.k_level, len(base_aliases)) + 1):
            for combo in itertools.combinations(base_aliases, size):
                sets.append(combo)
        return sets

    # Connectivity: a candidate W must be connected to the view through
    # predicates among W ∪ {view}. The BFS runs over the bitset join
    # graph of base tables plus the view. Edges come from the
    # *tolerant* per-predicate masks — a predicate may also mention
    # other views without that stopping it from connecting base tables
    # here — and bits are assigned in sorted-alias order, so low-to-high
    # bit iteration preserves the original enumeration (and therefore
    # tie-breaking) order.
    graph = JoinGraph([*base_aliases, view_alias], query.predicates)
    base_mask = graph.mask_of(base_aliases)
    view_mask = graph.mask_of_alias[view_alias]
    edge_masks = [
        mask for mask in graph.pred_masks if mask.bit_count() >= 2
    ]

    def neighbors(core_mask: int) -> int:
        scope = core_mask | view_mask
        found = 0
        for mask in edge_masks:
            if mask & scope:
                found |= mask
        return found & base_mask & ~core_mask

    frontier: List[int] = [0]
    seen: Set[int] = {0}
    for _ in range(options.k_level):
        next_frontier: List[int] = []
        for current in frontier:
            for bit in graph.iter_bits(neighbors(current)):
                grown = current | bit
                if grown not in seen:
                    seen.add(grown)
                    sets.append(graph.aliases_of(grown))
                    next_frontier.append(grown)
        frontier = next_frontier
    return sets
