"""Integer-bitset join graph for the DP enumerators.

The paper's Section 5 pitch is that aggregate-aware enumeration adds
only a "very moderate increase in search space" over a Selinger
optimizer — which only holds if the underlying subset enumeration is
itself lean. This module gives every enumeration loop in the optimizer
one shared, precomputed view of a block's join structure:

- each leaf alias is assigned a **bit** (in sorted-alias order, so
  ascending-bit iteration reproduces the seed enumerator's
  ``sorted(aliases)`` tie-breaking order);
- every predicate's alias set becomes a precomputed **mask**;
- a per-leaf **adjacency table** (union of the masks of predicates
  touching the leaf) supports neighbor queries in O(1);
- :meth:`JoinGraph.connected_subsets` enumerates exactly the
  *connected* subsets in ascending-size order (DPsize-style: grow each
  connected subset by adjacent leaves), so a connected n-leaf chain
  costs O(n²) DP cells instead of the 2ⁿ the seed's
  ``itertools.combinations`` walk paid.

Disconnected join graphs (cross products) keep the seed semantics:
callers detect ``component_count() > 1`` and fall back to
:meth:`all_subsets`, whose expansion applies the seed's cross-product
extension rule.

Subsets are plain Python ints, so DP-table keys hash in O(1) instead
of frozenset-of-string hashing, and subset algebra (union, remainder,
containment) is single bitwise ops.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..algebra.expressions import Expression, FieldKey


class JoinGraph:
    """The join structure of one block, over integer bitsets."""

    __slots__ = (
        "aliases",
        "bit_of",
        "mask_of_alias",
        "all_mask",
        "pred_masks",
        "pred_strict_masks",
        "pred_columns",
        "join_pred_masks",
        "adjacency",
    )

    def __init__(
        self, aliases: Iterable[str], predicates: Iterable[Expression]
    ):
        predicates = tuple(predicates)
        # Sorted bit assignment: iterating set bits low-to-high then
        # visits aliases in the same order as ``sorted(subset)`` did in
        # the FrozenSet enumerator, keeping cost-tie winners identical.
        self.aliases: Tuple[str, ...] = tuple(sorted(aliases))
        self.bit_of: Dict[str, int] = {
            alias: position for position, alias in enumerate(self.aliases)
        }
        self.mask_of_alias: Dict[str, int] = {
            alias: 1 << position
            for position, alias in enumerate(self.aliases)
        }
        self.all_mask = (1 << len(self.aliases)) - 1

        self.pred_masks: Tuple[int, ...] = tuple(
            self.mask_of(predicate.aliases()) for predicate in predicates
        )
        # Only multi-leaf predicates induce edges — and only predicates
        # fully inside the block: one referencing a foreign alias can
        # never be applied by any join here, so it connects nothing.
        strict_masks = [
            self.strict_mask_of(predicate.aliases())
            for predicate in predicates
        ]
        self.pred_strict_masks: Tuple[Optional[int], ...] = tuple(
            strict_masks
        )
        self.pred_columns: Tuple[FrozenSet[FieldKey], ...] = tuple(
            predicate.columns() for predicate in predicates
        )
        self.join_pred_masks: Tuple[int, ...] = tuple(
            mask
            for mask in strict_masks
            if mask is not None and mask.bit_count() >= 2
        )
        adjacency = [0] * len(self.aliases)
        for mask in self.join_pred_masks:
            remaining = mask
            while remaining:
                low = remaining & -remaining
                adjacency[low.bit_length() - 1] |= mask & ~low
                remaining &= remaining - 1
        self.adjacency: Tuple[int, ...] = tuple(adjacency)

    # ------------------------------------------------------------------
    # Mask algebra
    # ------------------------------------------------------------------

    def mask_of(self, aliases: Iterable[str]) -> int:
        """The bitmask of *aliases*; unknown aliases are ignored (they
        belong to other blocks and can never make a subset connected)."""
        mask_of_alias = self.mask_of_alias
        mask = 0
        for alias in aliases:
            bit = mask_of_alias.get(alias)
            if bit is not None:
                mask |= bit
        return mask

    def strict_mask_of(self, aliases: Iterable[str]) -> Optional[int]:
        """The bitmask of *aliases*, or None if any alias is foreign —
        for containment tests where dropping an alias would be unsound."""
        mask_of_alias = self.mask_of_alias
        mask = 0
        for alias in aliases:
            bit = mask_of_alias.get(alias)
            if bit is None:
                return None
            mask |= bit
        return mask

    def aliases_of(self, mask: int) -> Tuple[str, ...]:
        """The aliases of *mask*, in sorted order."""
        return tuple(self.iter_aliases(mask))

    def alias_set(self, mask: int) -> FrozenSet[str]:
        return frozenset(self.iter_aliases(mask))

    def iter_aliases(self, mask: int) -> Iterator[str]:
        """Yield aliases of *mask* low bit first (= sorted order)."""
        aliases = self.aliases
        while mask:
            low = mask & -mask
            yield aliases[low.bit_length() - 1]
            mask &= mask - 1

    def iter_bits(self, mask: int) -> Iterator[int]:
        """Yield single-bit masks of *mask*, low to high."""
        while mask:
            low = mask & -mask
            yield low
            mask &= mask - 1

    def border_columns(self, subset_mask: int) -> FrozenSet[FieldKey]:
        """Columns of predicates crossing the border of *subset_mask* —
        the join keys an eager partial group-by over the subset must
        keep as grouping columns. A predicate crosses when it touches
        the subset but also references an alias outside it (foreign
        aliases, strict mask ``None``, always count as outside)."""
        crossing = set()
        for columns, mask, strict in zip(
            self.pred_columns, self.pred_masks, self.pred_strict_masks
        ):
            if not (mask & subset_mask):
                continue
            if strict is None or strict & ~subset_mask:
                crossing |= columns
        return frozenset(crossing)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def neighbors(self, mask: int) -> int:
        """All leaves adjacent to *mask* (excluding *mask* itself)."""
        adjacency = self.adjacency
        found = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            found |= adjacency[low.bit_length() - 1]
            remaining &= remaining - 1
        return found & ~mask

    def connects(self, left_mask: int, alias_mask: int) -> bool:
        """True when some predicate joins *alias_mask* to *left_mask*
        using only leaves of ``left_mask | alias_mask`` — the exact
        connectivity test of the seed enumerator (a predicate over
        three leaves does not connect two of them on its own)."""
        scope = left_mask | alias_mask
        for mask in self.join_pred_masks:
            if mask & alias_mask and mask & left_mask and not (mask & ~scope):
                return True
        return False

    def is_connected(self, mask: int) -> bool:
        """Whether *mask* is one predicate-connected component."""
        if mask == 0:
            return False
        start = mask & -mask
        reached = start
        frontier = start
        while frontier:
            grown = (reached | self.neighbors(reached)) & mask
            frontier = grown & ~reached
            reached = grown
        return reached == mask

    def components(self) -> List[int]:
        """Connected components of the whole graph, as masks."""
        remaining = self.all_mask
        found: List[int] = []
        while remaining:
            seed = remaining & -remaining
            component = seed
            while True:
                grown = component | (self.neighbors(component) & remaining)
                if grown == component:
                    break
                component = grown
            found.append(component)
            remaining &= ~component
        return found

    def component_count(self) -> int:
        return len(self.components())

    # ------------------------------------------------------------------
    # Subset enumeration
    # ------------------------------------------------------------------

    def connected_subsets(self) -> Iterator[int]:
        """Yield every connected subset of size ≥ 2, sizes ascending.

        DPsize-style: level k+1 is every level-k subset extended by one
        adjacent leaf, deduplicated. Within a size, subsets come out in
        ascending mask order so enumeration is deterministic.
        """
        level: List[int] = [1 << i for i in range(len(self.aliases))]
        while level:
            next_level_set = set()
            for subset in level:
                for bit in self.iter_bits(self.neighbors(subset)):
                    next_level_set.add(subset | bit)
            level = sorted(next_level_set)
            yield from level

    def all_subsets(self) -> Iterator[int]:
        """Yield every subset of size ≥ 2, sizes ascending — the seed
        enumerator's search space, used as the cross-product-capable
        fallback for disconnected graphs and as the parity reference."""
        n = len(self.aliases)
        by_size: List[List[int]] = [[] for _ in range(n + 1)]
        for mask in range(1, self.all_mask + 1):
            by_size[mask.bit_count()].append(mask)
        for size in range(2, n + 1):
            yield from by_size[size]

    def connected_subset_count(self) -> int:
        """Number of connected subsets of size ≥ 2 (for skip stats)."""
        return sum(1 for _ in self.connected_subsets())
