"""Optimizer configuration.

The defaults implement the paper's full algorithm with its two
search-space restrictions (Section 5.3, "Practical Restrictions on the
Search Space"): predicate-sharing for pull-up candidates and the k-level
pull-up cap. Benchmarks E9/E10 ablate individual knobs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OptimizerOptions:
    """Knobs of the aggregate-view optimizer.

    - ``enable_pullup``: enumerate pull-up sets W (Section 5.3). Off =
      views keep their (invariant-split) boundaries.
    - ``enable_pushdown``: let the block DP consider early group-bys
      (greedy conservative heuristic, Section 5.2).
    - ``enable_invariant_split``: reduce each view to its minimal
      invariant set first (Section 4.1), freeing V − V′ for reordering.
    - ``k_level``: maximum pull-up applications per view (|W| ≤ k); the
      paper's k-level pull-up restriction. The "restore" set V − V′ is
      always considered regardless, preserving the no-worse guarantee.
    - ``require_shared_predicate``: only pull a relation through a view
      when connected to it by a predicate (the paper's restriction).
    - ``width_guard``: the greedy conservative safety condition — accept
      an early group-by only when the result is no wider. Disabling it
      is unsound per the paper's argument and exists only for the E9
      ablation.
    - ``max_plans_per_set``: plans retained per DP subset (per
      interesting order); bounds memory like a real optimizer would.
    - ``max_combinations``: cap on multi-view W-combinations (Section
      5.4); hitting the cap is recorded in the search stats, never
      silent.
    """

    enable_pullup: bool = True
    enable_pushdown: bool = True
    enable_invariant_split: bool = True
    k_level: int = 2
    require_shared_predicate: bool = True
    width_guard: bool = True
    max_plans_per_set: int = 6
    max_combinations: int = 256
    share_view_dp: bool = True
    """Run ONE DP over V′ ∪ ⋃W per view and extract the plan for every
    pull-up set W from it (Section 5.3: "we do not need to optimize
    Φ(V′, W) separately"). Off = optimize each Φ(V′, W) independently;
    same plans, more enumeration work (the E7 sharing ablation)."""

    enable_projection_pruning: bool = True
    """Column-lifetime projection pruning: join projections and scan
    decode lists keep only the columns some *ancestor* still references
    (final outputs, grouping keys, aggregate inputs, plus the columns of
    predicates not yet applied). Off = the pre-pruning behavior, where
    every predicate column rides to the top of the plan; kept as an
    ablation — answers never change, only intermediate widths."""

    enable_predicate_propagation: bool = True
    """[MFPR90, LMS94] preprocessing: move outer literal predicates on
    grouping-column view outputs inside the view. The paper assumes
    every optimizer does this; off only for the propagation ablation."""

    enable_view_rewrite: bool = True
    """Consider answering blocks from materialized aggregate views
    (Cohen & Nutt-style matching + coalescing rewrite); each rewrite is
    adopted only when cheaper under the cost model. ``--no-view-rewrite``
    in the CLI and the differential tests turn this off."""

    use_statistics: bool = True
    """Let the cost model consume collected column statistics (NDV,
    ranges, null fractions, MCVs, histograms). Off = every column falls
    back to the unknown-stats default (``ndv = rows``), the statistics
    ablation: plan choice may change, answers never do."""

    enable_eager_aggregation: bool = True
    """Eager partial-aggregation alternatives inside the block DP
    (beyond the paper; *Partial Partial Aggregates*). The DP retains,
    per subset, both the lazy plan and eager variants — a partial
    group-by on the side holding the aggregate arguments, or a
    COUNT-carry pre-collapse of a side without them — and the final
    choice is by cost, so the no-worse guarantee is kept structurally
    (the lazy alternative always survives finalization). Requires
    ``enable_pushdown``; off = exactly the pre-eager greedy heuristic
    (early group-by replaces the plain join only when cheaper and no
    wider). Answers never change, only plan shapes."""

    enable_decorrelation: bool = True
    """Flatten WHERE-clause subqueries (scalar aggregates, IN/EXISTS,
    NOT IN/NOT EXISTS) into aggregate views and semi/anti/outer join
    units before planning (Kim's join-aggregate transformation,
    Section 1). Off = every subquery executes as a naive mark join —
    the inner side materialized once, re-scanned per outer row — the
    ablation baseline of the ``full-nodecorrelate`` fuzz config and
    ``benchmarks/bench_subquery.py``. Answers never change."""

    def __post_init__(self) -> None:
        if self.k_level < 0:
            raise ValueError("k_level must be non-negative")
        if self.max_plans_per_set < 1:
            raise ValueError("max_plans_per_set must be positive")
        if self.max_combinations < 1:
            raise ValueError("max_combinations must be positive")


TRADITIONAL = OptimizerOptions(
    enable_pullup=False,
    enable_pushdown=False,
    enable_invariant_split=False,
    enable_eager_aggregation=False,
)
"""The Section 5.1 baseline expressed as options."""
