"""Search-effort accounting.

The paper's [CS94] claim — "very moderate increase in search space while
often producing significantly better plans" — is about enumeration
effort, so every optimizer records it (experiment E7)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters accumulated across one optimization."""

    subsets_expanded: int = 0
    joinplan_calls: int = 0
    plans_retained: int = 0
    plans_pruned: int = 0
    early_groupby_considered: int = 0
    early_groupby_accepted: int = 0
    pullup_sets_enumerated: int = 0
    combinations_enumerated: int = 0
    combinations_truncated: int = 0
    blocks_optimized: int = 0
    view_plans_reused: int = 0

    def merge(self, other: "SearchStats") -> None:
        self.subsets_expanded += other.subsets_expanded
        self.joinplan_calls += other.joinplan_calls
        self.plans_retained += other.plans_retained
        self.plans_pruned += other.plans_pruned
        self.early_groupby_considered += other.early_groupby_considered
        self.early_groupby_accepted += other.early_groupby_accepted
        self.pullup_sets_enumerated += other.pullup_sets_enumerated
        self.combinations_enumerated += other.combinations_enumerated
        self.combinations_truncated += other.combinations_truncated
        self.blocks_optimized += other.blocks_optimized
        self.view_plans_reused += other.view_plans_reused

    def summary(self) -> str:
        return (
            f"subsets={self.subsets_expanded} joinplans={self.joinplan_calls} "
            f"retained={self.plans_retained} pruned={self.plans_pruned} "
            f"earlyG={self.early_groupby_accepted}/"
            f"{self.early_groupby_considered} "
            f"pullups={self.pullup_sets_enumerated} "
            f"combos={self.combinations_enumerated}"
            + (
                f" (truncated {self.combinations_truncated})"
                if self.combinations_truncated
                else ""
            )
        )
