"""Search-effort accounting.

The paper's [CS94] claim — "very moderate increase in search space while
often producing significantly better plans" — is about enumeration
effort, so every optimizer records it (experiment E7). Besides raw
enumeration counters, the stats carry the bitset enumerator's savings
(``connected_subsets_skipped``, ``predicate_split_cache_hits``) and
per-phase wall-clock timings, so speedups are observable rather than
asserted."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict


@dataclass
class SearchStats:
    """Counters accumulated across one optimization."""

    subsets_expanded: int = 0
    joinplan_calls: int = 0
    plans_retained: int = 0
    plans_pruned: int = 0
    early_groupby_considered: int = 0
    early_groupby_accepted: int = 0
    pullup_sets_enumerated: int = 0
    combinations_enumerated: int = 0
    combinations_truncated: int = 0
    blocks_optimized: int = 0
    view_plans_reused: int = 0
    connected_subsets_skipped: int = 0
    """Subsets the bitset enumerator never materialized because they are
    disconnected in the join graph (the seed enumerator visited all of
    them)."""
    predicate_split_cache_hits: int = 0
    """Joins whose per-(subset, alias) predicate classification was
    served from the memo instead of re-scanning every predicate."""
    view_rewrites_considered: int = 0
    """Materialized-view rewrites that matched a block (legal answers
    from a backing table) and were costed as alternative plans."""
    view_rewrites_adopted: int = 0
    """Blocks whose final plan reads a materialized view's backing
    table because it costed cheaper than the computed plan."""
    projection_columns_pruned: int = 0
    """Columns dropped from join projections by the column-lifetime
    analysis — columns the pre-pruning optimizer would have carried
    upward (they appear in some already-applied predicate) but which no
    ancestor operator references."""
    plans_repruned: int = 0
    """Final plans narrowed by the post-DP :func:`prune_plan` pass
    (view boundaries and hand-built shapes the block DP cannot see)."""
    eager_alternatives_considered: int = 0
    """Eager partial-aggregation alternatives (partial group-bys and
    COUNT-carry pre-collapses) generated and costed alongside the lazy
    plan during DP extension."""
    eager_alternatives_adopted: int = 0
    """Finalized block plans whose winning DP entry carried eager
    partial-aggregation state (grouped and/or carry)."""
    decorrelation_considered: int = 0
    """WHERE-clause subquery specs inspected by the decorrelation pass
    (``transforms.decorrelate``)."""
    decorrelation_adopted: int = 0
    """Specs flattened into aggregate views / semi / anti / outer join
    units; the rest execute as naive mark joins."""
    timings: Dict[str, float] = field(default_factory=dict)
    """Per-phase elapsed seconds (``leaf_plans``, ``dp``, ``finalize``)."""

    def add_time(self, phase: str, seconds: float) -> None:
        """Accumulate *seconds* of wall-clock under *phase*."""
        self.timings[phase] = self.timings.get(phase, 0.0) + seconds

    def merge(self, other: "SearchStats") -> None:
        for spec in fields(self):
            if spec.name == "timings":
                for phase, seconds in other.timings.items():
                    self.add_time(phase, seconds)
            else:
                setattr(
                    self,
                    spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name),
                )

    def as_dict(self) -> Dict[str, Any]:
        """Every counter by field name, timings flattened to
        ``time_<phase>_s`` keys — consumers (the CLI, benchmark JSON)
        never hand-maintain the field list."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            if spec.name == "timings":
                continue
            out[spec.name] = getattr(self, spec.name)
        for phase in sorted(self.timings):
            out[f"time_{phase}_s"] = self.timings[phase]
        return out

    def summary(self) -> str:
        return (
            f"subsets={self.subsets_expanded} joinplans={self.joinplan_calls} "
            f"retained={self.plans_retained} pruned={self.plans_pruned} "
            f"earlyG={self.early_groupby_accepted}/"
            f"{self.early_groupby_considered} "
            f"pullups={self.pullup_sets_enumerated} "
            f"combos={self.combinations_enumerated}"
            + (
                f" (truncated {self.combinations_truncated})"
                if self.combinations_truncated
                else ""
            )
            + (
                f" skipped={self.connected_subsets_skipped}"
                if self.connected_subsets_skipped
                else ""
            )
            + (
                f" eager={self.eager_alternatives_adopted}/"
                f"{self.eager_alternatives_considered}"
                if self.eager_alternatives_considered
                else ""
            )
            + (
                f" decorrelated={self.decorrelation_adopted}/"
                f"{self.decorrelation_considered}"
                if self.decorrelation_considered
                else ""
            )
        )
