"""Dynamic-programming optimizer for one single-block query.

This is the paper's Section 5.2 machinery: the classic System R join
enumerator (linear join trees, interesting orders) extended to *linear
aggregate join trees* — group-by operators may interleave with joins.
The **greedy conservative heuristic** governs early group-bys: at each
DP extension, besides the plain join (plan 1) the optimizer builds a
variant with an early group-by on the side holding the aggregate
arguments (plan 2), and keeps plan 2 only when it is *cheaper and no
wider* — which, under an IO-only cost model, guarantees the final plan
is never worse than the traditional one.

Early group-bys always compute decomposed *partial* aggregates
(``repro.transforms.coalescing``); the final group-by coalesces and a
projection finalizes. When the early grouping happens to be invariant
(each group meets at most one join partner), the coalescing group-by
degenerates to a per-row pass that costs no IO, so both Figure 2
transformations fall out of one mechanism.

Blocks are optimized over *leaves*: base tables or derived relations
(pre-optimized view plans), which is how the two-phase algorithms of
Sections 5.3/5.4 reuse this module for both phases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    ColumnRef,
    Expression,
    FieldKey,
    equijoin_sides,
    comparison_with_literal,
)
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from ..algebra.query import TableRef
from ..catalog.catalog import Catalog
from ..catalog.schema import RID_COLUMN, Field, table_row_schema
from ..cost.model import CostModel
from ..cost.params import CostParams
from ..errors import PlanError
from ..transforms.coalescing import DecomposedAggregates, decompose_aggregates
from .options import OptimizerOptions
from .stats import SearchStats


@dataclass(frozen=True)
class GroupingSpec:
    """The block's final grouping: columns, aggregates, HAVING."""

    group_keys: Tuple[FieldKey, ...]
    aggregates: Tuple[Tuple[str, AggregateCall], ...]
    having: Tuple[Expression, ...] = ()


@dataclass(frozen=True)
class BaseLeaf:
    """A stored table joined under an alias."""

    ref: TableRef

    @property
    def alias(self) -> str:
        return self.ref.alias


@dataclass(frozen=True)
class DerivedLeaf:
    """A pre-optimized subplan (e.g. an aggregate view's plan) treated
    as a relation — the second phase's 'view as base table' leaves."""

    alias: str
    plan: PlanNode


Leaf = Union[BaseLeaf, DerivedLeaf]


@dataclass
class _Entry:
    """One retained plan for a DP subset."""

    plan: PlanNode
    grouped: bool  # early (partial) aggregation already applied


class BlockOptimizer:
    """Optimizes one block; reusable across blocks (stats accumulate)."""

    def __init__(
        self,
        catalog: Catalog,
        params: Optional[CostParams] = None,
        options: Optional[OptimizerOptions] = None,
        mode: str = "greedy",
        stats: Optional[SearchStats] = None,
    ):
        if mode not in ("greedy", "traditional"):
            raise PlanError(f"unknown optimizer mode {mode!r}")
        self.catalog = catalog
        self.params = params or CostParams()
        self.options = options or OptimizerOptions()
        self.mode = mode
        self.stats = stats if stats is not None else SearchStats()
        self.model = CostModel(catalog, self.params)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def optimize_block(
        self,
        leaves: Sequence[Leaf],
        predicates: Sequence[Expression],
        spec: Optional[GroupingSpec],
        select: Sequence[Tuple[str, Expression]],
    ) -> PlanNode:
        """Return the cheapest annotated plan computing the block.

        The output schema is one field ``(None, name)`` per *select*
        entry, in order.
        """
        self.stats.blocks_optimized += 1
        leaves = list(leaves)
        if not leaves:
            raise PlanError("a block needs at least one relation")
        aliases = [leaf.alias for leaf in leaves]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate leaf aliases: {aliases}")
        predicates = tuple(predicates)
        select = tuple(select)

        context = _BlockContext(self, leaves, predicates, spec, select)
        entries = self._run_dp(context)
        return self._finalize(context, entries)

    def optimize_block_shared(
        self,
        leaves: Sequence[Leaf],
        predicates: Sequence[Expression],
        base_spec: Optional[GroupingSpec],
        base_select: Sequence[Tuple[str, Expression]],
        requests: Sequence[
            Tuple[
                object,
                FrozenSet[str],
                Optional[GroupingSpec],
                Sequence[Tuple[str, Expression]],
            ]
        ],
    ) -> Dict[object, PlanNode]:
        """One shared DP serving several final groupings — the paper's
        Section 5.3 sharing: "while optimizing for Φ(V′, B′), we can
        also generate the subplans for the joins of relations in the
        set V′ ∪ W for every W ⊆ B′".

        *requests* lists ``(key, subset_aliases, spec, select)``; for
        each, the best retained plan of that DP subset is extended
        "with the possible extension of adding a group-by" per its own
        spec. ``base_spec``/``base_select`` describe the maximal block
        (W = B′), which drives early-grouping decisions inside the DP.
        """
        self.stats.blocks_optimized += 1
        leaves = list(leaves)
        predicates = tuple(predicates)

        extra_needed: Set[FieldKey] = set()
        for _, _, spec, select in requests:
            if spec is not None:
                extra_needed |= set(spec.group_keys)
                for _, call in spec.aggregates:
                    extra_needed |= set(call.columns())
                for predicate in spec.having:
                    extra_needed |= {
                        key
                        for key in predicate.columns()
                        if key[0] is not None
                    }
            for _, source in select:
                extra_needed |= {
                    key for key in source.columns() if key[0] is not None
                }

        context = _BlockContext(
            self,
            leaves,
            predicates,
            base_spec,
            tuple(base_select),
            extra_needed=frozenset(extra_needed),
        )
        table = self._dp_table(context)

        results: Dict[object, PlanNode] = {}
        for key, subset, spec, select in requests:
            entries = table.get(frozenset(subset))
            if not entries:
                raise PlanError(
                    f"shared DP produced no plan for subset {sorted(subset)}"
                )
            best: Optional[PlanNode] = None
            for entry in entries:
                for candidate in context.final_plans(
                    entry, spec=spec, select=tuple(select)
                ):
                    if best is None or candidate.props.cost < best.props.cost:
                        best = candidate
            assert best is not None
            results[key] = best
        return results

    # ------------------------------------------------------------------
    # DP over subsets
    # ------------------------------------------------------------------

    def _run_dp(self, context: "_BlockContext") -> List[_Entry]:
        table = self._dp_table(context)
        full = table.get(frozenset(leaf.alias for leaf in context.leaves))
        if not full:
            raise PlanError("the DP produced no plan for the full block")
        return full

    def _dp_table(
        self, context: "_BlockContext"
    ) -> Dict[FrozenSet[str], List[_Entry]]:
        table: Dict[FrozenSet[str], List[_Entry]] = {}
        for leaf in context.leaves:
            plans = context.leaf_plans(leaf)
            table[frozenset({leaf.alias})] = self._prune(
                context, [_Entry(plan, False) for plan in plans]
            )

        all_aliases = [leaf.alias for leaf in context.leaves]
        for size in range(2, len(all_aliases) + 1):
            for combo in itertools.combinations(sorted(all_aliases), size):
                subset = frozenset(combo)
                candidates = self._expand_subset(context, table, subset)
                if candidates:
                    self.stats.subsets_expanded += 1
                    table[subset] = self._prune(context, candidates)
        return table

    def _expand_subset(
        self,
        context: "_BlockContext",
        table: Dict[FrozenSet[str], List[_Entry]],
        subset: FrozenSet[str],
    ) -> List[_Entry]:
        pairs: List[Tuple[FrozenSet[str], str, bool]] = []
        for alias in sorted(subset):
            remainder = subset - {alias}
            if remainder not in table:
                continue
            connected = context.connected(remainder, alias)
            pairs.append((remainder, alias, connected))
        if not pairs:
            return []
        if any(connected for _, _, connected in pairs):
            pairs = [pair for pair in pairs if pair[2]]

        candidates: List[_Entry] = []
        for remainder, alias, _ in pairs:
            for left_entry in table[remainder]:
                for right_plan in context.leaf_plans(context.leaf(alias)):
                    candidates.extend(
                        self._extend(
                            context, left_entry, remainder, right_plan, alias
                        )
                    )
        return candidates

    def _extend(
        self,
        context: "_BlockContext",
        left_entry: _Entry,
        left_aliases: FrozenSet[str],
        right_plan: PlanNode,
        right_alias: str,
    ) -> List[_Entry]:
        """The greedy conservative step: plan (1) join as-is, plan (2)
        join with an early group-by; keep (2) only if cheaper and no
        wider (Section 5.2)."""
        subset = left_aliases | {right_alias}
        plan1 = self._joinplans(
            context, left_entry.plan, left_aliases, right_plan, right_alias
        )
        entries1 = [_Entry(plan, left_entry.grouped) for plan in plan1]

        if (
            self.mode != "greedy"
            or not self.options.enable_pushdown
            or context.decomposed is None
        ):
            return entries1

        early_side = context.early_side(left_entry, left_aliases, right_alias)
        if early_side is None:
            return entries1
        self.stats.early_groupby_considered += 1

        if early_side == "left":
            early = context.early_group(
                left_entry.plan, left_aliases, left_entry.grouped
            )
            if early is None:
                return entries1
            plan2 = self._joinplans(
                context, early, left_aliases, right_plan, right_alias
            )
        else:
            early = context.early_group(right_plan, {right_alias}, False)
            if early is None:
                return entries1
            plan2 = self._joinplans(
                context, left_entry.plan, left_aliases, early, right_alias
            )
        entries2 = [_Entry(plan, True) for plan in plan2]
        if not entries2:
            return entries1
        if not entries1:
            return entries2

        best1 = min(entries1, key=lambda e: e.plan.props.cost)
        best2 = min(entries2, key=lambda e: e.plan.props.cost)
        cheaper = best2.plan.props.cost < best1.plan.props.cost
        narrow = (
            best2.plan.props.width <= best1.plan.props.width
            or not self.options.width_guard
        )
        if cheaper and narrow:
            self.stats.early_groupby_accepted += 1
            return entries2
        return entries1

    # ------------------------------------------------------------------
    # joinplan: all physical alternatives for one join
    # ------------------------------------------------------------------

    def _joinplans(
        self,
        context: "_BlockContext",
        left_plan: PlanNode,
        left_aliases: FrozenSet[str],
        right_plan: PlanNode,
        right_alias: str,
    ) -> List[PlanNode]:
        subset = left_aliases | {right_alias}
        equi, residuals = context.join_predicates(
            left_plan, left_aliases, right_plan, right_alias
        )
        projection = context.join_projection(left_plan, right_plan, subset)

        methods: List[Tuple[str, Optional[str]]] = []
        if equi:
            methods.append(("hj", None))
            methods.append(("smj", None))
            index_name = context.inlj_index(right_plan, equi)
            if index_name is not None:
                methods.append(("inlj", index_name))
        methods.append(("nlj", None))

        plans: List[PlanNode] = []
        for method, index_name in methods:
            self.stats.joinplan_calls += 1
            ordered_equi = equi
            if method == "inlj" and index_name is not None:
                ordered_equi = context.order_equi_for_index(
                    right_plan, equi, index_name
                )
            join = JoinNode(
                left_plan,
                right_plan,
                method=method,
                equi_keys=ordered_equi,
                residuals=residuals,
                projection=projection,
                index_name=index_name,
            )
            self.model.annotate(join)
            plans.append(join)
        return plans

    # ------------------------------------------------------------------
    # Final group-by / projection
    # ------------------------------------------------------------------

    def _finalize(
        self, context: "_BlockContext", entries: List[_Entry]
    ) -> PlanNode:
        best: Optional[PlanNode] = None
        for entry in entries:
            for candidate in context.final_plans(entry):
                if best is None or candidate.props.cost < best.props.cost:
                    best = candidate
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def _prune(
        self, context: "_BlockContext", candidates: List[_Entry]
    ) -> List[_Entry]:
        best: Dict[Tuple[bool, Tuple[FieldKey, ...]], _Entry] = {}
        for entry in candidates:
            order = context.useful_order(entry.plan.props.order)
            key = (entry.grouped, order)
            incumbent = best.get(key)
            if (
                incumbent is None
                or entry.plan.props.cost < incumbent.plan.props.cost
            ):
                best[key] = entry
        kept = sorted(best.values(), key=lambda e: e.plan.props.cost)
        limit = self.options.max_plans_per_set
        pruned = kept[:limit]
        self.stats.plans_retained += len(pruned)
        self.stats.plans_pruned += len(candidates) - len(pruned)
        return pruned


class _BlockContext:
    """Per-block precomputation: needed columns, leaf plan variants,
    connectivity, early-grouping construction, finalization."""

    def __init__(
        self,
        optimizer: BlockOptimizer,
        leaves: List[Leaf],
        predicates: Tuple[Expression, ...],
        spec: Optional[GroupingSpec],
        select: Tuple[Tuple[str, Expression], ...],
        extra_needed: FrozenSet[FieldKey] = frozenset(),
    ):
        self.optimizer = optimizer
        self.catalog = optimizer.catalog
        self.model = optimizer.model
        self.leaves = leaves
        self.predicates = predicates
        self.spec = spec
        self.select = select
        self.extra_needed = extra_needed
        self._leaf_by_alias = {leaf.alias: leaf for leaf in leaves}
        self._leaf_plan_cache: Dict[str, List[PlanNode]] = {}

        self.decomposed: Optional[DecomposedAggregates] = None
        if spec is not None and optimizer.options.enable_pushdown:
            self.decomposed = decompose_aggregates(spec.aggregates)
        self.agg_arg_aliases: FrozenSet[str] = frozenset()
        if spec is not None:
            aliases: Set[str] = set()
            for _, call in spec.aggregates:
                aliases |= call.aliases()
            self.agg_arg_aliases = frozenset(aliases)

        # Base columns needed anywhere in the block.
        needed: Set[FieldKey] = set()
        for predicate in predicates:
            needed |= set(predicate.columns())
        if spec is not None:
            needed |= set(spec.group_keys)
            for _, call in spec.aggregates:
                needed |= set(call.columns())
            for predicate in spec.having:
                needed |= {
                    key for key in predicate.columns() if key[0] is not None
                }
        for _, source in select:
            needed |= {
                key for key in source.columns() if key[0] is not None
            }
        needed |= extra_needed
        self.needed: FrozenSet[FieldKey] = frozenset(
            key for key in needed if key[0] is not None
        )

        # Interesting orders: join columns and grouping columns.
        interesting: Set[FieldKey] = set()
        for predicate in predicates:
            sides = equijoin_sides(predicate)
            if sides is not None:
                interesting.update(sides)
        if spec is not None:
            interesting.update(spec.group_keys)
        self.interesting = frozenset(interesting)

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def leaf(self, alias: str) -> Leaf:
        return self._leaf_by_alias[alias]

    def leaf_plans(self, leaf: Leaf) -> List[PlanNode]:
        cached = self._leaf_plan_cache.get(leaf.alias)
        if cached is not None:
            return cached
        if isinstance(leaf, DerivedLeaf):
            plans = [self._derived_leaf_plan(leaf)]
        else:
            plans = self._base_leaf_plans(leaf)
        self._leaf_plan_cache[leaf.alias] = plans
        return plans

    def _local_predicates(self, alias: str) -> Tuple[Expression, ...]:
        return tuple(
            predicate
            for predicate in self.predicates
            if predicate.aliases() == {alias}
        )

    def _derived_leaf_plan(self, leaf: DerivedLeaf) -> PlanNode:
        plan = leaf.plan
        if plan.props is None:
            self.model.annotate_tree(plan)
        local = self._local_predicates(leaf.alias)
        if local:
            plan = FilterNode(plan, local)
            self.model.annotate(plan)
        return plan

    def _base_leaf_plans(self, leaf: BaseLeaf) -> List[PlanNode]:
        table = self.catalog.table(leaf.ref.table)
        alias = leaf.alias
        local = self._local_predicates(alias)
        wanted = sorted(
            {
                key[1]
                for key in self.needed
                if key[0] == alias and key[1] != RID_COLUMN
            }
        )
        include_rid = (alias, RID_COLUMN) in self.needed
        column_types = {column.name: column.dtype for column in table.columns}
        fields = [
            Field(alias, name, column_types[name])
            for name in wanted
            if name in column_types
        ]
        if not fields and not include_rid:
            # nothing referenced: keep the narrowest column for shape
            first = table.columns[0]
            fields = [Field(alias, first.name, first.dtype)]

        plans: List[PlanNode] = []
        heap = ScanNode(
            leaf.ref.table,
            alias,
            fields,
            filters=local,
            include_rid=include_rid,
        )
        self.model.annotate(heap)
        plans.append(heap)

        # Index equality access paths from literal predicates.
        info = self.catalog.info(leaf.ref.table)
        for predicate in local:
            literal = comparison_with_literal(predicate)
            if literal is None or literal[1] != "=":
                continue
            (_, column_name), _, value = literal
            for index in info.indexes.values():
                if index.column_names[0] != column_name:
                    continue
                if len(index.column_names) != 1:
                    continue
                remaining = tuple(p for p in local if p is not predicate)
                scan = ScanNode(
                    leaf.ref.table,
                    alias,
                    fields,
                    filters=remaining,
                    include_rid=include_rid,
                    index_name=index.name,
                    index_values=(value,),
                )
                self.model.annotate(scan)
                plans.append(scan)
        return plans

    # ------------------------------------------------------------------
    # Predicates / connectivity
    # ------------------------------------------------------------------

    def connected(self, left: FrozenSet[str], alias: str) -> bool:
        for predicate in self.predicates:
            aliases = predicate.aliases()
            if (
                alias in aliases
                and aliases & left
                and aliases <= left | {alias}
            ):
                return True
        return False

    def join_predicates(
        self,
        left_plan: PlanNode,
        left_aliases: FrozenSet[str],
        right_plan: PlanNode,
        right_alias: str,
    ) -> Tuple[
        List[Tuple[FieldKey, FieldKey]], List[Expression]
    ]:
        subset = left_aliases | {right_alias}
        equi: List[Tuple[FieldKey, FieldKey]] = []
        residuals: List[Expression] = []
        for predicate in self.predicates:
            aliases = predicate.aliases()
            if not aliases or aliases == {right_alias}:
                continue
            if right_alias not in aliases or not aliases <= subset:
                continue
            sides = equijoin_sides(predicate)
            if sides is not None:
                left_key, right_key = sides
                if right_key[0] != right_alias:
                    left_key, right_key = right_key, left_key
                if (
                    right_key[0] == right_alias
                    and left_key[0] in left_aliases
                    and left_plan.schema.has(*left_key)
                    and right_plan.schema.has(*right_key)
                ):
                    equi.append((left_key, right_key))
                    continue
            residuals.append(predicate)
        return equi, residuals

    def join_projection(
        self,
        left_plan: PlanNode,
        right_plan: PlanNode,
        subset: FrozenSet[str],
    ) -> List[FieldKey]:
        pending: Set[FieldKey] = set()
        for predicate in self.predicates:
            if not predicate.aliases() <= subset:
                pending |= set(predicate.columns())
        keep = self.needed | pending
        combined = left_plan.schema.concat(right_plan.schema)
        projection = [
            field.key
            for field in combined
            if field.alias is None or field.key in keep
        ]
        if not projection:
            projection = [combined.fields[0].key]
        return projection

    # ------------------------------------------------------------------
    # Index nested-loop support
    # ------------------------------------------------------------------

    def inlj_index(
        self,
        right_plan: PlanNode,
        equi: List[Tuple[FieldKey, FieldKey]],
    ) -> Optional[str]:
        if not isinstance(right_plan, ScanNode) or right_plan.index_name:
            return None
        info = self.catalog.info(right_plan.table_name)
        right_columns = {right_key[1] for _, right_key in equi}
        for index in info.indexes.values():
            prefix_length = 0
            for column in index.column_names:
                if column in right_columns:
                    prefix_length += 1
                else:
                    break
            if prefix_length == len(index.column_names):
                return index.name
        return None

    def order_equi_for_index(
        self,
        right_plan: PlanNode,
        equi: List[Tuple[FieldKey, FieldKey]],
        index_name: str,
    ) -> List[Tuple[FieldKey, FieldKey]]:
        assert isinstance(right_plan, ScanNode)
        info = self.catalog.info(right_plan.table_name)
        index = info.indexes[index_name]
        by_column = {right_key[1]: (left_key, right_key) for left_key, right_key in equi}
        ordered = [by_column[column] for column in index.column_names]
        return ordered

    # ------------------------------------------------------------------
    # Early grouping (eager aggregation)
    # ------------------------------------------------------------------

    def early_side(
        self,
        left_entry: _Entry,
        left_aliases: FrozenSet[str],
        right_alias: str,
    ) -> Optional[str]:
        """Which side an early group-by may be applied to — the side
        holding all aggregate arguments (one-sided, per the paper)."""
        if self.decomposed is None:
            return None
        if not self.agg_arg_aliases:
            return "left"  # COUNT(*)-style: either side; prefer the prefix
        if self.agg_arg_aliases <= left_aliases:
            return "left"
        if self.agg_arg_aliases <= {right_alias} and not left_entry.grouped:
            return "right"
        return None

    def early_group(
        self,
        plan: PlanNode,
        aliases: Union[FrozenSet[str], Set[str]],
        already_grouped: bool,
    ) -> Optional[PlanNode]:
        """Wrap *plan* in an early (partial) group-by, or None when no
        sound grouping keys exist."""
        assert self.decomposed is not None
        pending: Set[FieldKey] = set()
        for predicate in self.predicates:
            if not predicate.aliases() <= aliases:
                pending |= set(predicate.columns())
        # grouping keys = everything still needed above this point:
        # pending predicate columns, the final grouping columns, output
        # columns, and any columns shared finalizations ask for
        keep = set(self.extra_needed) | pending
        if self.spec is not None:
            keep |= set(self.spec.group_keys)
        for _, source in self.select:
            keep |= {key for key in source.columns() if key[0] is not None}

        keys = [
            field.key
            for field in plan.schema
            if field.alias is not None and field.key in keep
        ]
        if not keys:
            return None
        if already_grouped:
            aggregates = self.decomposed.coalescers
        else:
            aggregates = self.decomposed.partials
            for _, call in aggregates:
                for key in call.columns():
                    if not plan.schema.has(*key):
                        return None

        order = plan.props.order if plan.props else ()
        if set(order[: len(keys)]) == set(keys) and keys:
            method = "sort"
        else:
            method = "hash"
        group = GroupByNode(
            plan,
            group_keys=keys,
            aggregates=aggregates,
            method=method,
        )
        self.model.annotate(group)
        return group

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def final_plans(
        self,
        entry: _Entry,
        spec: Optional[GroupingSpec] = None,
        select: Optional[Tuple[Tuple[str, Expression], ...]] = None,
    ) -> List[PlanNode]:
        """Finalize one DP entry: attach the final group-by (per *spec*,
        defaulting to the block's own) and the output projection."""
        plan = entry.plan
        if spec is None:
            spec = self.spec
        if select is None:
            select = self.select
        if spec is None:
            if entry.grouped:
                raise PlanError(
                    "an early-grouped plan cannot finalize without a spec"
                )
            return [self._project(plan, select)]

        if entry.grouped:
            assert self.decomposed is not None
            finalize = self.decomposed.finalize_substitution()
            aggregates = self.decomposed.coalescers
            having = tuple(p.substitute(finalize) for p in spec.having)
            select = tuple(
                (name, source.substitute(finalize))
                for name, source in select
            )
        else:
            aggregates = spec.aggregates
            having = spec.having

        results: List[PlanNode] = []
        methods = ["hash"]
        order = plan.props.order if plan.props else ()
        keys = list(spec.group_keys)
        if keys and set(order[: len(keys)]) == set(keys):
            methods.append("sort")
        for method in methods:
            group = GroupByNode(
                plan,
                group_keys=keys,
                aggregates=aggregates,
                having=having,
                method=method,
            )
            self.model.annotate(group)
            results.append(self._project(group, select))
        return results

    def _project(
        self,
        plan: PlanNode,
        select: Tuple[Tuple[str, Expression], ...],
    ) -> PlanNode:
        project = ProjectNode(
            plan, [(None, name, source) for name, source in select]
        )
        self.model.annotate(project)
        return project

    # ------------------------------------------------------------------
    # Order bookkeeping
    # ------------------------------------------------------------------

    def useful_order(
        self, order: Tuple[FieldKey, ...]
    ) -> Tuple[FieldKey, ...]:
        useful: List[FieldKey] = []
        for key in order:
            if key in self.interesting:
                useful.append(key)
            else:
                break
        return tuple(useful)
