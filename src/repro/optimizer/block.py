"""Dynamic-programming optimizer for one single-block query.

This is the paper's Section 5.2 machinery: the classic System R join
enumerator (linear join trees, interesting orders) extended to *linear
aggregate join trees* — group-by operators may interleave with joins.
The **greedy conservative heuristic** governs early group-bys: at each
DP extension, besides the plain join (plan 1) the optimizer builds a
variant with an early group-by on the side holding the aggregate
arguments (plan 2), and keeps plan 2 only when it is *cheaper and no
wider* — which, under an IO-only cost model, guarantees the final plan
is never worse than the traditional one.

Early group-bys always compute decomposed *partial* aggregates
(``repro.transforms.coalescing``); the final group-by coalesces and a
projection finalizes. When the early grouping happens to be invariant
(each group meets at most one join partner), the coalescing group-by
degenerates to a per-row pass that costs no IO, so both Figure 2
transformations fall out of one mechanism.

With ``enable_eager_aggregation`` (the default, beyond the paper) the
heuristic's choose-one step becomes *retention*: the DP keeps the lazy
join, the partial-grouped variant, and COUNT-carry pre-collapses of an
argument-free side (``repro.transforms.eager``) as separate entries —
keyed by their ``(grouped, carry)`` state — and the final choice falls
out of plan cost, with the lazy entry guaranteed to survive pruning.

Blocks are optimized over *leaves*: base tables or derived relations
(pre-optimized view plans), which is how the two-phase algorithms of
Sections 5.3/5.4 reuse this module for both phases.

Search-space engineering (see ``joingraph.py``): the DP is keyed on
integer bitsets over a precomputed :class:`~.joingraph.JoinGraph`, and
by default (``enumeration="graph"``) materializes only *connected*
subsets — the classic DPsize restriction. Cross-product plans are
still produced for disconnected join graphs via the exhaustive
fallback, and ``enumeration="exhaustive"`` forces the seed's full
2ⁿ-subset walk (the parity/benchmark reference). Predicate
classification per (subset, joined alias) and leaf access-path plans
are memoized so each is computed once, not once per candidate join.

Non-inner joins ride the *same* enumerator as **join units**
(:class:`~repro.algebra.query.JoinUnit`): a unit's leaf never stands
alone as a DP singleton and may only be joined onto a subset that
already contains every alias its ON condition references, so every
plan applies the ON condition exactly at the unit's own (left / semi /
anti) join and the unit always arrives as the *right* input. Subject
to those masks the DP still commutes freely — a unit can be joined
early (right after its dependencies) or last, and the cost model
decides. WHERE conjuncts over a LEFT unit's alias cannot ride in any
join (a residual in an outer join is a match condition, not a filter),
so the caller passes them as ``post_predicates``, applied as a filter
after the joins; unflattened subquery specs are applied there too, as
:class:`~repro.algebra.plan.SubqueryMarkNode` fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    ColumnRef,
    Expression,
    FieldKey,
    equijoin_sides,
    comparison_with_literal,
)
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SubqueryMarkNode,
)
from ..algebra.query import JoinUnit, SubquerySpec, TableRef
from ..catalog.catalog import Catalog
from ..catalog.schema import RID_COLUMN, Field, table_row_schema
from ..cost.model import CostModel
from ..cost.params import CostParams
from ..errors import PlanError
from ..transforms.coalescing import DecomposedAggregates, decompose_aggregates
from ..transforms.eager import (
    carry_aggregates,
    eager_group_keys,
    partial_aggregates,
    weighted_coalescers,
    weighted_partials,
)
from .joingraph import JoinGraph
from .options import OptimizerOptions
from .stats import SearchStats

ENUMERATIONS = ("graph", "exhaustive")
"""DP subset enumeration strategies.

- ``"graph"`` (default) — connected subsets only, via the bitset join
  graph; falls back to the exhaustive walk when the block's join graph
  is disconnected (cross products required).
- ``"exhaustive"`` — every subset, the seed enumerator's search space;
  kept as the parity reference and benchmark baseline.
"""


@dataclass(frozen=True)
class GroupingSpec:
    """The block's final grouping: columns, aggregates, HAVING."""

    group_keys: Tuple[FieldKey, ...]
    aggregates: Tuple[Tuple[str, AggregateCall], ...]
    having: Tuple[Expression, ...] = ()


@dataclass(frozen=True)
class BaseLeaf:
    """A stored table joined under an alias."""

    ref: TableRef

    @property
    def alias(self) -> str:
        return self.ref.alias


@dataclass(frozen=True)
class DerivedLeaf:
    """A pre-optimized subplan (e.g. an aggregate view's plan) treated
    as a relation — the second phase's 'view as base table' leaves."""

    alias: str
    plan: PlanNode


Leaf = Union[BaseLeaf, DerivedLeaf]


@dataclass
class _Entry:
    """One retained plan for a DP subset.

    ``grouped`` and ``carry`` are the eager-aggregation state the
    finalization must undo: *grouped* plans already computed the
    decomposed partial aggregates (the final group-by coalesces),
    *carry* plans pre-collapsed one side's duplicates into a ``__cnt``
    count (the final group-by weights by it). At most one carry ever
    exists per plan, and a carry-bearing plan is never re-grouped into
    partials, so the four state combinations finalize unambiguously.
    """

    plan: PlanNode
    grouped: bool  # early (partial) aggregation already applied
    carry: bool = False  # a COUNT-carry pre-collapse feeds this plan


class BlockOptimizer:
    """Optimizes one block; reusable across blocks (stats accumulate,
    and identical base-leaf access paths are planned once)."""

    def __init__(
        self,
        catalog: Catalog,
        params: Optional[CostParams] = None,
        options: Optional[OptimizerOptions] = None,
        mode: str = "greedy",
        stats: Optional[SearchStats] = None,
        enumeration: str = "graph",
    ):
        if mode not in ("greedy", "traditional"):
            raise PlanError(f"unknown optimizer mode {mode!r}")
        if enumeration not in ENUMERATIONS:
            raise PlanError(
                f"unknown enumeration {enumeration!r} "
                f"(choose from {ENUMERATIONS})"
            )
        self.catalog = catalog
        self.params = params or CostParams()
        self.options = options or OptimizerOptions()
        self.mode = mode
        self.enumeration = enumeration
        self.stats = stats if stats is not None else SearchStats()
        self.model = CostModel(
            catalog,
            self.params,
            use_statistics=self.options.use_statistics,
        )
        # Annotated access-path plans for identical base-table leaves,
        # shared across every block this optimizer touches (the shared
        # DP of Section 5.3 re-plans the same scans for every request
        # otherwise).
        self._leaf_plan_cache: Dict[
            Tuple[str, str, Tuple[Expression, ...], Tuple[str, ...], bool],
            List[PlanNode],
        ] = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def optimize_block(
        self,
        leaves: Sequence[Leaf],
        predicates: Sequence[Expression],
        spec: Optional[GroupingSpec],
        select: Sequence[Tuple[str, Expression]],
        join_units: Sequence[JoinUnit] = (),
        post_predicates: Sequence[Expression] = (),
        marks: Sequence[Tuple[SubquerySpec, PlanNode]] = (),
    ) -> PlanNode:
        """Return the cheapest annotated plan computing the block.

        The output schema is one field ``(None, name)`` per *select*
        entry, in order. *join_units* names leaves joined through a
        non-inner kind; *post_predicates* are applied as a filter after
        all joins (WHERE conjuncts over LEFT-unit columns); *marks* are
        ``(spec, inner_plan)`` pairs applied as naive subquery-mark
        fallbacks before the final group-by.
        """
        self.stats.blocks_optimized += 1
        leaves = list(leaves)
        if not leaves:
            raise PlanError("a block needs at least one relation")
        aliases = [leaf.alias for leaf in leaves]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate leaf aliases: {aliases}")
        alias_set = set(aliases)
        for unit in join_units:
            if unit.alias not in alias_set:
                raise PlanError(
                    f"join unit {unit.alias!r} has no leaf in the block"
                )
        if len(set(u.alias for u in join_units)) != len(tuple(join_units)):
            raise PlanError("duplicate join unit aliases")
        if len(alias_set - {u.alias for u in join_units}) == 0:
            raise PlanError("a block cannot consist of join units only")
        predicates = tuple(predicates)
        select = tuple(select)

        context = _BlockContext(
            self,
            leaves,
            predicates,
            spec,
            select,
            join_units=tuple(join_units),
            post_predicates=tuple(post_predicates),
            marks=tuple(marks),
        )
        entries = self._run_dp(context)
        return self._finalize(context, entries)

    def optimize_block_shared(
        self,
        leaves: Sequence[Leaf],
        predicates: Sequence[Expression],
        base_spec: Optional[GroupingSpec],
        base_select: Sequence[Tuple[str, Expression]],
        requests: Sequence[
            Tuple[
                object,
                FrozenSet[str],
                Optional[GroupingSpec],
                Sequence[Tuple[str, Expression]],
            ]
        ],
    ) -> Dict[object, PlanNode]:
        """One shared DP serving several final groupings — the paper's
        Section 5.3 sharing: "while optimizing for Φ(V′, B′), we can
        also generate the subplans for the joins of relations in the
        set V′ ∪ W for every W ⊆ B′".

        *requests* lists ``(key, subset_aliases, spec, select)``; for
        each, the best retained plan of that DP subset is extended
        "with the possible extension of adding a group-by" per its own
        spec. ``base_spec``/``base_select`` describe the maximal block
        (W = B′), which drives early-grouping decisions inside the DP.
        """
        self.stats.blocks_optimized += 1
        leaves = list(leaves)
        predicates = tuple(predicates)

        extra_needed: Set[FieldKey] = set()
        agg_args: Set[FieldKey] = set()
        for _, _, spec, select in requests:
            if spec is not None:
                extra_needed |= set(spec.group_keys)
                for _, call in spec.aggregates:
                    agg_args |= set(call.columns())
                for predicate in spec.having:
                    extra_needed |= {
                        key
                        for key in predicate.columns()
                        if key[0] is not None
                    }
            for _, source in select:
                extra_needed |= {
                    key for key in source.columns() if key[0] is not None
                }

        context = _BlockContext(
            self,
            leaves,
            predicates,
            base_spec,
            tuple(base_select),
            # Aggregate argument columns are needed to finalize the
            # requests' *ungrouped* entries (so they ride in projections
            # via ``extra_needed``), but they must not become eager
            # grouping keys: a partial group-by consumes them, and
            # keying on an aggregate's own argument destroys the
            # collapse (``eager_exclude``).
            extra_needed=frozenset(extra_needed | agg_args),
            eager_exclude=frozenset(agg_args - extra_needed),
        )
        graph = context.graph
        table = self._dp_table(context)

        # A request's subset is normally connected (it joins the view's
        # invariant core to a predicate-connected pull-up set), but the
        # connected-only enumeration offers no such guarantee in
        # general: re-run exhaustively rather than fail.
        if any(
            self._request_mask(graph, subset) not in table
            for _, subset, _, _ in requests
        ):
            table = self._dp_table(context, force_exhaustive=True)

        started = perf_counter()
        results: Dict[object, PlanNode] = {}
        for key, subset, spec, select in requests:
            entries = table.get(self._request_mask(graph, subset))
            if not entries:
                raise PlanError(
                    f"shared DP produced no plan for subset {sorted(subset)}"
                )
            best: Optional[PlanNode] = None
            best_entry: Optional[_Entry] = None
            for entry in entries:
                for candidate in context.final_plans(
                    entry, spec=spec, select=tuple(select)
                ):
                    if best is None or candidate.props.cost < best.props.cost:
                        best = candidate
                        best_entry = entry
            assert best is not None and best_entry is not None
            self._record_adoption(best_entry)
            results[key] = best
        self.stats.add_time("finalize", perf_counter() - started)
        return results

    @staticmethod
    def _request_mask(graph: JoinGraph, subset: FrozenSet[str]) -> int:
        mask = graph.strict_mask_of(subset)
        if mask is None or mask == 0:
            raise PlanError(
                f"shared DP request over unknown aliases {sorted(subset)}"
            )
        return mask

    # ------------------------------------------------------------------
    # DP over subsets
    # ------------------------------------------------------------------

    def _run_dp(self, context: "_BlockContext") -> List[_Entry]:
        table = self._dp_table(context)
        full = table.get(context.graph.all_mask)
        if not full:
            raise PlanError("the DP produced no plan for the full block")
        return full

    def _dp_table(
        self, context: "_BlockContext", force_exhaustive: bool = False
    ) -> Dict[int, List[_Entry]]:
        graph = context.graph
        started = perf_counter()
        table: Dict[int, List[_Entry]] = {}
        for leaf in context.leaves:
            bit = graph.mask_of_alias[leaf.alias]
            if bit & context.unit_mask:
                # A join unit never stands alone: its leaf only ever
                # arrives as the right input of its own non-inner join,
                # once every ON dependency is present.
                continue
            plans = context.leaf_plans(leaf)
            table[bit] = self._prune(
                context, [_Entry(plan, False) for plan in plans]
            )
        self.stats.add_time("leaf_plans", perf_counter() - started)

        started = perf_counter()
        # Connected-only enumeration is sound only when the whole block
        # is one component; a disconnected join graph needs the seed's
        # cross-product extensions, i.e. the exhaustive walk.
        use_graph = (
            self.enumeration == "graph"
            and not force_exhaustive
            and graph.component_count() <= 1
        )
        subsets = (
            graph.connected_subsets() if use_graph else graph.all_subsets()
        )
        visited = 0
        for subset in subsets:
            visited += 1
            candidates = self._expand_subset(context, table, subset)
            if candidates:
                self.stats.subsets_expanded += 1
                table[subset] = self._prune(context, candidates)
        if use_graph:
            leaf_count = len(graph.aliases)
            total = (1 << leaf_count) - 1 - leaf_count
            self.stats.connected_subsets_skipped += total - visited
        self.stats.add_time("dp", perf_counter() - started)
        return table

    def _expand_subset(
        self,
        context: "_BlockContext",
        table: Dict[int, List[_Entry]],
        subset_mask: int,
    ) -> List[_Entry]:
        graph = context.graph
        pairs: List[Tuple[int, int, bool]] = []
        for bit in graph.iter_bits(subset_mask):
            remainder = subset_mask & ~bit
            if remainder not in table:
                continue
            if bit & context.unit_mask and context.unit_dep(bit) & ~remainder:
                # A unit's ON condition references aliases not yet in
                # the prefix: the unit cannot be joined here.
                continue
            pairs.append((remainder, bit, graph.connects(remainder, bit)))
        if not pairs:
            # No remainder has a DP entry (possible once only connected
            # subsets are materialized): skip cleanly — this subset is
            # neither expanded nor counted.
            return []
        if any(connected for _, _, connected in pairs):
            pairs = [pair for pair in pairs if pair[2]]

        candidates: List[_Entry] = []
        for remainder, bit, _ in pairs:
            alias = graph.aliases[bit.bit_length() - 1]
            right_plans = context.leaf_plans(context.leaf(alias))
            for left_entry in table[remainder]:
                for right_plan in right_plans:
                    candidates.extend(
                        self._extend(
                            context, left_entry, remainder, right_plan,
                            alias, bit,
                        )
                    )
        return candidates

    def _extend(
        self,
        context: "_BlockContext",
        left_entry: _Entry,
        left_mask: int,
        right_plan: PlanNode,
        right_alias: str,
        right_bit: int,
    ) -> List[_Entry]:
        """Plan the alternatives for joining one more leaf onto an entry.

        Plan (1) is the join as-is; plan (2) joins with an early
        (partial) group-by on the side holding the aggregate arguments —
        the paper's Section 5.2 greedy conservative heuristic, which
        *replaces* (1) with (2) only when cheaper and no wider. With
        eager aggregation enabled the heuristic's verdict is recorded
        but both shapes are *retained* (plus COUNT-carry pre-collapses
        of an argument-free side) and compete by cost in the DP — the
        lazy plan always survives, which is what keeps the no-worse
        guarantee structural rather than heuristic."""
        plan1 = self._joinplans(
            context, left_entry.plan, left_mask, right_plan,
            right_alias, right_bit,
        )
        entries1 = [
            _Entry(plan, left_entry.grouped, left_entry.carry)
            for plan in plan1
        ]

        if (
            self.mode != "greedy"
            or not self.options.enable_pushdown
            or context.decomposed is None
        ):
            return entries1

        eager = self.options.enable_eager_aggregation

        entries2: List[_Entry] = []
        early_side = context.early_side(left_entry, left_mask, right_bit)
        if early_side is not None:
            self.stats.early_groupby_considered += 1
            if eager:
                self.stats.eager_alternatives_considered += 1
            if early_side == "left":
                early = context.early_group(
                    left_entry.plan, left_mask, left_entry.grouped,
                    prescreen=eager,
                )
                if early is not None:
                    plan2 = self._joinplans(
                        context, early, left_mask, right_plan,
                        right_alias, right_bit,
                    )
                    entries2 = [
                        _Entry(plan, True, left_entry.carry)
                        for plan in plan2
                    ]
            else:
                early = context.early_group(
                    right_plan, right_bit, False, prescreen=eager
                )
                if early is not None:
                    plan2 = self._joinplans(
                        context, left_entry.plan, left_mask, early,
                        right_alias, right_bit,
                    )
                    entries2 = [
                        _Entry(plan, True, left_entry.carry)
                        for plan in plan2
                    ]

        # The greedy comparison runs (and its counters record the
        # verdict) in both modes; only in pre-eager mode does it decide.
        chosen = entries1
        if entries2:
            if not entries1:
                chosen = entries2
            else:
                best1 = min(entries1, key=lambda e: e.plan.props.cost)
                best2 = min(entries2, key=lambda e: e.plan.props.cost)
                cheaper = best2.plan.props.cost < best1.plan.props.cost
                narrow = (
                    best2.plan.props.width <= best1.plan.props.width
                    or not self.options.width_guard
                )
                if cheaper and narrow:
                    self.stats.early_groupby_accepted += 1
                    chosen = entries2
        if not eager:
            return chosen

        return (
            entries1
            + entries2
            + self._carry_alternatives(
                context, left_entry, left_mask, right_plan,
                right_alias, right_bit,
            )
        )

    def _carry_alternatives(
        self,
        context: "_BlockContext",
        left_entry: _Entry,
        left_mask: int,
        right_plan: PlanNode,
        right_alias: str,
        right_bit: int,
    ) -> List[_Entry]:
        """COUNT-carry pre-collapse alternatives: collapse a side that
        holds *no* aggregate argument to one row per live-column
        combination plus ``__cnt = COUNT(*)``; the final group-by
        restores multiplicity by weighting the duplicate-sensitive
        aggregates. At most one carry per plan, and only plain (never
        grouped or carry-bearing) inputs are collapsed — those rules
        keep all weighting out of the DP interior."""
        mask = context.agg_arg_mask
        if mask is None or not context.agg_arg_aliases or left_entry.carry:
            return []
        out: List[_Entry] = []
        if not (mask & right_bit):
            self.stats.eager_alternatives_considered += 1
            collapsed = context.carry_group(right_plan, right_bit)
            if collapsed is not None:
                plans = self._joinplans(
                    context, left_entry.plan, left_mask, collapsed,
                    right_alias, right_bit,
                )
                out.extend(
                    _Entry(plan, left_entry.grouped, True) for plan in plans
                )
        if not left_entry.grouped and not (mask & left_mask):
            self.stats.eager_alternatives_considered += 1
            collapsed = context.carry_group(left_entry.plan, left_mask)
            if collapsed is not None:
                plans = self._joinplans(
                    context, collapsed, left_mask, right_plan,
                    right_alias, right_bit,
                )
                out.extend(_Entry(plan, False, True) for plan in plans)
        return out

    # ------------------------------------------------------------------
    # joinplan: all physical alternatives for one join
    # ------------------------------------------------------------------

    def _joinplans(
        self,
        context: "_BlockContext",
        left_plan: PlanNode,
        left_mask: int,
        right_plan: PlanNode,
        right_alias: str,
        right_bit: int,
    ) -> List[PlanNode]:
        equi, residuals = context.join_predicates(
            left_plan, left_mask, right_plan, right_alias, right_bit
        )
        projection = context.join_projection(
            left_plan, right_plan, left_mask | right_bit
        )

        unit = context.join_units.get(right_alias)
        kind = unit.kind if unit is not None else "inner"
        null_aware = unit.null_aware if unit is not None else False
        if null_aware and (len(equi) != 1 or residuals):
            raise PlanError(
                "a null-aware anti join needs exactly one membership "
                "equality and no residuals"
            )

        methods: List[Tuple[str, Optional[str]]] = []
        if equi:
            methods.append(("hj", None))
            if kind == "inner":
                methods.append(("smj", None))
                index_name = context.inlj_index(right_plan, equi)
                if index_name is not None:
                    methods.append(("inlj", index_name))
        methods.append(("nlj", None))

        plans: List[PlanNode] = []
        for method, index_name in methods:
            self.stats.joinplan_calls += 1
            ordered_equi = equi
            if method == "inlj" and index_name is not None:
                ordered_equi = context.order_equi_for_index(
                    right_plan, equi, index_name
                )
            join = JoinNode(
                left_plan,
                right_plan,
                method=method,
                equi_keys=ordered_equi,
                residuals=residuals,
                projection=projection,
                index_name=index_name,
                kind=kind,
                null_aware=null_aware,
            )
            self.model.annotate(join)
            plans.append(join)
        return plans

    # ------------------------------------------------------------------
    # Final group-by / projection
    # ------------------------------------------------------------------

    def _finalize(
        self, context: "_BlockContext", entries: List[_Entry]
    ) -> PlanNode:
        started = perf_counter()
        best: Optional[PlanNode] = None
        best_entry: Optional[_Entry] = None
        for entry in entries:
            for candidate in context.final_plans(entry):
                if best is None or candidate.props.cost < best.props.cost:
                    best = candidate
                    best_entry = entry
        assert best is not None and best_entry is not None
        self._record_adoption(best_entry)
        self.stats.add_time("finalize", perf_counter() - started)
        return best

    def _record_adoption(self, entry: _Entry) -> None:
        if self.options.enable_eager_aggregation and (
            entry.grouped or entry.carry
        ):
            self.stats.eager_alternatives_adopted += 1

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def _prune(
        self, context: "_BlockContext", candidates: List[_Entry]
    ) -> List[_Entry]:
        best: Dict[Tuple[bool, bool, Tuple[FieldKey, ...]], _Entry] = {}
        for entry in candidates:
            order = context.useful_order(entry.plan.props.order)
            key = (entry.grouped, entry.carry, order)
            incumbent = best.get(key)
            if (
                incumbent is None
                or entry.plan.props.cost < incumbent.plan.props.cost
            ):
                best[key] = entry
        kept = sorted(best.values(), key=lambda e: e.plan.props.cost)
        limit = self.options.max_plans_per_set
        pruned = kept[:limit]
        if (
            self.options.enable_eager_aggregation
            and len(kept) > limit
            and not any(not e.grouped and not e.carry for e in pruned)
        ):
            # The lazy alternative must survive pruning — it is what
            # makes every eager variant an *alternative* (the no-worse
            # guarantee is structural, not heuristic).
            lazy = [e for e in kept[limit:] if not e.grouped and not e.carry]
            if lazy:
                pruned = pruned[:-1] + [lazy[0]]
        self.stats.plans_retained += len(pruned)
        self.stats.plans_pruned += len(candidates) - len(pruned)
        return pruned


# A cached predicate-classification step: either an oriented equijoin
# candidate ("equi", left_key, right_key, predicate) still subject to
# the per-plan schema check, or a definite residual ("res", None, None,
# predicate). Steps keep the original predicate order so residual
# tuples come out byte-identical to the seed's.
_SplitStep = Tuple[str, Optional[FieldKey], Optional[FieldKey], Expression]


class _BlockContext:
    """Per-block precomputation: the bitset join graph, needed columns,
    leaf plan variants, connectivity, early-grouping construction,
    finalization."""

    def __init__(
        self,
        optimizer: BlockOptimizer,
        leaves: List[Leaf],
        predicates: Tuple[Expression, ...],
        spec: Optional[GroupingSpec],
        select: Tuple[Tuple[str, Expression], ...],
        extra_needed: FrozenSet[FieldKey] = frozenset(),
        eager_exclude: FrozenSet[FieldKey] = frozenset(),
        join_units: Tuple[JoinUnit, ...] = (),
        post_predicates: Tuple[Expression, ...] = (),
        marks: Tuple[Tuple[SubquerySpec, PlanNode], ...] = (),
    ):
        self.optimizer = optimizer
        self.catalog = optimizer.catalog
        self.model = optimizer.model
        self.leaves = leaves
        self.spec = spec
        self.select = select
        self.extra_needed = extra_needed
        self.eager_exclude = eager_exclude
        self.join_units: Dict[str, JoinUnit] = {
            unit.alias: unit for unit in join_units
        }
        self.post_predicates = post_predicates
        self.marks = marks
        self._leaf_by_alias = {leaf.alias: leaf for leaf in leaves}
        self._leaf_plan_cache: Dict[str, List[PlanNode]] = {}

        # Unit ON conditions and local filters enter the predicate pool:
        # filters place naturally (their mask is the unit's own bit, so
        # they become scan filters on the unit leaf); ON conjuncts get a
        # *forced* mask below so they apply exactly at the unit's join.
        on_predicates: List[Tuple[Expression, str]] = []
        filter_predicates: List[Expression] = []
        for unit in join_units:
            on_predicates.extend(
                (predicate, unit.alias) for predicate in unit.on
            )
            filter_predicates.extend(unit.filters)
        all_predicates = (
            predicates
            + tuple(predicate for predicate, _ in on_predicates)
            + tuple(filter_predicates)
        )
        self.predicates = all_predicates

        self.graph = JoinGraph(self._leaf_by_alias, all_predicates)
        # (predicate, strict mask): mask is None when the predicate
        # references an alias outside this block (never placeable, its
        # columns always pending), 0 when it references no alias. A unit
        # ON conjunct's mask is widened by the unit's own bit: together
        # with the dependency check in ``_expand_subset`` (the unit
        # joins only after every ON alias) this pins the conjunct to the
        # unit's join — an outer-only ON conjunct must not filter the
        # outer side, and must not be applied anywhere else.
        info: List[Tuple[Expression, Optional[int]]] = []
        for predicate in predicates:
            info.append(
                (predicate, self.graph.strict_mask_of(predicate.aliases()))
            )
        for predicate, unit_alias in on_predicates:
            strict = self.graph.strict_mask_of(predicate.aliases())
            if strict is None:
                raise PlanError(
                    f"join unit {unit_alias!r} ON condition references "
                    "an alias outside the block"
                )
            info.append(
                (predicate, strict | self.graph.mask_of_alias[unit_alias])
            )
        for predicate in filter_predicates:
            info.append(
                (predicate, self.graph.strict_mask_of(predicate.aliases()))
            )
        self._pred_info: Tuple[Tuple[Expression, Optional[int]], ...] = (
            tuple(info)
        )
        self._split_cache: Dict[Tuple[int, int], List[_SplitStep]] = {}
        self._pending_cache: Dict[int, FrozenSet[FieldKey]] = {}

        # Per-unit state: the unit's bit, and the mask of aliases its ON
        # condition references (minus itself) — the aliases that must be
        # joined before the unit can be.
        self.unit_mask = 0
        self._unit_dep: Dict[int, int] = {}
        for unit in join_units:
            bit = self.graph.mask_of_alias[unit.alias]
            self.unit_mask |= bit
            dep = 0
            for predicate in unit.on:
                strict = self.graph.strict_mask_of(predicate.aliases())
                assert strict is not None  # checked above
                dep |= strict & ~bit
            self._unit_dep[bit] = dep

        self.decomposed: Optional[DecomposedAggregates] = None
        if (
            spec is not None
            and optimizer.options.enable_pushdown
            and not join_units
            and not marks
            and not post_predicates
        ):
            # Eager partial aggregation assumes nothing intervenes
            # between the DP's joins and the coalescing group-by; the
            # post-join filter / mark stage breaks that (it filters
            # rows, and partials would have collapsed them already), so
            # blocks with units or marks plan lazily.
            self.decomposed = decompose_aggregates(spec.aggregates)
        self.agg_arg_aliases: FrozenSet[str] = frozenset()
        if spec is not None:
            aliases: Set[str] = set()
            for _, call in spec.aggregates:
                aliases |= call.aliases()
            self.agg_arg_aliases = frozenset(aliases)
        # None when an aggregate references a foreign alias: then no
        # side can ever contain all aggregate arguments.
        self.agg_arg_mask: Optional[int] = self.graph.strict_mask_of(
            self.agg_arg_aliases
        )

        # Columns the post-join stage consumes: post-predicate columns
        # plus the outer-side columns of every mark spec. They must ride
        # every join projection (the stage runs after all joins).
        post_columns: Set[FieldKey] = set()
        for predicate in post_predicates:
            post_columns |= set(predicate.columns())
        for mark_spec, _ in marks:
            if mark_spec.outer is not None:
                post_columns |= set(mark_spec.outer.columns())
            for _, outer in mark_spec.correlations:
                post_columns |= set(outer.columns())
        post_columns = {key for key in post_columns if key[0] is not None}

        # Base columns needed anywhere in the block.
        needed: Set[FieldKey] = set()
        for predicate in all_predicates:
            needed |= set(predicate.columns())
        needed |= post_columns
        if spec is not None:
            needed |= set(spec.group_keys)
            for _, call in spec.aggregates:
                needed |= set(call.columns())
            for predicate in spec.having:
                needed |= {
                    key for key in predicate.columns() if key[0] is not None
                }
        for _, source in select:
            needed |= {
                key for key in source.columns() if key[0] is not None
            }
        needed |= extra_needed
        self.needed: FrozenSet[FieldKey] = frozenset(
            key for key in needed if key[0] is not None
        )

        # Column lifetime: what an ancestor still references once every
        # predicate over a subset has been applied — the final grouping
        # keys, aggregate inputs, HAVING and select columns, plus
        # anything shared finalizations ask for. Predicate columns are
        # deliberately absent: they stay live only while some predicate
        # over them is *pending* (``pending_columns``), which is what
        # lets a join projection drop a join key or filter column the
        # moment its last predicate has been applied.
        top: Set[FieldKey] = set()
        if spec is not None:
            top |= set(spec.group_keys)
            for _, call in spec.aggregates:
                top |= set(call.columns())
            for predicate in spec.having:
                top |= {
                    key for key in predicate.columns() if key[0] is not None
                }
        for _, source in select:
            top |= {
                key for key in source.columns() if key[0] is not None
            }
        top |= extra_needed
        top |= post_columns
        self.top_needed: FrozenSet[FieldKey] = frozenset(
            key for key in top if key[0] is not None
        )

        # Interesting orders: join columns and grouping columns.
        interesting: Set[FieldKey] = set()
        for predicate in all_predicates:
            sides = equijoin_sides(predicate)
            if sides is not None:
                interesting.update(sides)
        if spec is not None:
            interesting.update(spec.group_keys)
        self.interesting = frozenset(interesting)

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def leaf(self, alias: str) -> Leaf:
        return self._leaf_by_alias[alias]

    def unit_dep(self, bit: int) -> int:
        """Mask of aliases a unit's ON condition needs joined first."""
        return self._unit_dep[bit]

    def leaf_plans(self, leaf: Leaf) -> List[PlanNode]:
        cached = self._leaf_plan_cache.get(leaf.alias)
        if cached is not None:
            return cached
        if isinstance(leaf, DerivedLeaf):
            plans = [self._derived_leaf_plan(leaf)]
        else:
            plans = self._base_leaf_plans(leaf)
        self._leaf_plan_cache[leaf.alias] = plans
        return plans

    def _local_predicates(self, alias: str) -> Tuple[Expression, ...]:
        alias_bit = self.graph.mask_of_alias[alias]
        return tuple(
            predicate
            for predicate, mask in self._pred_info
            if mask == alias_bit
        )

    def _derived_leaf_plan(self, leaf: DerivedLeaf) -> PlanNode:
        plan = leaf.plan
        if plan.props is None:
            self.model.annotate_tree(plan)
        local = self._local_predicates(leaf.alias)
        if local:
            plan = FilterNode(plan, local)
            self.model.annotate(plan)
        return plan

    def _base_leaf_plans(self, leaf: BaseLeaf) -> List[PlanNode]:
        alias = leaf.alias
        local = self._local_predicates(alias)
        if self.optimizer.options.enable_projection_pruning:
            # Scan decode narrows to live columns: scan filters evaluate
            # over the full (row-stored) page anyway, so a column only a
            # local predicate reads need not survive the scan. Page IO
            # is unchanged — only decode width shrinks.
            live = self.top_needed | self.pending_columns(
                self.graph.mask_of_alias[alias]
            )
        else:
            live = self.needed
        wanted = tuple(
            sorted(
                {
                    key[1]
                    for key in live
                    if key[0] == alias and key[1] != RID_COLUMN
                }
            )
        )
        include_rid = (alias, RID_COLUMN) in self.needed

        # Identical scans (same table, alias, filters, projection) recur
        # across the shared DP's requests and the combination loop; plan
        # and annotate them once per optimizer.
        cache_key = (leaf.ref.table, alias, local, wanted, include_rid)
        shared = self.optimizer._leaf_plan_cache.get(cache_key)
        if shared is not None:
            self.optimizer.stats.view_plans_reused += 1
            return shared

        table = self.catalog.table(leaf.ref.table)
        column_types = {column.name: column.dtype for column in table.columns}
        fields = [
            Field(alias, name, column_types[name])
            for name in wanted
            if name in column_types
        ]
        if not fields and not include_rid:
            # nothing referenced: keep the narrowest column for shape
            first = table.columns[0]
            fields = [Field(alias, first.name, first.dtype)]

        plans: List[PlanNode] = []
        heap = ScanNode(
            leaf.ref.table,
            alias,
            fields,
            filters=local,
            include_rid=include_rid,
        )
        self.model.annotate(heap)
        plans.append(heap)

        # Index equality access paths from literal predicates.
        info = self.catalog.info(leaf.ref.table)
        for predicate in local:
            literal = comparison_with_literal(predicate)
            if literal is None or literal[1] != "=":
                continue
            (_, column_name), _, value = literal
            for index in info.indexes.values():
                if index.column_names[0] != column_name:
                    continue
                if len(index.column_names) != 1:
                    continue
                remaining = tuple(p for p in local if p is not predicate)
                scan = ScanNode(
                    leaf.ref.table,
                    alias,
                    fields,
                    filters=remaining,
                    include_rid=include_rid,
                    index_name=index.name,
                    index_values=(value,),
                )
                self.model.annotate(scan)
                plans.append(scan)
        self.optimizer._leaf_plan_cache[cache_key] = plans
        return plans

    # ------------------------------------------------------------------
    # Predicates / connectivity
    # ------------------------------------------------------------------

    def _split_predicates(
        self, left_mask: int, right_bit: int, right_alias: str
    ) -> List[_SplitStep]:
        """Classify every predicate for the join (left_mask ⋈
        right_alias), memoized per (subset, alias) — the classification
        depends only on the masks, never on the physical plans."""
        key = (left_mask, right_bit)
        cached = self._split_cache.get(key)
        if cached is not None:
            self.optimizer.stats.predicate_split_cache_hits += 1
            return cached

        subset = left_mask | right_bit
        steps: List[_SplitStep] = []
        for predicate, mask in self._pred_info:
            if mask is None or mask == 0 or mask == right_bit:
                continue
            if not (mask & right_bit) or mask & ~subset:
                continue
            sides = equijoin_sides(predicate)
            if sides is not None:
                left_key, right_key = sides
                if right_key[0] != right_alias:
                    left_key, right_key = right_key, left_key
                left_alias_bit = (
                    self.graph.mask_of_alias.get(left_key[0])
                    if left_key[0] is not None
                    else None
                )
                if (
                    right_key[0] == right_alias
                    and left_alias_bit is not None
                    and left_alias_bit & left_mask
                ):
                    steps.append(("equi", left_key, right_key, predicate))
                    continue
            steps.append(("res", None, None, predicate))
        self._split_cache[key] = steps
        return steps

    def join_predicates(
        self,
        left_plan: PlanNode,
        left_mask: int,
        right_plan: PlanNode,
        right_alias: str,
        right_bit: int,
    ) -> Tuple[
        List[Tuple[FieldKey, FieldKey]], List[Expression]
    ]:
        equi: List[Tuple[FieldKey, FieldKey]] = []
        residuals: List[Expression] = []
        for kind, left_key, right_key, predicate in self._split_predicates(
            left_mask, right_bit, right_alias
        ):
            if (
                kind == "equi"
                and left_plan.schema.has(*left_key)
                and right_plan.schema.has(*right_key)
            ):
                equi.append((left_key, right_key))
            else:
                residuals.append(predicate)
        return equi, residuals

    def pending_columns(self, subset_mask: int) -> FrozenSet[FieldKey]:
        """Columns of predicates not yet fully applicable within
        *subset_mask* — they must survive projections. Memoized."""
        cached = self._pending_cache.get(subset_mask)
        if cached is not None:
            return cached
        pending: Set[FieldKey] = set()
        for predicate, mask in self._pred_info:
            if mask is None or mask & ~subset_mask:
                pending |= set(predicate.columns())
        result = frozenset(pending)
        self._pending_cache[subset_mask] = result
        return result

    def join_projection(
        self,
        left_plan: PlanNode,
        right_plan: PlanNode,
        subset_mask: int,
    ) -> List[FieldKey]:
        pruning = self.optimizer.options.enable_projection_pruning
        if pruning:
            keep = self.top_needed | self.pending_columns(subset_mask)
        else:
            keep = self.needed | self.pending_columns(subset_mask)
        combined = left_plan.schema.concat(right_plan.schema)
        projection: List[FieldKey] = []
        dropped = 0
        for field in combined:
            if field.alias is None or field.key in keep:
                projection.append(field.key)
            elif pruning and field.key in self.needed:
                dropped += 1
        if not projection:
            projection = [combined.fields[0].key]
        self.optimizer.stats.projection_columns_pruned += dropped
        return projection

    # ------------------------------------------------------------------
    # Index nested-loop support
    # ------------------------------------------------------------------

    def inlj_index(
        self,
        right_plan: PlanNode,
        equi: List[Tuple[FieldKey, FieldKey]],
    ) -> Optional[str]:
        if not isinstance(right_plan, ScanNode) or right_plan.index_name:
            return None
        info = self.catalog.info(right_plan.table_name)
        right_columns = {right_key[1] for _, right_key in equi}
        for index in info.indexes.values():
            prefix_length = 0
            for column in index.column_names:
                if column in right_columns:
                    prefix_length += 1
                else:
                    break
            if prefix_length == len(index.column_names):
                return index.name
        return None

    def order_equi_for_index(
        self,
        right_plan: PlanNode,
        equi: List[Tuple[FieldKey, FieldKey]],
        index_name: str,
    ) -> List[Tuple[FieldKey, FieldKey]]:
        assert isinstance(right_plan, ScanNode)
        info = self.catalog.info(right_plan.table_name)
        index = info.indexes[index_name]
        by_column = {right_key[1]: (left_key, right_key) for left_key, right_key in equi}
        ordered = [by_column[column] for column in index.column_names]
        return ordered

    # ------------------------------------------------------------------
    # Early grouping (eager aggregation)
    # ------------------------------------------------------------------

    def early_side(
        self,
        left_entry: _Entry,
        left_mask: int,
        right_bit: int,
    ) -> Optional[str]:
        """Which side an early group-by may be applied to — the side
        holding all aggregate arguments (one-sided, per the paper). A
        carry-bearing left is never partial-grouped: its rows stand for
        collapsed duplicates, and unweighted partials would ignore the
        multiplicity (the carry is only ever consumed at finalization)."""
        if self.decomposed is None:
            return None
        if not self.agg_arg_aliases:
            # COUNT(*)-style: either side; prefer the prefix
            return None if left_entry.carry else "left"
        if self.agg_arg_mask is None:
            return None
        if not (self.agg_arg_mask & ~left_mask):
            return None if left_entry.carry else "left"
        if not (self.agg_arg_mask & ~right_bit) and not left_entry.grouped:
            return "right"
        return None

    def _eager_keep(self, subset_mask: int) -> Set[FieldKey]:
        """Columns an eager group-by over *subset_mask* must keep as
        grouping keys: everything still needed above this point —
        pending predicate columns (which cover the border join keys),
        the final grouping columns, output columns, and any columns
        shared finalizations ask for. With eager aggregation on, the
        shared DP's pure aggregate-argument columns are excluded — they
        are consumed by the partials, and keying on them would destroy
        the collapse (kept in pre-eager mode for seed parity)."""
        keep = set(self.extra_needed)
        if self.optimizer.options.enable_eager_aggregation:
            keep -= self.eager_exclude
        keep |= self.pending_columns(subset_mask)
        if self.spec is not None:
            keep |= set(self.spec.group_keys)
        for _, source in self.select:
            keep |= {key for key in source.columns() if key[0] is not None}
        return keep

    def _eager_shrinks(self, plan: PlanNode, keys: List[FieldKey]) -> bool:
        """NDV prescreen over PR 5 statistics: generate the eager
        alternative only when the estimated partial-group count actually
        collapses the input. Skipping is safe — the lazy plan is always
        retained — so unknown statistics (reduction 1.0) mean skip."""
        props = plan.props
        if props is None:
            return True
        groups, reduction = self.model.estimator.partial_group_rows(
            props.rows, tuple(keys), props.colmeta
        )
        return groups > 0 and reduction >= 1.05

    def early_group(
        self,
        plan: PlanNode,
        subset_mask: int,
        already_grouped: bool,
        prescreen: bool = False,
    ) -> Optional[PlanNode]:
        """Wrap *plan* in an early (partial) group-by, or None when no
        sound grouping keys exist (or, with *prescreen*, when the
        statistics estimate no collapse)."""
        assert self.decomposed is not None
        keys = eager_group_keys(
            plan.schema, self._eager_keep(subset_mask)
        )
        if not keys:
            return None
        aggregates = partial_aggregates(
            self.decomposed, plan.schema, already_grouped
        )
        if aggregates is None:
            return None
        if prescreen and not self._eager_shrinks(plan, keys):
            return None

        order = plan.props.order if plan.props else ()
        if set(order[: len(keys)]) == set(keys) and keys:
            method = "sort"
        else:
            method = "hash"
        group = GroupByNode(
            plan,
            group_keys=keys,
            aggregates=aggregates,
            method=method,
            eager="partial",
        )
        self.model.annotate(group)
        return group

    def carry_group(
        self, plan: PlanNode, subset_mask: int
    ) -> Optional[PlanNode]:
        """Collapse *plan* to one row per live-column combination plus
        a ``__cnt = COUNT(*)`` carry, or None when unsound (no grouping
        keys, or the schema already holds alias-``None`` columns whose
        multiplicity a collapse would destroy) or when the statistics
        estimate no collapse."""
        for field in plan.schema:
            if field.alias is None:
                return None
        keys = eager_group_keys(
            plan.schema, self._eager_keep(subset_mask)
        )
        if not keys:
            return None
        if not self._eager_shrinks(plan, keys):
            return None
        order = plan.props.order if plan.props else ()
        method = (
            "sort" if set(order[: len(keys)]) == set(keys) else "hash"
        )
        group = GroupByNode(
            plan,
            group_keys=keys,
            aggregates=carry_aggregates(),
            method=method,
            eager="carry",
        )
        self.model.annotate(group)
        return group

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def final_plans(
        self,
        entry: _Entry,
        spec: Optional[GroupingSpec] = None,
        select: Optional[Tuple[Tuple[str, Expression], ...]] = None,
    ) -> List[PlanNode]:
        """Finalize one DP entry: attach the post-join stage (LEFT-unit
        filters and subquery-mark fallbacks), the final group-by (per
        *spec*, defaulting to the block's own), and the output
        projection."""
        plan = self._apply_post_stage(entry.plan)
        if spec is None:
            spec = self.spec
        if select is None:
            select = self.select
        if spec is None:
            if entry.grouped or entry.carry:
                raise PlanError(
                    "an eagerly aggregated plan cannot finalize "
                    "without a spec"
                )
            return [self._project(plan, select)]

        eager_marker: Optional[str] = None
        if entry.grouped or entry.carry:
            assert self.decomposed is not None
            eager_marker = "merge"
            if entry.grouped and entry.carry:
                # partials on one side, a carry on another: coalesce
                # with carry-weighted SUMs
                aggregates = weighted_coalescers(self.decomposed)
            elif entry.grouped:
                aggregates = self.decomposed.coalescers
            else:
                # carry only: the aggregate arguments are still raw
                # rows — compute the partials weighted by the carry
                aggregates = weighted_partials(self.decomposed)
            finalize = self.decomposed.finalize_substitution()
            having = tuple(p.substitute(finalize) for p in spec.having)
            select = tuple(
                (name, source.substitute(finalize))
                for name, source in select
            )
        else:
            aggregates = spec.aggregates
            having = spec.having

        results: List[PlanNode] = []
        methods = ["hash"]
        order = plan.props.order if plan.props else ()
        keys = list(spec.group_keys)
        if keys and set(order[: len(keys)]) == set(keys):
            methods.append("sort")
        for method in methods:
            group = GroupByNode(
                plan,
                group_keys=keys,
                aggregates=aggregates,
                having=having,
                method=method,
                eager=eager_marker,
            )
            self.model.annotate(group)
            results.append(self._project(group, select))
        return results

    def _apply_post_stage(self, plan: PlanNode) -> PlanNode:
        """The post-join stage: WHERE conjuncts over LEFT-unit columns
        (which must see the NULL-padded rows, never act as match
        conditions) and the naive mark-join fallbacks for unflattened
        subquery specs. Runs between the joins and the final group-by."""
        if self.post_predicates:
            filter_node = FilterNode(plan, self.post_predicates)
            self.model.annotate(filter_node)
            plan = filter_node
        for mark_spec, inner_plan in self.marks:
            mark = SubqueryMarkNode(
                plan,
                inner_plan,
                kind=mark_spec.kind,
                negate=mark_spec.negate,
                op=mark_spec.op,
                outer=mark_spec.outer,
                correlations=mark_spec.correlations,
                value=mark_spec.value,
                aggregate=mark_spec.aggregate,
            )
            self.model.annotate(mark)
            plan = mark
        return plan

    def _project(
        self,
        plan: PlanNode,
        select: Tuple[Tuple[str, Expression], ...],
    ) -> PlanNode:
        project = ProjectNode(
            plan, [(None, name, source) for name, source in select]
        )
        self.model.annotate(project)
        return project

    # ------------------------------------------------------------------
    # Order bookkeeping
    # ------------------------------------------------------------------

    def useful_order(
        self, order: Tuple[FieldKey, ...]
    ) -> Tuple[FieldKey, ...]:
        useful: List[FieldKey] = []
        for key in order:
            if key in self.interesting:
                useful.append(key)
            else:
                break
        return tuple(useful)
