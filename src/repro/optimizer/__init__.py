"""Cost-based optimizers for queries with aggregate views (Section 5).

Three optimizers, in increasing search-space order:

- :func:`optimize_traditional` — the Section 5.1 baseline: each view
  optimized locally with Selinger DP (group-by after all joins), then
  the outer block the same way, views treated as base relations.
- greedy conservative heuristic (``mode="greedy"`` in the block
  optimizer) — Section 5.2: the DP also considers an early group-by at
  each extension, keeping it only when cheaper and no wider.
- :func:`optimize_query` — the full Section 5.3/5.4 algorithm:
  invariant-split each view to its minimal invariant set, enumerate
  pull-up sets W per view (restricted by predicate sharing and k-level
  pull-up), optimize every Φ(V′, W) with the greedy DP, then the outer
  block, and pick the cheapest combination. Guaranteed no worse than
  the traditional plan.
"""

from .options import OptimizerOptions
from .stats import SearchStats
from .block import BlockOptimizer, GroupingSpec, BaseLeaf, DerivedLeaf
from .canonical import (
    OptimizationResult,
    optimize_query,
    optimize_traditional,
)

__all__ = [
    "OptimizerOptions",
    "SearchStats",
    "BlockOptimizer",
    "GroupingSpec",
    "BaseLeaf",
    "DerivedLeaf",
    "OptimizationResult",
    "optimize_query",
    "optimize_traditional",
]
