"""Column-lifetime analysis and projection pruning over plan trees.

The block DP (``block.py``) already builds pruned join projections from
its live-set formula, but two plan classes never pass through it with
full lifetime knowledge:

- **view boundaries** — a view's block is optimized for *all* of the
  view's output columns, while the outer query may reference only a
  few. The RenameNode wrapping the view plan, the ProjectNode under it,
  and every operator below can all narrow once the outer requirement
  is known.
- **hand-built plans** — benchmark and test plans constructed directly
  from plan nodes, where no optimizer ever ran.

:func:`prune_plan` closes both: a top-down pass computes, for every
node, the minimal live-column set any ancestor still references (final
outputs, join keys and residual columns of joins above, grouping keys,
aggregate inputs, HAVING/filter/sort columns), then rebuilds the tree
bottom-up with narrowed scan decode lists, join projections, group-by
output projections, and rename mappings.

Guarantees (held by the differential tests):

- the root's output schema is unchanged — only *interior* widths
  shrink;
- rows are bag-identical to the unpruned plan on every engine (pruned
  columns are, by construction, never read by any surviving operator);
- base-table page IO is byte-identical (pages are row-stored: a scan
  reads whole pages no matter how few columns it decodes). Spill
  charges of *intermediates* can only shrink, since narrower rows pack
  more rows per page.

The pass is idempotent and never mutates its input: unchanged subtrees
are returned as-is, rebuilt nodes are fresh.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from ..algebra.expressions import FieldKey
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
    SubqueryMarkNode,
)
from ..cost.model import CostModel
from .stats import SearchStats

Required = FrozenSet[FieldKey]


def prune_plan(
    plan: PlanNode,
    model: Optional[CostModel] = None,
    stats: Optional[SearchStats] = None,
) -> PlanNode:
    """Return *plan* with interior projections narrowed to live columns.

    The root's output schema (names, order, types) is preserved
    exactly. When *model* is given the rebuilt tree is re-annotated so
    ``props`` reflects the narrowed widths; otherwise ``props`` of
    rebuilt nodes is left unset. *stats*, when given, records whether
    the pass changed anything (``plans_repruned``).
    """
    required = frozenset(field.key for field in plan.schema)
    pruned, changed = _prune(plan, required)
    if not changed:
        return plan
    if model is not None:
        model.annotate_tree(pruned)
    if stats is not None:
        stats.plans_repruned += 1
    return pruned


def live_sets(plan: PlanNode) -> List[Tuple[PlanNode, Required]]:
    """The per-node live sets the pruning pass computes, in pre-order —
    the unit-testable core of the lifetime analysis. Each entry pairs a
    node with the columns some ancestor (or the final output) still
    references out of that node's schema."""
    out: List[Tuple[PlanNode, Required]] = []

    def visit(node: PlanNode, required: Required) -> None:
        out.append((node, required))
        for child, child_required in zip(
            node.children, _child_requirements(node, required)
        ):
            visit(child, child_required)

    visit(plan, frozenset(field.key for field in plan.schema))
    return out


# ----------------------------------------------------------------------
# Requirement propagation
# ----------------------------------------------------------------------


def _predicate_columns(predicates) -> Set[FieldKey]:
    columns: Set[FieldKey] = set()
    for predicate in predicates:
        columns |= set(predicate.columns())
    return columns


def _child_requirements(
    node: PlanNode, required: Required
) -> List[Required]:
    """What each child must still produce for *node* to compute its
    *required* output columns."""
    if isinstance(node, JoinNode):
        keep: Set[FieldKey] = {
            key for key in node.projection if key in required
        }
        keep |= _predicate_columns(node.residuals)
        for left_key, right_key in node.equi_keys:
            keep.add(left_key)
            keep.add(right_key)
        left_schema = node.left.schema
        left_req = frozenset(key for key in keep if left_schema.has(*key))
        right_schema = node.right.schema
        right_req = frozenset(
            key
            for key in keep
            if not left_schema.has(*key) and right_schema.has(*key)
        )
        return [left_req, right_req]
    if isinstance(node, GroupByNode):
        keep = set(node.group_keys)
        for _, call in node.aggregates:
            keep |= set(call.columns())
        # HAVING runs over the internal schema; only its base-column
        # references constrain the child.
        child_schema = node.child.schema
        keep |= {
            key
            for key in _predicate_columns(node.having)
            if child_schema.has(*key)
        }
        return [frozenset(keep)]
    if isinstance(node, ProjectNode):
        keep = set()
        outputs = [
            output
            for output in node.outputs
            if (output[0], output[1]) in required
        ] or list(node.outputs[:1])
        for alias, name, expression in outputs:
            keep |= set(expression.columns())
        return [frozenset(keep)]
    if isinstance(node, RenameNode):
        return [
            frozenset(
                source
                for new_alias, new_name, source in node.mapping
                if (new_alias, new_name) in required
            )
        ]
    if isinstance(node, FilterNode):
        return [frozenset(required | _predicate_columns(node.predicates))]
    if isinstance(node, SubqueryMarkNode):
        keep = set(required)
        if node.outer is not None:
            keep |= set(node.outer.columns())
        for _, outer in node.correlations:
            keep |= set(outer.columns())
        # The inner side is consulted wholesale per outer row (its
        # columns feed correlations, the membership value, and the
        # aggregate): never prune through it.
        return [
            frozenset(keep),
            frozenset(field.key for field in node.inner.schema),
        ]
    if isinstance(node, SortNode):
        return [frozenset(required | set(node.keys))]
    if isinstance(node, LimitNode):
        return [required]
    return []


# ----------------------------------------------------------------------
# Bottom-up rebuild
# ----------------------------------------------------------------------


def _prune(plan: PlanNode, required: Required) -> Tuple[PlanNode, bool]:
    if isinstance(plan, ScanNode):
        return _prune_scan(plan, required)
    if isinstance(plan, JoinNode):
        return _prune_join(plan, required)
    if isinstance(plan, GroupByNode):
        return _prune_group_by(plan, required)
    if isinstance(plan, RenameNode):
        return _prune_rename(plan, required)
    if isinstance(plan, ProjectNode):
        outputs = [
            output
            for output in plan.outputs
            if (output[0], output[1]) in required
        ] or list(plan.outputs[:1])
        child_req = _child_requirements(plan, required)[0]
        child, changed = _prune(plan.child, child_req)
        changed = changed or len(outputs) != len(plan.outputs)
        if not changed:
            return plan, False
        return ProjectNode(child, outputs), True
    if isinstance(plan, FilterNode):
        child_req = _child_requirements(plan, required)[0]
        child, changed = _prune(plan.child, child_req)
        if not changed:
            return plan, False
        return FilterNode(child, plan.predicates), True
    if isinstance(plan, SubqueryMarkNode):
        child_req = _child_requirements(plan, required)[0]
        child, changed = _prune(plan.child, child_req)
        if not changed:
            return plan, False
        return (
            SubqueryMarkNode(
                child,
                plan.inner,
                kind=plan.kind,
                negate=plan.negate,
                op=plan.op,
                outer=plan.outer,
                correlations=plan.correlations,
                value=plan.value,
                aggregate=plan.aggregate,
            ),
            True,
        )
    if isinstance(plan, SortNode):
        child_req = _child_requirements(plan, required)[0]
        child, changed = _prune(plan.child, child_req)
        if not changed:
            return plan, False
        return SortNode(child, plan.keys, plan.descending), True
    if isinstance(plan, LimitNode):
        child, changed = _prune(plan.child, required)
        if not changed:
            return plan, False
        return LimitNode(child, plan.count), True
    # Unknown node type: leave it (and its subtree) untouched.
    return plan, False


def _prune_scan(plan: ScanNode, required: Required) -> Tuple[ScanNode, bool]:
    from ..catalog.schema import RID_COLUMN

    fields = [
        field
        for field in plan.schema
        if field.key in required and field.name != RID_COLUMN
    ]
    include_rid = plan.include_rid and (plan.alias, RID_COLUMN) in required
    if not fields and not include_rid:
        # Nothing referenced (e.g. a bare COUNT(*) input): keep the
        # narrowest existing column for shape, as the block DP does.
        fields = [plan.schema.fields[0]]
        include_rid = plan.include_rid and plan.schema.fields[0].name == RID_COLUMN
    if (
        len(fields) + (1 if include_rid else 0)
        == len(plan.schema.fields)
        and include_rid == plan.include_rid
    ):
        return plan, False
    return (
        ScanNode(
            plan.table_name,
            plan.alias,
            fields,
            filters=plan.filters,
            include_rid=include_rid,
            index_name=plan.index_name,
            index_values=plan.index_values,
        ),
        True,
    )


def _prune_join(plan: JoinNode, required: Required) -> Tuple[JoinNode, bool]:
    projection = [key for key in plan.projection if key in required]
    if not projection:
        projection = [plan.projection[0]]
    left_req, right_req = _child_requirements(
        plan, frozenset(projection) | (required & frozenset(plan.projection))
    )
    left, left_changed = _prune(plan.left, left_req)
    right, right_changed = _prune(plan.right, right_req)
    changed = (
        left_changed
        or right_changed
        or tuple(projection) != plan.projection
    )
    if not changed:
        return plan, False
    return (
        JoinNode(
            left,
            right,
            method=plan.method,
            equi_keys=plan.equi_keys,
            residuals=plan.residuals,
            projection=projection,
            index_name=plan.index_name,
            kind=plan.kind,
            null_aware=plan.null_aware,
        ),
        True,
    )


def _prune_group_by(
    plan: GroupByNode, required: Required
) -> Tuple[GroupByNode, bool]:
    projection = [key for key in plan.projection if key in required]
    if not projection:
        projection = [plan.projection[0]]
    child_req = _child_requirements(plan, frozenset(projection))[0]
    child, child_changed = _prune(plan.child, child_req)
    changed = child_changed or tuple(projection) != plan.projection
    if not changed:
        return plan, False
    return (
        GroupByNode(
            child,
            group_keys=plan.group_keys,
            aggregates=plan.aggregates,
            having=plan.having,
            method=plan.method,
            projection=projection,
            eager=plan.eager,
        ),
        True,
    )


def _prune_rename(
    plan: RenameNode, required: Required
) -> Tuple[RenameNode, bool]:
    mapping = [
        entry for entry in plan.mapping if (entry[0], entry[1]) in required
    ]
    if not mapping:
        mapping = [plan.mapping[0]]
    child_req = frozenset(source for _, _, source in mapping)
    child, child_changed = _prune(plan.child, child_req)
    changed = child_changed or tuple(mapping) != plan.mapping
    if not changed:
        return plan, False
    return RenameNode(child, mapping), True
