"""Aggregate functions and the decomposability protocol.

The paper allows "built-in or user-defined (without side-effects)"
aggregate functions (Section 2) and requires *decomposable* aggregates
for simple coalescing grouping (Section 4.2): "we must be able to
subsequently coalesce two groups that agree on the grouping columns."

Each aggregate function provides:

- a runtime accumulator (``make_accumulator``) used by the group-by
  physical operators, supporting ``add``/``merge``/``value``;
- optionally a :meth:`AggregateFunction.decompose` description — how to
  compute *partial* aggregates below a join and *coalesce* them above —
  which is exactly what simple coalescing needs. Non-decomposable
  functions (e.g. MEDIAN) return ``None`` and are skipped by the
  transformation.

New functions are added with :func:`register_aggregate`, mirroring the
paper's support for user-defined aggregates; STDDEV is registered this
way as the worked example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datatypes import DataType
from ..errors import PlanError
from .expressions import Arith, ColumnRef, Expression, FuncCall, IfNull, Literal


class Accumulator:
    """Runtime state of one aggregate over one group."""

    def add(self, value: object) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        raise NotImplementedError

    def value(self) -> object:
        raise NotImplementedError


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate invocation: function name + argument expression.

    ``arg`` is ``None`` only for ``COUNT(*)``.
    """

    func_name: str
    arg: Optional[Expression]

    def function(self) -> "AggregateFunction":
        return aggregate_function(self.func_name)

    def columns(self):
        return self.arg.columns() if self.arg is not None else frozenset()

    def aliases(self):
        return self.arg.aliases() if self.arg is not None else frozenset()

    def substitute(self, mapping) -> "AggregateCall":
        if self.arg is None:
            return self
        return AggregateCall(self.func_name, self.arg.substitute(mapping))

    def output_dtype(self, schema) -> DataType:
        arg_dtype = (
            self.arg.dtype(schema) if self.arg is not None else DataType.INT
        )
        return self.function().output_dtype(arg_dtype)

    def display(self) -> str:
        inner = self.arg.display() if self.arg is not None else "*"
        return f"{self.func_name}({inner})"

    def __repr__(self) -> str:
        return self.display()


@dataclass(frozen=True)
class Decomposition:
    """How to split one aggregate across two group-by levels.

    - ``partials``: aggregate calls computed by the *lower* group-by,
      over the original argument; each gets a generated output column.
    - ``coalescers``: for each partial (same order), the aggregate
      function name the *upper* group-by applies to that partial column.
    - ``finalize``: builds the final value from the coalesced columns.
      Given the list of upper output columns (as expressions), returns
      the expression producing the original aggregate's value.
    """

    partials: Tuple[AggregateCall, ...]
    coalescers: Tuple[str, ...]
    finalize: Callable[[List[Expression]], Expression]


class AggregateFunction:
    """Base class for aggregate functions."""

    name: str = ""

    def make_accumulator(self) -> Accumulator:
        raise NotImplementedError

    def output_dtype(self, arg_dtype: DataType) -> DataType:
        return arg_dtype

    def decompose(self, arg: Optional[Expression]) -> Optional[Decomposition]:
        """Decomposition for simple coalescing, or ``None`` if this
        function is not decomposable."""
        return None

    @property
    def decomposable(self) -> bool:
        probe = ColumnRef("_probe", "_probe")
        return self.decompose(probe) is not None


# ----------------------------------------------------------------------
# Accumulators
# ----------------------------------------------------------------------


class _CountAccumulator(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: object) -> None:
        if value is not None:  # COUNT skips NULLs; COUNT(*) feeds True
            self.count += 1

    def merge(self, other: Accumulator) -> None:
        assert isinstance(other, _CountAccumulator)
        self.count += other.count

    def value(self) -> object:
        return self.count


class _SumAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total = 0
        self.seen = False

    def add(self, value: object) -> None:
        if value is None:
            return
        self.total += value  # type: ignore[operator]
        self.seen = True

    def merge(self, other: Accumulator) -> None:
        assert isinstance(other, _SumAccumulator)
        if other.seen:
            self.total += other.total
            self.seen = True

    def value(self) -> object:
        if not self.seen:
            return None  # SQL: SUM over no non-NULL input is NULL
        return self.total


class _AvgAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: object) -> None:
        if value is None:
            return
        self.total += value  # type: ignore[operator]
        self.count += 1

    def merge(self, other: Accumulator) -> None:
        assert isinstance(other, _AvgAccumulator)
        self.total += other.total
        self.count += other.count

    def value(self) -> object:
        if not self.count:
            return None  # SQL: AVG over no non-NULL input is NULL
        return self.total / self.count


class _MinMaxAccumulator(Accumulator):
    def __init__(self, pick: Callable) -> None:
        self.pick = pick
        self.best: object = None
        self.seen = False

    def add(self, value: object) -> None:
        if value is None:
            return
        if not self.seen:
            self.best = value
            self.seen = True
        else:
            self.best = self.pick(self.best, value)

    def merge(self, other: Accumulator) -> None:
        assert isinstance(other, _MinMaxAccumulator)
        if other.seen:
            self.add(other.best)

    def value(self) -> object:
        if not self.seen:
            return None  # SQL: MIN/MAX over no non-NULL input is NULL
        return self.best


class _StddevAccumulator(Accumulator):
    """Population standard deviation via (count, sum, sum of squares)."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0

    def add(self, value: object) -> None:
        if value is None:
            return
        self.count += 1
        self.total += value  # type: ignore[operator]
        self.total_sq += value * value  # type: ignore[operator]

    def merge(self, other: Accumulator) -> None:
        assert isinstance(other, _StddevAccumulator)
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq

    def value(self) -> object:
        if not self.count:
            return None  # SQL: no non-NULL input makes the result NULL
        mean = self.total / self.count
        variance = max(0.0, self.total_sq / self.count - mean * mean)
        return math.sqrt(variance)


class _MedianAccumulator(Accumulator):
    """Holistic aggregate kept as the canonical *non-decomposable*
    example: its accumulator must retain all values."""

    def __init__(self) -> None:
        self.values: List = []

    def add(self, value: object) -> None:
        if value is None:
            return
        self.values.append(value)

    def merge(self, other: Accumulator) -> None:
        assert isinstance(other, _MedianAccumulator)
        self.values.extend(other.values)

    def value(self) -> object:
        if not self.values:
            return None  # SQL: no non-NULL input makes the result NULL
        ordered = sorted(self.values)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2


# ----------------------------------------------------------------------
# Built-in functions
# ----------------------------------------------------------------------


class CountFunction(AggregateFunction):
    """COUNT(x) / COUNT(*): row counting; coalesces via SUM."""
    name = "count"

    def make_accumulator(self) -> Accumulator:
        return _CountAccumulator()

    def output_dtype(self, arg_dtype: DataType) -> DataType:
        return DataType.INT

    def decompose(self, arg: Optional[Expression]) -> Decomposition:
        # count = sum of partial counts. The SUM coalescer yields NULL
        # over zero contributing partials (SQL: SUM of nothing is NULL)
        # while COUNT of nothing must be 0 — the finalizer coerces.
        return Decomposition(
            partials=(AggregateCall("count", arg),),
            coalescers=("sum",),
            finalize=lambda cols: IfNull(cols[0], Literal(0)),
        )


class SumFunction(AggregateFunction):
    """SUM(x); its own coalescer (a sum of sums is a sum)."""
    name = "sum"

    def make_accumulator(self) -> Accumulator:
        return _SumAccumulator()

    def decompose(self, arg: Optional[Expression]) -> Decomposition:
        return Decomposition(
            partials=(AggregateCall("sum", arg),),
            coalescers=("sum",),
            finalize=lambda cols: cols[0],
        )


class AvgFunction(AggregateFunction):
    """AVG(x); decomposes into SUM and COUNT partials."""
    name = "avg"

    def make_accumulator(self) -> Accumulator:
        return _AvgAccumulator()

    def output_dtype(self, arg_dtype: DataType) -> DataType:
        return DataType.FLOAT

    def decompose(self, arg: Optional[Expression]) -> Decomposition:
        # avg = sum of partial sums / sum of partial counts
        return Decomposition(
            partials=(
                AggregateCall("sum", arg),
                AggregateCall("count", arg),
            ),
            coalescers=("sum", "sum"),
            finalize=lambda cols: Arith("/", cols[0], cols[1]),
        )


class MinFunction(AggregateFunction):
    """MIN(x); duplicate-insensitive, self-coalescing."""
    name = "min"

    def make_accumulator(self) -> Accumulator:
        return _MinMaxAccumulator(min)

    def decompose(self, arg: Optional[Expression]) -> Decomposition:
        return Decomposition(
            partials=(AggregateCall("min", arg),),
            coalescers=("min",),
            finalize=lambda cols: cols[0],
        )


class MaxFunction(AggregateFunction):
    """MAX(x); duplicate-insensitive, self-coalescing."""
    name = "max"

    def make_accumulator(self) -> Accumulator:
        return _MinMaxAccumulator(max)

    def decompose(self, arg: Optional[Expression]) -> Decomposition:
        return Decomposition(
            partials=(AggregateCall("max", arg),),
            coalescers=("max",),
            finalize=lambda cols: cols[0],
        )


def _stddev_finalize(cols: List[Expression]) -> Expression:
    """sqrt(sumsq/count - (sum/count)^2) over coalesced partials."""
    total, total_sq, count = cols
    mean = Arith("/", total, count)
    mean_sq = Arith("*", mean, mean)
    variance = Arith("-", Arith("/", total_sq, count), mean_sq)
    return FuncCall("sqrt", lambda v: math.sqrt(max(0.0, v)), [variance])


class StddevFunction(AggregateFunction):
    """Population standard deviation — the paper's example of a
    user-defined aggregate function (Section 2)."""

    name = "stddev"

    def make_accumulator(self) -> Accumulator:
        return _StddevAccumulator()

    def output_dtype(self, arg_dtype: DataType) -> DataType:
        return DataType.FLOAT

    def decompose(self, arg: Optional[Expression]) -> Optional[Decomposition]:
        if arg is None:
            return None
        return Decomposition(
            partials=(
                AggregateCall("sum", arg),
                AggregateCall("sum", Arith("*", arg, arg)),
                AggregateCall("count", arg),
            ),
            coalescers=("sum", "sum", "sum"),
            finalize=_stddev_finalize,
        )


class MedianFunction(AggregateFunction):
    """MEDIAN(x): the canonical holistic (non-decomposable) aggregate."""
    name = "median"

    def make_accumulator(self) -> Accumulator:
        return _MedianAccumulator()

    def output_dtype(self, arg_dtype: DataType) -> DataType:
        return DataType.FLOAT

    # decompose() inherited: returns None — MEDIAN is holistic.


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, AggregateFunction] = {}


def register_aggregate(function: AggregateFunction) -> None:
    """Register a (possibly user-defined) aggregate function by name."""
    if not function.name:
        raise PlanError("aggregate function must define a name")
    _REGISTRY[function.name.lower()] = function


def aggregate_function(name: str) -> AggregateFunction:
    """Look up a registered aggregate function by (case-insensitive) name."""
    function = _REGISTRY.get(name.lower())
    if function is None:
        known = ", ".join(sorted(_REGISTRY))
        raise PlanError(f"unknown aggregate {name!r} (known: {known})")
    return function


def known_aggregates() -> Sequence[str]:
    """Sorted names of all registered aggregate functions."""
    return sorted(_REGISTRY)


for _function in (
    CountFunction(),
    SumFunction(),
    AvgFunction(),
    MinFunction(),
    MaxFunction(),
    StddevFunction(),
    MedianFunction(),
):
    register_aggregate(_function)
