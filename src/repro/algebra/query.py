"""The logical query model: SPJ blocks, aggregate views, canonical form.

The paper's target class (Figure 3) is a join among base tables
``B1..Bn`` and aggregate views ``Q1..Qm``, optionally followed by an
outer group-by ``G0`` with a HAVING clause. Each aggregate view is a
single-block query ``G(V)``: a select-project-join expression ``V`` with
a group-by operator ``G`` (Section 2).

:class:`QueryBlock` models one single-block query (grouped or not);
:class:`AggregateView` is a named, grouped block; :class:`CanonicalQuery`
is the full Figure 3 form.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import BindError, PlanError
from .aggregates import AggregateCall
from .expressions import (
    ColumnRef,
    Expression,
    FieldKey,
    equijoin_sides,
)

JOIN_UNIT_KINDS = ("left", "semi", "anti")
SUBQUERY_KINDS = ("scalar", "in", "exists")


@dataclass(frozen=True)
class TableRef:
    """A reference to a stored table under an alias (``emp e``)."""

    table: str
    alias: str

    def __post_init__(self) -> None:
        if not self.table or not self.alias:
            raise PlanError("table reference needs a table name and alias")


@dataclass(frozen=True)
class QueryBlock:
    """A single-block query: SPJ plus an optional group-by/HAVING.

    - ``relations``: the base tables joined by the block (the paper's V).
    - ``predicates``: WHERE conjuncts over the relations' columns.
    - ``group_by``: grouping columns; empty for a pure SPJ block.
    - ``aggregates``: ``(output_name, AggregateCall)`` pairs. Aggregate
      outputs are referenced downstream as unqualified columns
      (``ColumnRef(None, output_name)``).
    - ``having``: conjuncts over grouping columns and aggregate outputs.
    - ``select``: ``(output_name, Expression)`` pairs defining the output
      columns; for grouped blocks each source must be a grouping column
      or an aggregate output (SQL semantics, Section 2).
    """

    relations: Tuple[TableRef, ...]
    predicates: Tuple[Expression, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[Tuple[str, AggregateCall], ...] = ()
    having: Tuple[Expression, ...] = ()
    select: Tuple[Tuple[str, Expression], ...] = ()

    def __post_init__(self) -> None:
        if not self.relations:
            raise PlanError("a query block needs at least one relation")
        aliases = [ref.alias for ref in self.relations]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate aliases in block: {aliases}")
        if self.having and not self.is_grouped:
            raise PlanError("HAVING requires a GROUP BY")
        if self.aggregates and not self.group_by:
            # aggregates without GROUP BY would be a scalar aggregate
            # block; the paper's views always group (Section 2).
            raise PlanError(
                "aggregate outputs require grouping columns in this model"
            )

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by)

    @property
    def aliases(self) -> FrozenSet[str]:
        return frozenset(ref.alias for ref in self.relations)

    def alias_map(self) -> Dict[str, str]:
        """alias -> table name."""
        return {ref.alias: ref.table for ref in self.relations}

    @property
    def aggregate_names(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.aggregates)

    def aggregate_output_keys(self) -> FrozenSet[FieldKey]:
        """Field keys of the aggregate outputs (alias is always None)."""
        return frozenset((None, name) for name, _ in self.aggregates)

    def validate(self) -> None:
        """Check SQL semantics: grouped-select discipline, alias scoping."""
        aliases = self.aliases
        for predicate in self.predicates:
            unknown = predicate.aliases() - aliases
            if unknown:
                raise BindError(
                    f"WHERE predicate {predicate.display()} references "
                    f"unknown aliases {sorted(unknown)}"
                )
        for reference in self.group_by:
            if reference.alias is not None and reference.alias not in aliases:
                raise BindError(
                    f"grouping column {reference.display()} references an "
                    "unknown alias"
                )
        group_keys = {reference.key for reference in self.group_by}
        agg_keys = self.aggregate_output_keys()
        if self.is_grouped:
            for output_name, source in self.select:
                for key in source.columns():
                    if key not in group_keys and key not in agg_keys:
                        raise BindError(
                            f"selected column {key} must be a grouping "
                            "column or an aggregate output (SQL semantics)"
                        )
            for predicate in self.having:
                for key in predicate.columns():
                    if key not in group_keys and key not in agg_keys:
                        raise BindError(
                            f"HAVING column {key} must be a grouping column "
                            "or an aggregate output"
                        )


@dataclass(frozen=True)
class AggregateView:
    """A named aggregate view: ``alias`` is how the outer query refers to
    it; ``block`` must be grouped (that is what makes it *aggregate*)."""

    alias: str
    block: QueryBlock

    def __post_init__(self) -> None:
        if not self.block.is_grouped:
            raise PlanError(
                f"view {self.alias!r} has no GROUP BY; flatten it instead "
                "(traditional view merging applies to SPJ views)"
            )

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.block.select)

    def output_source(self, name: str) -> Expression:
        """The inner expression a view output column refers to."""
        for output_name, source in self.block.select:
            if output_name == name:
                return source
        raise BindError(f"view {self.alias!r} has no output column {name!r}")

    def aggregated_outputs(self) -> FrozenSet[str]:
        """View output columns whose source is an aggregate (the
        "aggregated columns" pull-up must defer predicates on)."""
        agg_keys = self.block.aggregate_output_keys()
        result: Set[str] = set()
        for output_name, source in self.block.select:
            if source.columns() & agg_keys:
                result.add(output_name)
        return frozenset(result)


@dataclass(frozen=True)
class JoinUnit:
    """A non-inner join attached to the outer block.

    ``alias`` is the joined side: a base table when ``table`` is given,
    otherwise the alias of an :class:`AggregateView` in the enclosing
    query. ``kind`` is one of ``left`` (LEFT OUTER), ``semi`` (IN /
    EXISTS flattening) or ``anti`` (NOT IN / NOT EXISTS flattening).
    ``on`` holds the join condition's conjuncts; for a ``left`` unit
    unmatched probe rows survive NULL-padded, for ``semi``/``anti`` the
    output schema is the probe side only.

    ``filters`` are conjuncts over the unit's own columns, applied to
    the joined side *before* matching (a flattened subquery's local
    WHERE). ``null_aware`` marks the single-equality anti-join produced
    by ``NOT IN``: an empty (filtered) inner side keeps every probe
    row, a NULL anywhere in the inner key column drops *all* unmatched
    rows, and a NULL probe key drops its row whenever the inner side is
    non-empty (SQL three-valued logic).
    """

    alias: str
    kind: str
    table: Optional[TableRef] = None
    on: Tuple[Expression, ...] = ()
    filters: Tuple[Expression, ...] = ()
    null_aware: bool = False

    def __post_init__(self) -> None:
        if self.kind not in JOIN_UNIT_KINDS:
            raise PlanError(f"unknown join unit kind {self.kind!r}")
        if not self.alias:
            raise PlanError("a join unit needs an alias")
        if self.table is not None and self.table.alias != self.alias:
            raise PlanError("join unit alias must match its table alias")
        if self.null_aware and self.kind != "anti":
            raise PlanError("null_aware applies to anti joins only")


@dataclass(frozen=True)
class SubquerySpec:
    """A WHERE-clause subquery lowered by the binder, not yet flattened.

    The binder renames the inner block's aliases with an ``{alias}__``
    prefix so they can never collide with outer aliases. The
    decorrelation pass either flattens the spec into views/join units or
    leaves it behind for naive mark-join execution (inner side executed
    once, correlation matched per outer row).

    - ``kind``: ``scalar`` (comparison with an aggregate subquery),
      ``in`` (membership), or ``exists``.
    - ``negate``: NOT IN / NOT EXISTS.
    - ``op`` / ``outer``: for ``scalar``, the comparison operator and
      outer-side expression (normalized to ``outer op (subquery)``);
      for ``in``, ``outer`` is the left operand of the membership test.
    - ``relations`` / ``local_predicates``: the inner FROM and its
      uncorrelated WHERE conjuncts (renamed aliases).
    - ``correlations``: ``(inner_column, outer_column)`` equality pairs.
    - ``value``: the inner select item for ``in``.
    - ``aggregate``: the aggregate call for ``scalar``.
    """

    alias: str
    kind: str
    negate: bool = False
    op: Optional[str] = None
    outer: Optional[Expression] = None
    relations: Tuple[TableRef, ...] = ()
    local_predicates: Tuple[Expression, ...] = ()
    correlations: Tuple[Tuple[ColumnRef, ColumnRef], ...] = ()
    value: Optional[Expression] = None
    aggregate: Optional[AggregateCall] = None

    def __post_init__(self) -> None:
        if self.kind not in SUBQUERY_KINDS:
            raise PlanError(f"unknown subquery kind {self.kind!r}")
        if not self.relations:
            raise PlanError("a subquery spec needs at least one relation")

    @property
    def inner_aliases(self) -> FrozenSet[str]:
        return frozenset(ref.alias for ref in self.relations)

    @property
    def is_correlated(self) -> bool:
        return bool(self.correlations)


@dataclass(frozen=True)
class CanonicalQuery:
    """The Figure 3 form: base tables + aggregate views, joined, with an
    optional outer group-by ``G0`` and HAVING.

    ``order_by`` lists ``(output_name, descending)`` pairs over the
    SELECT outputs and ``limit`` keeps the first N ordered rows; both
    are presentation-level (applied above the optimized plan) and
    orthogonal to the paper's transformations.
    """

    base_tables: Tuple[TableRef, ...] = ()
    views: Tuple[AggregateView, ...] = ()
    predicates: Tuple[Expression, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[Tuple[str, AggregateCall], ...] = ()
    having: Tuple[Expression, ...] = ()
    select: Tuple[Tuple[str, Expression], ...] = ()
    order_by: Tuple[Tuple[str, bool], ...] = ()
    limit: Optional[int] = None
    joins: Tuple[JoinUnit, ...] = ()
    subqueries: Tuple[SubquerySpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.base_tables and not self.views:
            raise PlanError("a query needs at least one table or view")
        aliases = [ref.alias for ref in self.base_tables] + [
            view.alias for view in self.views
        ] + [unit.alias for unit in self.joins if unit.table is not None]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate aliases in query: {aliases}")
        for unit in self.joins:
            if unit.table is None and unit.alias not in {
                view.alias for view in self.views
            }:
                raise PlanError(
                    f"join unit {unit.alias!r} names no view in the query"
                )

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by)

    @property
    def aliases(self) -> FrozenSet[str]:
        return (
            frozenset(ref.alias for ref in self.base_tables)
            | frozenset(view.alias for view in self.views)
            | frozenset(
                unit.alias for unit in self.joins if unit.table is not None
            )
        )

    @property
    def join_unit_aliases(self) -> FrozenSet[str]:
        return frozenset(unit.alias for unit in self.joins)

    def join_unit(self, alias: str) -> Optional[JoinUnit]:
        for unit in self.joins:
            if unit.alias == alias:
                return unit
        return None

    @property
    def view_aliases(self) -> FrozenSet[str]:
        return frozenset(view.alias for view in self.views)

    def view(self, alias: str) -> AggregateView:
        for view in self.views:
            if view.alias == alias:
                return view
        raise BindError(f"no view with alias {alias!r}")

    @property
    def aggregate_names(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.aggregates)


# ----------------------------------------------------------------------
# Column equivalence classes
# ----------------------------------------------------------------------


class EquivalenceClasses:
    """Union-find over column field keys induced by equi-join predicates.

    Used by the minimal-invariant-set computation (Section 4.1): a
    grouping column sourced from a removable relation is acceptable when
    an equivalent column exists on the retained side (``e.dno = d.dno``
    makes the two interchangeable as grouping columns).
    """

    def __init__(self, predicates: Iterable[Expression] = ()):
        self._parent: Dict[FieldKey, FieldKey] = {}
        for predicate in predicates:
            sides = equijoin_sides(predicate)
            if sides is not None:
                self.union(*sides)

    def _find(self, key: FieldKey) -> FieldKey:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self._find(parent)
        self._parent[key] = root
        return root

    def union(self, a: FieldKey, b: FieldKey) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def equivalent(self, a: FieldKey, b: FieldKey) -> bool:
        return self._find(a) == self._find(b)

    def members(self, key: FieldKey) -> Set[FieldKey]:
        root = self._find(key)
        return {
            candidate
            for candidate in self._parent
            if self._find(candidate) == root
        }

    def representative_in(
        self, key: FieldKey, aliases: FrozenSet[str]
    ) -> Optional[FieldKey]:
        """An equivalent key whose alias lies in *aliases*, if any."""
        if key[0] in aliases:
            return key
        for candidate in sorted(self.members(key), key=str):
            if candidate[0] in aliases:
                return candidate
        return None


def rename_block_aliases(
    block: QueryBlock, alias_map: Dict[str, str]
) -> QueryBlock:
    """Rewrite a block's relation aliases everywhere (relations,
    predicates, grouping columns, aggregate arguments, HAVING, select).

    Used when instantiating a view under an outer alias: the view body's
    internal aliases are made globally unique so the same view can be
    referenced twice in one query.
    """

    def rename_expr(expression: Expression) -> Expression:
        mapping = {
            key: ColumnRef(alias_map.get(key[0], key[0]), key[1])
            for key in expression.columns()
            if key[0] in alias_map
        }
        return expression.substitute(mapping) if mapping else expression

    return QueryBlock(
        relations=tuple(
            TableRef(ref.table, alias_map.get(ref.alias, ref.alias))
            for ref in block.relations
        ),
        predicates=tuple(rename_expr(p) for p in block.predicates),
        group_by=tuple(
            ColumnRef(alias_map.get(c.alias, c.alias), c.name)
            for c in block.group_by
        ),
        aggregates=tuple(
            (
                name,
                AggregateCall(
                    call.func_name,
                    rename_expr(call.arg) if call.arg is not None else None,
                ),
            )
            for name, call in block.aggregates
        ),
        having=tuple(rename_expr(p) for p in block.having),
        select=tuple(
            (name, rename_expr(source)) for name, source in block.select
        ),
    )


def predicates_within(
    predicates: Sequence[Expression], aliases: FrozenSet[str]
) -> Tuple[Expression, ...]:
    """Conjuncts that reference only the given aliases."""
    return tuple(
        predicate
        for predicate in predicates
        if predicate.aliases() <= aliases
    )


def predicates_crossing(
    predicates: Sequence[Expression],
    left: FrozenSet[str],
    right: FrozenSet[str],
) -> Tuple[Expression, ...]:
    """Conjuncts referencing both alias sets (and nothing outside them)."""
    return tuple(
        predicate
        for predicate in predicates
        if predicate.aliases() & left
        and predicate.aliases() & right
        and predicate.aliases() <= (left | right)
    )
