"""Operator trees — the paper's "execution plans" (Section 2).

A plan is a tree of Scan / Join / GroupBy / Sort / Rename nodes. As in
the paper, projection is not an explicit operator: each join and
group-by carries an associated list of projection columns. Joins name
the relations they join and their join predicates; group-by operators
carry grouping columns, aggregating columns (with function names), and
HAVING predicates.

Nodes are structural: they compute their output :class:`RowSchema` but
carry no statistics. The cost annotator (``repro.cost``) attaches a
``props`` attribute (cardinality, pages, IO cost, sort order) without
the plan layer depending on it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..catalog.schema import RID_COLUMN, Field, RowSchema
from ..datatypes import DataType
from ..errors import PlanError
from .aggregates import AggregateCall
from .expressions import Expression, FieldKey


class PlanNode:
    """Base class of plan operators."""

    def __init__(self) -> None:
        self.props: Any = None  # filled in by the cost annotator
        self.actual_rows: Optional[int] = None  # recorded by the executor
        self.op_metrics: Any = None  # OperatorMetrics, set by the executor

    @property
    def schema(self) -> RowSchema:
        raise NotImplementedError

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description used by :func:`explain`."""
        raise NotImplementedError

    def aliases(self) -> frozenset:
        return frozenset(self.schema.aliases())


class ScanNode(PlanNode):
    """Scan of one stored table under an alias.

    - ``fields``: the output fields (projection applied at the scan).
    - ``filters``: selection conjuncts evaluated during the scan.
    - ``index_name``: when set, the scan uses an index equality access
      path with literal probe values ``index_values``.
    - ``include_rid`` exposes the hidden tuple id (pull-up's surrogate
      key, Section 3).
    """

    def __init__(
        self,
        table_name: str,
        alias: str,
        fields: Sequence[Field],
        filters: Sequence[Expression] = (),
        include_rid: bool = False,
        index_name: Optional[str] = None,
        index_values: Tuple[Any, ...] = (),
    ):
        super().__init__()
        self.table_name = table_name
        self.alias = alias
        self.filters: Tuple[Expression, ...] = tuple(filters)
        self.include_rid = include_rid
        self.index_name = index_name
        self.index_values = index_values
        field_list = list(fields)
        if include_rid and not any(f.name == RID_COLUMN for f in field_list):
            field_list.append(Field(alias, RID_COLUMN, DataType.INT))
        self._schema = RowSchema(field_list)

    @property
    def schema(self) -> RowSchema:
        return self._schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def describe(self) -> str:
        access = f"index {self.index_name}" if self.index_name else "heap"
        filters = (
            " filter " + " AND ".join(f.display() for f in self.filters)
            if self.filters
            else ""
        )
        return f"Scan {self.table_name} AS {self.alias} [{access}]{filters}"


JOIN_METHODS = ("nlj", "inlj", "smj", "hj")

JOIN_KINDS = ("inner", "left", "semi", "anti")


class JoinNode(PlanNode):
    """A join of two subplans.

    - ``equi_keys``: pairs ``(left_key, right_key)`` of equality join
      columns (may be empty: cross/ineq join, NLJ only).
    - ``residuals``: other predicates evaluated at this join.
    - ``projection``: the field keys retained in the output (the
      projection list associated with the join, Section 2).
    - ``index_name``: for ``inlj``, the inner-side index probed with the
      outer row's join key values.
    - ``kind``: ``inner`` (default), ``left`` (LEFT OUTER: unmatched
      left rows survive with a NULL-padded right side), ``semi`` /
      ``anti`` (left rows with at least one / no match; output schema is
      the left side only). For non-inner kinds the equi keys *and*
      residuals together form the ON condition, evaluated during
      matching — never as a post-join filter.
    - ``null_aware``: the NOT IN anti-join variant (see
      :class:`repro.algebra.query.JoinUnit`).
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        method: str,
        equi_keys: Sequence[Tuple[FieldKey, FieldKey]] = (),
        residuals: Sequence[Expression] = (),
        projection: Optional[Sequence[FieldKey]] = None,
        index_name: Optional[str] = None,
        kind: str = "inner",
        null_aware: bool = False,
    ):
        super().__init__()
        if method not in JOIN_METHODS:
            raise PlanError(f"unknown join method {method!r}")
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        if method in ("smj", "hj", "inlj") and not equi_keys:
            raise PlanError(f"join method {method!r} requires equi-join keys")
        if method == "inlj" and index_name is None:
            raise PlanError("index nested-loop join requires an index")
        if kind != "inner" and method in ("smj", "inlj"):
            raise PlanError(
                f"join kind {kind!r} supports hash and nested-loop only"
            )
        if null_aware and kind != "anti":
            raise PlanError("null_aware applies to anti joins only")
        if null_aware and len(equi_keys) != 1:
            raise PlanError("null-aware anti join needs exactly one equality")
        self.left = left
        self.right = right
        self.method = method
        self.kind = kind
        self.null_aware = null_aware
        self.equi_keys: Tuple[Tuple[FieldKey, FieldKey], ...] = tuple(equi_keys)
        self.residuals: Tuple[Expression, ...] = tuple(residuals)
        self.index_name = index_name
        combined = left.schema.concat(right.schema)
        if kind in ("semi", "anti"):
            left_keys = {field.key for field in left.schema}
            if projection is None:
                projection = [field.key for field in left.schema]
            else:
                projection = [key for key in projection if key in left_keys]
            output = left.schema
        else:
            if projection is None:
                projection = [field.key for field in combined]
            output = combined
        self.projection: Tuple[FieldKey, ...] = tuple(projection)
        self._schema = output.project(self.projection)

    @property
    def schema(self) -> RowSchema:
        return self._schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        keys = ", ".join(
            f"{_show_key(a)}={_show_key(b)}" for a, b in self.equi_keys
        )
        residuals = (
            " residual " + " AND ".join(r.display() for r in self.residuals)
            if self.residuals
            else ""
        )
        via = f" via {self.index_name}" if self.index_name else ""
        kind = "" if self.kind == "inner" else f" {self.kind}"
        if self.null_aware:
            kind += " null-aware"
        return f"Join [{self.method}{via}{kind}] on ({keys}){residuals}"


class SubqueryMarkNode(PlanNode):
    """Naive subquery evaluation: the fallback when decorrelation does
    not apply (and the ablation baseline when it is disabled).

    The ``inner`` subplan is executed **once** and materialized; each
    ``child`` row is then kept or dropped by re-scanning the
    materialized inner rows under the row's correlation values —
    deliberately O(outer x inner), which is exactly what flattening into
    semi/anti joins and aggregate views avoids.

    - ``kind`` / ``negate`` / ``op``: as in
      :class:`repro.algebra.query.SubquerySpec`.
    - ``outer``: outer-side expression (scalar comparison LHS / IN LHS),
      evaluated against child rows.
    - ``correlations``: ``(inner_column, outer_column)`` equality pairs;
      the inner side resolves against the inner subplan's schema.
    - ``value``: the inner select item for ``in`` (inner schema).
    - ``aggregate``: the aggregate call for ``scalar`` (inner schema);
      an empty correlation group yields COUNT = 0, others NULL.

    Membership uses SQL three-valued logic: a NULL probe value or a
    NULL among the inner values can make the test UNKNOWN, which a
    WHERE clause treats as false.
    """

    def __init__(
        self,
        child: PlanNode,
        inner: PlanNode,
        kind: str,
        negate: bool = False,
        op: Optional[str] = None,
        outer: Optional[Expression] = None,
        correlations: Sequence[Tuple[Expression, Expression]] = (),
        value: Optional[Expression] = None,
        aggregate: Optional[AggregateCall] = None,
    ):
        super().__init__()
        if kind not in ("scalar", "in", "exists"):
            raise PlanError(f"unknown subquery mark kind {kind!r}")
        self.child = child
        self.inner = inner
        self.kind = kind
        self.negate = negate
        self.op = op
        self.outer = outer
        self.correlations: Tuple[Tuple[Expression, Expression], ...] = tuple(
            correlations
        )
        self.value = value
        self.aggregate = aggregate

    @property
    def schema(self) -> RowSchema:
        return self.child.schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child, self.inner)

    def describe(self) -> str:
        label = {"scalar": f"scalar {self.op}", "in": "in", "exists": "exists"}[
            self.kind
        ]
        if self.negate:
            label = "not " + label
        correlated = (
            " correlated("
            + ", ".join(
                f"{inner.display()}={outer.display()}"
                for inner, outer in self.correlations
            )
            + ")"
            if self.correlations
            else ""
        )
        return f"SubqueryMark [{label}]{correlated}"


GROUP_METHODS = ("hash", "sort")


class GroupByNode(PlanNode):
    """A group-by operator: grouping columns, aggregating columns (with
    their functions), and HAVING predicates — the paper's annotations of
    a group-by operator (Section 2).

    The output schema is the grouping fields (keeping their original
    aliases so predicates above still resolve) followed by one field per
    aggregate, named ``(None, output_name)``. ``projection`` optionally
    restricts/reorders the output (e.g. pull-up drops the surrogate key
    columns after grouping).

    ``eager`` marks this node's role in an eager partial-aggregation
    plan (``"partial"``, ``"carry"``, or ``"merge"``); ``None`` for an
    ordinary group-by. Purely informational — rendered by ``explain``
    so eager plans are recognizable — and preserved by plan rewrites.
    """

    def __init__(
        self,
        child: PlanNode,
        group_keys: Sequence[FieldKey],
        aggregates: Sequence[Tuple[str, AggregateCall]],
        having: Sequence[Expression] = (),
        method: str = "hash",
        projection: Optional[Sequence[FieldKey]] = None,
        eager: Optional[str] = None,
    ):
        super().__init__()
        if method not in GROUP_METHODS:
            raise PlanError(f"unknown group-by method {method!r}")
        if eager not in (None, "partial", "carry", "merge"):
            raise PlanError(f"unknown eager marker {eager!r}")
        self.child = child
        self.group_keys: Tuple[FieldKey, ...] = tuple(group_keys)
        self.aggregates: Tuple[Tuple[str, AggregateCall], ...] = tuple(aggregates)
        self.having: Tuple[Expression, ...] = tuple(having)
        self.method = method
        self.eager = eager

        child_schema = child.schema
        fields: List[Field] = [
            child_schema.fields[child_schema.index_of(*key)]
            for key in self.group_keys
        ]
        seen = {field.key for field in fields}
        for name, call in self.aggregates:
            if (None, name) in seen:
                raise PlanError(f"aggregate output {name!r} collides")
            fields.append(
                Field(None, name, call.output_dtype(child_schema))
            )
            seen.add((None, name))
        full_schema = RowSchema(fields)
        if projection is None:
            projection = [field.key for field in full_schema]
        self.projection: Tuple[FieldKey, ...] = tuple(projection)
        self._internal_schema = full_schema
        self._schema = full_schema.project(self.projection)

    @property
    def internal_schema(self) -> RowSchema:
        """Schema before the output projection (what HAVING sees)."""
        return self._internal_schema

    @property
    def schema(self) -> RowSchema:
        return self._schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(_show_key(key) for key in self.group_keys)
        aggs = ", ".join(
            f"{call.display()} AS {name}" for name, call in self.aggregates
        )
        having = (
            " having " + " AND ".join(h.display() for h in self.having)
            if self.having
            else ""
        )
        marker = f" eager={self.eager}" if self.eager else ""
        return (
            f"GroupBy [{self.method}{marker}] keys=({keys}) "
            f"aggs=({aggs}){having}"
        )


class FilterNode(PlanNode):
    """Selection over an arbitrary input.

    Base-table selections live in :class:`ScanNode` filters and join
    predicates in :class:`JoinNode`; this node covers the remaining
    case — predicates over a *derived* relation's output (e.g. an outer
    predicate on a view's aggregate column). Pipelined, zero IO.
    """

    def __init__(self, child: PlanNode, predicates: Sequence[Expression]):
        super().__init__()
        if not predicates:
            raise PlanError("filter needs at least one predicate")
        self.child = child
        self.predicates: Tuple[Expression, ...] = tuple(predicates)

    @property
    def schema(self) -> RowSchema:
        return self.child.schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Filter " + " AND ".join(
            predicate.display() for predicate in self.predicates
        )


class ProjectNode(PlanNode):
    """Computed projection: each output is an expression over the child.

    Needed wherever an output is *computed* rather than copied — e.g.
    finalizing decomposed aggregates after simple coalescing
    (``avg = sum_partial / count_partial``) or arithmetic in a SELECT
    list. Costs no IO (pipelined).
    """

    def __init__(
        self,
        child: PlanNode,
        outputs: Sequence[Tuple[Optional[str], str, Expression]],
    ):
        super().__init__()
        if not outputs:
            raise PlanError("projection needs at least one output")
        self.child = child
        self.outputs: Tuple[Tuple[Optional[str], str, Expression], ...] = tuple(
            outputs
        )
        child_schema = child.schema
        self._schema = RowSchema(
            Field(alias, name, expression.dtype(child_schema))
            for alias, name, expression in self.outputs
        )

    @property
    def schema(self) -> RowSchema:
        return self._schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        parts = ", ".join(
            f"{expression.display()} AS "
            + (f"{alias}.{name}" if alias else name)
            for alias, name, expression in self.outputs
        )
        return f"Project ({parts})"


class SortNode(PlanNode):
    """Explicit sort, establishing an interesting order.

    ``descending`` marks per-key direction (default all ascending).
    Only an all-ascending sort establishes an order property the
    optimizer exploits; descending sorts exist for ORDER BY.
    """

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[FieldKey],
        descending: Optional[Sequence[bool]] = None,
    ):
        super().__init__()
        if not keys:
            raise PlanError("sort needs at least one key")
        self.child = child
        self.keys: Tuple[FieldKey, ...] = tuple(keys)
        if descending is None:
            descending = [False] * len(self.keys)
        if len(descending) != len(self.keys):
            raise PlanError("sort directions must match the keys")
        self.descending: Tuple[bool, ...] = tuple(descending)
        for key in self.keys:
            child.schema.index_of(*key)  # validates

    @property
    def schema(self) -> RowSchema:
        return self.child.schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            _show_key(key) + (" desc" if desc else "")
            for key, desc in zip(self.keys, self.descending)
        )
        return f"Sort by ({keys})"


class LimitNode(PlanNode):
    """Keep the first N rows of the input (ORDER BY ... LIMIT n)."""

    def __init__(self, child: PlanNode, count: int):
        super().__init__()
        if count < 0:
            raise PlanError("limit must be non-negative")
        self.child = child
        self.count = count

    @property
    def schema(self) -> RowSchema:
        return self.child.schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit {self.count}"


class RenameNode(PlanNode):
    """Projects and renames output columns.

    Used at view boundaries (the view's output columns become
    ``view_alias.column``) and at the query top (the SELECT list's output
    names). ``mapping`` is a sequence of ``(new_alias, new_name,
    source_key)`` triples.
    """

    def __init__(
        self,
        child: PlanNode,
        mapping: Sequence[Tuple[Optional[str], str, FieldKey]],
    ):
        super().__init__()
        self.child = child
        self.mapping: Tuple[Tuple[Optional[str], str, FieldKey], ...] = tuple(
            mapping
        )
        child_schema = child.schema
        self._schema = RowSchema(
            Field(
                new_alias,
                new_name,
                child_schema.field_of(*source).dtype,
            )
            for new_alias, new_name, source in self.mapping
        )
        self._positions = tuple(
            child_schema.index_of(*source) for _, _, source in self.mapping
        )

    @property
    def positions(self) -> Tuple[int, ...]:
        """Child row positions, in output order (used by the executor)."""
        return self._positions

    @property
    def schema(self) -> RowSchema:
        return self._schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        parts = ", ".join(
            f"{_show_key(source)} AS "
            + (f"{alias}.{name}" if alias else name)
            for alias, name, source in self.mapping
        )
        return f"Rename ({parts})"


def _show_key(key: FieldKey) -> str:
    alias, name = key
    return f"{alias}.{name}" if alias else name


def explain(plan: PlanNode, indent: int = 0, analyze: bool = False) -> str:
    """Readable multi-line rendering of a plan, with cost annotations
    when the plan has been costed. With ``analyze=True``, executed row
    counts (recorded by the executor) are shown next to the estimates —
    the usual EXPLAIN ANALYZE reading — along with each operator's
    q-error (multiplicative estimate-vs-actual error, 1.0 = exact)."""
    pad = "  " * indent
    line = pad + plan.describe()
    props = plan.props
    if props is not None:
        line += (
            f"  [rows={props.rows:.0f} pages={props.pages:.0f} "
            f"cost={props.cost:.0f}]"
        )
    if analyze and plan.actual_rows is not None:
        line += f"  (actual rows={plan.actual_rows}"
        metrics = getattr(plan, "op_metrics", None)
        if metrics is not None:
            line += (
                f" batches={metrics.batches}"
                f" time={metrics.seconds * 1000.0:.2f}ms"
            )
            if metrics.width:
                line += f" width={metrics.width}"
            if metrics.cells:
                line += f" cells={metrics.cells}"
            if metrics.fused:
                line += " fused"
            if metrics.spill_reads or metrics.spill_writes:
                line += (
                    f" spill={metrics.spill_reads}r/"
                    f"{metrics.spill_writes}w"
                )
        if props is not None:
            from ..stats.feedback import q_error

            line += f" q={q_error(props.rows, plan.actual_rows):.2f}"
        line += ")"
    lines = [line]
    for child in plan.children:
        lines.append(explain(child, indent + 1, analyze))
    return "\n".join(lines)


def plan_nodes(plan: PlanNode):
    """Yield every node of the plan tree (pre-order)."""
    yield plan
    for child in plan.children:
        yield from plan_nodes(child)
