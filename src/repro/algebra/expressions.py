"""Scalar expressions over aliased columns.

Expressions appear as selection/join predicates (WHERE conjuncts), HAVING
conditions over aggregate outputs, and arithmetic inside aggregate
arguments. They are immutable and hashable, so transformations can move
them between operator trees and deduplicate them freely.

Evaluation is two-step: :meth:`Expression.bind` compiles the expression
against a :class:`~repro.catalog.schema.RowSchema` into a plain
``row -> value`` closure, so per-row evaluation costs one function call
instead of a tree walk.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from ..catalog.schema import RowSchema
from ..datatypes import DataType, infer_type
from ..errors import PlanError

FieldKey = Tuple[Optional[str], str]
"""A column identity: (table alias or None, column name)."""


class Expression:
    """Base class of all scalar expressions.

    ``columns()`` and ``aliases()`` are memoized: expressions are
    immutable, and the optimizer's enumeration loops ask for them on
    every connectivity / predicate-placement / projection check, so
    each expression computes its frozensets exactly once. Subclasses
    implement :meth:`_compute_columns`; the base class (which has no
    ``__slots__``, so every instance carries a ``__dict__``) stores the
    results.
    """

    def columns(self) -> FrozenSet[FieldKey]:
        """All column references appearing in this expression."""
        try:
            return self._columns_memo  # type: ignore[attr-defined]
        except AttributeError:
            memo = self._compute_columns()
            self._columns_memo = memo
            return memo

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        raise NotImplementedError

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        """Compile to a ``row -> value`` closure for *schema*."""
        raise NotImplementedError

    def dtype(self, schema: RowSchema) -> DataType:
        """The result type of this expression over *schema*."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[FieldKey, "Expression"]) -> "Expression":
        """Return a copy with column references replaced per *mapping*."""
        raise NotImplementedError

    def aliases(self) -> FrozenSet[str]:
        """Table aliases this expression refers to (None excluded)."""
        try:
            return self._aliases_memo  # type: ignore[attr-defined]
        except AttributeError:
            memo = frozenset(
                alias for alias, _ in self.columns() if alias is not None
            )
            self._aliases_memo = memo
            return memo

    def display(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.display()


class ColumnRef(Expression):
    """A reference to a column of some table alias (or a computed field)."""

    __slots__ = ("alias", "name")

    def __init__(self, alias: Optional[str], name: str):
        self.alias = alias
        self.name = name

    @property
    def key(self) -> FieldKey:
        return (self.alias, self.name)

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return frozenset({self.key})

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        position = schema.index_of(self.alias, self.name)
        return lambda row: row[position]

    def dtype(self, schema: RowSchema) -> DataType:
        return schema.field_of(self.alias, self.name).dtype

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        replacement = mapping.get(self.key)
        return replacement if replacement is not None else self

    def display(self) -> str:
        return f"{self.alias}.{self.name}" if self.alias else self.name

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnRef)
            and self.alias == other.alias
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash(("col", self.alias, self.name))


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return frozenset()

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        value = self.value
        return lambda row: value

    def dtype(self, schema: RowSchema) -> DataType:
        return infer_type(self.value)

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return self

    def display(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("lit", self.value))


class Parameter(Expression):
    """A prepared-statement placeholder (``$1``, ``$2``, ...).

    Parameters stand where literals would in WHERE/HAVING predicates.
    They survive binding and optimization as opaque constants of unknown
    value — the cardinality estimator falls back to its non-MCV default
    selectivity, index-probe extraction skips them, and view-matching
    subsumption proofs refuse them — and they must be replaced with
    :class:`Literal` values (``repro.server.planrewrite.bind_parameters``)
    before a plan executes. Indexes are 1-based, following PREPARE
    convention.
    """

    __slots__ = ("index",)

    def __init__(self, index: int):
        if index < 1:
            raise PlanError(f"parameter indexes are 1-based, got {index}")
        self.index = index

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return frozenset()

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        raise PlanError(
            f"parameter ${self.index} is unbound; EXECUTE the prepared "
            "statement with a value for it"
        )

    def dtype(self, schema: RowSchema) -> DataType:
        raise PlanError(
            f"parameter ${self.index} has no type until EXECUTE binds it; "
            "parameters may only appear in predicates"
        )

    def substitute(self, mapping: Dict[FieldKey, "Expression"]) -> "Expression":
        return self

    def display(self) -> str:
        return f"${self.index}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Parameter) and self.index == other.index

    def __hash__(self) -> int:
        return hash(("param", self.index))


def _null_guarded(op: Callable[[Any, Any], bool]) -> Callable[[Any, Any], Any]:
    """SQL comparison semantics: any NULL operand makes the result
    UNKNOWN (represented as ``None``), never True or False."""

    def compare(a: Any, b: Any) -> Any:
        if a is None or b is None:
            return None
        return op(a, b)

    return compare


_COMPARISON_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "=": _null_guarded(lambda a, b: a == b),
    "!=": _null_guarded(lambda a, b: a != b),
    "<": _null_guarded(lambda a, b: a < b),
    "<=": _null_guarded(lambda a, b: a <= b),
    ">": _null_guarded(lambda a, b: a > b),
    ">=": _null_guarded(lambda a, b: a >= b),
}

COMPARISON_FLIP = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


class Comparison(Expression):
    """A binary comparison: ``left op right``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARISON_OPS:
            raise PlanError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return self.left.columns() | self.right.columns()

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        op = _COMPARISON_OPS[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: op(left(row), right(row))

    def dtype(self, schema: RowSchema) -> DataType:
        return DataType.BOOL

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return Comparison(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def display(self) -> str:
        return f"({self.left.display()} {self.op} {self.right.display()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.op, self.left, self.right))


class And(Expression):
    """Conjunction of one or more expressions."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expression]):
        if not items:
            raise PlanError("AND of zero conjuncts")
        self.items: Tuple[Expression, ...] = tuple(items)

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        result: FrozenSet[FieldKey] = frozenset()
        for item in self.items:
            result |= item.columns()
        return result

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        bound = [item.bind(schema) for item in self.items]

        def evaluate(row: Tuple[Any, ...]) -> Any:
            # Kleene AND: False dominates, else UNKNOWN (None) sticks.
            unknown = False
            for check in bound:
                value = check(row)
                if value is None:
                    unknown = True
                elif not value:
                    return False
            return None if unknown else True

        return evaluate

    def dtype(self, schema: RowSchema) -> DataType:
        return DataType.BOOL

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return And([item.substitute(mapping) for item in self.items])

    def display(self) -> str:
        return " AND ".join(item.display() for item in self.items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.items == other.items

    def __hash__(self) -> int:
        return hash(("and", self.items))


class Or(Expression):
    """Disjunction of one or more expressions."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expression]):
        if not items:
            raise PlanError("OR of zero disjuncts")
        self.items: Tuple[Expression, ...] = tuple(items)

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        result: FrozenSet[FieldKey] = frozenset()
        for item in self.items:
            result |= item.columns()
        return result

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        bound = [item.bind(schema) for item in self.items]

        def evaluate(row: Tuple[Any, ...]) -> Any:
            # Kleene OR: True dominates, else UNKNOWN (None) sticks.
            unknown = False
            for check in bound:
                value = check(row)
                if value is None:
                    unknown = True
                elif value:
                    return True
            return None if unknown else False

        return evaluate

    def dtype(self, schema: RowSchema) -> DataType:
        return DataType.BOOL

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return Or([item.substitute(mapping) for item in self.items])

    def display(self) -> str:
        return "(" + " OR ".join(item.display() for item in self.items) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.items == other.items

    def __hash__(self) -> int:
        return hash(("or", self.items))


class Not(Expression):
    """Logical negation."""

    __slots__ = ("item",)

    def __init__(self, item: Expression):
        self.item = item

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return self.item.columns()

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        bound = self.item.bind(schema)

        def evaluate(row: Tuple[Any, ...]) -> Any:
            value = bound(row)  # NOT UNKNOWN stays UNKNOWN (Kleene)
            return None if value is None else not value

        return evaluate

    def dtype(self, schema: RowSchema) -> DataType:
        return DataType.BOOL

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return Not(self.item.substitute(mapping))

    def display(self) -> str:
        return f"NOT {self.item.display()}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.item == other.item

    def __hash__(self) -> int:
        return hash(("not", self.item))


def _null_arith(op: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """SQL arithmetic: any NULL operand makes the result NULL."""

    def apply(a: Any, b: Any) -> Any:
        if a is None or b is None:
            return None
        return op(a, b)

    return apply


_ARITH_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": _null_arith(lambda a, b: a + b),
    "-": _null_arith(lambda a, b: a - b),
    "*": _null_arith(lambda a, b: a * b),
    "/": _null_arith(lambda a, b: a / b),
}


class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL`` — the only predicates
    that are never UNKNOWN, so NULL-bearing rows stay reachable."""

    __slots__ = ("item", "negate")

    def __init__(self, item: Expression, negate: bool = False):
        self.item = item
        self.negate = negate

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return self.item.columns()

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        bound = self.item.bind(schema)
        if self.negate:
            return lambda row: bound(row) is not None
        return lambda row: bound(row) is None

    def dtype(self, schema: RowSchema) -> DataType:
        return DataType.BOOL

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return IsNull(self.item.substitute(mapping), self.negate)

    def display(self) -> str:
        suffix = "IS NOT NULL" if self.negate else "IS NULL"
        return f"({self.item.display()} {suffix})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IsNull)
            and self.item == other.item
            and self.negate == other.negate
        )

    def __hash__(self) -> int:
        return hash(("isnull", self.item, self.negate))


class Arith(Expression):
    """Binary arithmetic: ``left op right`` with op in ``+ - * /``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITH_OPS:
            raise PlanError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return self.left.columns() | self.right.columns()

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        op = _ARITH_OPS[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: op(left(row), right(row))

    def dtype(self, schema: RowSchema) -> DataType:
        if self.op == "/":
            return DataType.FLOAT
        left = self.left.dtype(schema)
        right = self.right.dtype(schema)
        if DataType.FLOAT in (left, right):
            return DataType.FLOAT
        return left

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return Arith(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def display(self) -> str:
        return f"({self.left.display()} {self.op} {self.right.display()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Arith)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("arith", self.op, self.left, self.right))


class FuncCall(Expression):
    """A scalar function call (sqrt, abs, ...) used by aggregate
    finalization expressions such as STDDEV's."""

    __slots__ = ("func_name", "func", "args")

    def __init__(
        self,
        func_name: str,
        func: Callable[..., Any],
        args: Sequence[Expression],
    ):
        self.func_name = func_name
        self.func = func
        self.args: Tuple[Expression, ...] = tuple(args)

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        result: FrozenSet[FieldKey] = frozenset()
        for arg in self.args:
            result |= arg.columns()
        return result

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        func = self.func
        bound = [arg.bind(schema) for arg in self.args]

        def evaluate(row: Tuple[Any, ...]) -> Any:
            values = [e(row) for e in bound]
            if any(value is None for value in values):
                return None  # SQL scalar functions are NULL-propagating
            return func(*values)

        return evaluate

    def dtype(self, schema: RowSchema) -> DataType:
        return DataType.FLOAT

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return FuncCall(
            self.func_name,
            self.func,
            [arg.substitute(mapping) for arg in self.args],
        )

    def display(self) -> str:
        args = ", ".join(arg.display() for arg in self.args)
        return f"{self.func_name}({args})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FuncCall)
            and self.func_name == other.func_name
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash(("func", self.func_name, self.args))


class IfNull(Expression):
    """``IFNULL(item, default)`` — the item when non-NULL, else the
    default. Unlike :class:`FuncCall` this is deliberately *not*
    NULL-propagating: it exists to stop a NULL (COUNT coalesced through
    SUM over zero partial rows, a carry-weighted count over an all-NULL
    group) where SQL semantics demand a 0."""

    __slots__ = ("item", "default")

    def __init__(self, item: Expression, default: Expression):
        self.item = item
        self.default = default

    def _compute_columns(self) -> FrozenSet[FieldKey]:
        return self.item.columns() | self.default.columns()

    def bind(self, schema: RowSchema) -> Callable[[Tuple[Any, ...]], Any]:
        item = self.item.bind(schema)
        default = self.default.bind(schema)

        def evaluate(row: Tuple[Any, ...]) -> Any:
            value = item(row)
            return default(row) if value is None else value

        return evaluate

    def dtype(self, schema: RowSchema) -> DataType:
        return self.item.dtype(schema)

    def substitute(self, mapping: Dict[FieldKey, Expression]) -> Expression:
        return IfNull(
            self.item.substitute(mapping), self.default.substitute(mapping)
        )

    def display(self) -> str:
        return f"ifnull({self.item.display()}, {self.default.display()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IfNull)
            and self.item == other.item
            and self.default == other.default
        )

    def __hash__(self) -> int:
        return hash(("ifnull", self.item, self.default))


# ----------------------------------------------------------------------
# Convenience constructors and predicate utilities
# ----------------------------------------------------------------------


def col(reference: str) -> ColumnRef:
    """Build a :class:`ColumnRef` from ``"alias.name"`` or ``"name"``."""
    if "." in reference:
        alias, _, name = reference.partition(".")
        return ColumnRef(alias, name)
    return ColumnRef(None, reference)


def lit(value: Any) -> Literal:
    """Build a :class:`Literal` from a Python value."""
    return Literal(value)


def conjuncts(expression: Optional[Expression]) -> Tuple[Expression, ...]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expression is None:
        return ()
    if isinstance(expression, And):
        result: Tuple[Expression, ...] = ()
        for item in expression.items:
            result += conjuncts(item)
        return result
    return (expression,)


def and_all(items: Sequence[Expression]) -> Optional[Expression]:
    """Combine conjuncts into one expression (None when empty)."""
    flattened: Tuple[Expression, ...] = ()
    for item in items:
        flattened += conjuncts(item)
    if not flattened:
        return None
    if len(flattened) == 1:
        return flattened[0]
    return And(flattened)


def equijoin_sides(
    predicate: Expression,
) -> Optional[Tuple[FieldKey, FieldKey]]:
    """If *predicate* is ``col1 = col2``, return the two field keys."""
    if (
        isinstance(predicate, Comparison)
        and predicate.op == "="
        and isinstance(predicate.left, ColumnRef)
        and isinstance(predicate.right, ColumnRef)
    ):
        return (predicate.left.key, predicate.right.key)
    return None


def expression_children(expression: Expression) -> Tuple[Expression, ...]:
    """The immediate sub-expressions of any composite expression type.

    Leaves (column refs, literals, parameters, and any type this module
    does not know) have no children. Shared by the parameter walkers
    below and by the serving layer's plan rewriter.
    """
    if isinstance(expression, (Comparison, Arith)):
        return (expression.left, expression.right)
    if isinstance(expression, (And, Or)):
        return expression.items
    if isinstance(expression, Not):
        return (expression.item,)
    if isinstance(expression, IsNull):
        return (expression.item,)
    if isinstance(expression, IfNull):
        return (expression.item, expression.default)
    if isinstance(expression, FuncCall):
        return expression.args
    return ()


def collect_parameters(expression: Expression) -> FrozenSet[int]:
    """Indexes of every :class:`Parameter` inside *expression*."""
    if isinstance(expression, Parameter):
        return frozenset({expression.index})
    result: FrozenSet[int] = frozenset()
    for child in expression_children(expression):
        result |= collect_parameters(child)
    return result


def replace_parameters(
    expression: Expression, values: Dict[int, "Expression"]
) -> Expression:
    """Copy of *expression* with each ``$n`` replaced by ``values[n]``.

    Subtrees without parameters are returned as-is (expressions are
    immutable, so sharing is safe). Raises :class:`PlanError` on a
    parameter index missing from *values*.
    """
    if isinstance(expression, Parameter):
        replacement = values.get(expression.index)
        if replacement is None:
            raise PlanError(
                f"no value bound for parameter ${expression.index}"
            )
        return replacement
    if not collect_parameters(expression):
        return expression
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            replace_parameters(expression.left, values),
            replace_parameters(expression.right, values),
        )
    if isinstance(expression, Arith):
        return Arith(
            expression.op,
            replace_parameters(expression.left, values),
            replace_parameters(expression.right, values),
        )
    if isinstance(expression, And):
        return And(
            [replace_parameters(item, values) for item in expression.items]
        )
    if isinstance(expression, Or):
        return Or(
            [replace_parameters(item, values) for item in expression.items]
        )
    if isinstance(expression, Not):
        return Not(replace_parameters(expression.item, values))
    if isinstance(expression, IsNull):
        return IsNull(
            replace_parameters(expression.item, values), expression.negate
        )
    if isinstance(expression, IfNull):
        return IfNull(
            replace_parameters(expression.item, values),
            replace_parameters(expression.default, values),
        )
    if isinstance(expression, FuncCall):
        return FuncCall(
            expression.func_name,
            expression.func,
            [replace_parameters(arg, values) for arg in expression.args],
        )
    raise PlanError(
        f"cannot bind parameters inside {type(expression).__name__}"
    )


def comparison_with_literal(
    predicate: Expression,
) -> Optional[Tuple[FieldKey, str, Any]]:
    """If *predicate* is ``col op literal`` (either side), normalize to
    ``(column, op, value)`` with the column on the left."""
    if not isinstance(predicate, Comparison):
        return None
    if isinstance(predicate.left, ColumnRef) and isinstance(
        predicate.right, Literal
    ):
        return (predicate.left.key, predicate.op, predicate.right.value)
    if isinstance(predicate.left, Literal) and isinstance(
        predicate.right, ColumnRef
    ):
        flipped = COMPARISON_FLIP[predicate.op]
        return (predicate.right.key, flipped, predicate.left.value)
    return None
