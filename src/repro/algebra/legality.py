"""Legality checks for operator trees.

The paper relies on the notion of a *legal operator tree* — one that
"corresponds to a syntactically correct algebraic expression" (Section
2). The pull-up definition is stated between legal trees, and its output
must again be legal. This module is the executable version of that
notion: :func:`check_plan` walks a plan and verifies every column
reference resolves where it is used.
"""

from __future__ import annotations

from typing import Optional

from ..catalog.catalog import Catalog
from ..catalog.schema import RID_COLUMN
from ..errors import PlanError
from .expressions import Expression
from .plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
)


def check_plan(plan: PlanNode, catalog: Optional[Catalog] = None) -> None:
    """Raise :class:`PlanError` if *plan* is not a legal operator tree.

    With a catalog, scans are also checked against stored tables
    (existence, column membership, index validity).
    """
    if isinstance(plan, ScanNode):
        _check_scan(plan, catalog)
    elif isinstance(plan, JoinNode):
        _check_join(plan)
    elif isinstance(plan, GroupByNode):
        _check_group_by(plan)
    elif isinstance(plan, (SortNode, RenameNode, LimitNode)):
        pass  # fully validated at construction
    elif isinstance(plan, ProjectNode):
        for _, _, expression in plan.outputs:
            _check_expression_against(
                expression, plan.child.schema, "projection output"
            )
    elif isinstance(plan, FilterNode):
        for predicate in plan.predicates:
            _check_expression_against(
                predicate, plan.child.schema, "filter predicate"
            )
    else:
        raise PlanError(f"unknown plan node type {type(plan).__name__}")
    for child in plan.children:
        check_plan(child, catalog)


def _check_expression_against(
    expression: Expression, schema, context: str
) -> None:
    for alias, name in expression.columns():
        if not schema.has(alias, name):
            raise PlanError(
                f"{context}: column {alias}.{name} is not available "
                f"(schema: {schema})"
            )


def _check_scan(plan: ScanNode, catalog: Optional[Catalog]) -> None:
    for field in plan.schema:
        if field.alias != plan.alias:
            raise PlanError(
                f"scan of alias {plan.alias!r} outputs foreign field "
                f"{field.display()}"
            )
    if catalog is None:
        return
    table = catalog.table(plan.table_name)
    column_names = {column.name for column in table.columns}
    for field in plan.schema:
        if field.name != RID_COLUMN and field.name not in column_names:
            raise PlanError(
                f"scan projects unknown column {field.name!r} of table "
                f"{plan.table_name!r}"
            )
    for predicate in plan.filters:
        for alias, name in predicate.columns():
            if alias not in (None, plan.alias) or (
                name != RID_COLUMN and name not in column_names
            ):
                raise PlanError(
                    f"scan filter {predicate.display()} references a column "
                    f"outside table {plan.table_name!r}"
                )
    if plan.index_name is not None:
        info = catalog.info(plan.table_name)
        if plan.index_name not in info.indexes:
            raise PlanError(
                f"scan uses unknown index {plan.index_name!r} on "
                f"{plan.table_name!r}"
            )


def _check_join(plan: JoinNode) -> None:
    left_schema = plan.left.schema
    right_schema = plan.right.schema
    for left_key, right_key in plan.equi_keys:
        if not left_schema.has(*left_key):
            raise PlanError(
                f"join key {left_key} not produced by the left input"
            )
        if not right_schema.has(*right_key):
            raise PlanError(
                f"join key {right_key} not produced by the right input"
            )
    combined = left_schema.concat(right_schema)
    for predicate in plan.residuals:
        _check_expression_against(predicate, combined, "join residual")


def _check_group_by(plan: GroupByNode) -> None:
    child_schema = plan.child.schema
    for key in plan.group_keys:
        if not child_schema.has(*key):
            raise PlanError(f"grouping column {key} not in the input")
    for name, call in plan.aggregates:
        if call.arg is not None:
            _check_expression_against(
                call.arg, child_schema, f"aggregate {name}"
            )
    for predicate in plan.having:
        _check_expression_against(
            predicate, plan.internal_schema, "HAVING predicate"
        )
