"""Logical algebra: expressions, aggregates, query blocks, and plan trees.

This package defines the vocabulary of the paper:

- scalar :mod:`expressions <repro.algebra.expressions>` over aliased
  columns (join predicates, selections, HAVING conditions);
- :mod:`aggregate functions <repro.algebra.aggregates>` with the
  decomposability protocol required by simple coalescing grouping
  (Section 4.2);
- the :mod:`query model <repro.algebra.query>`: SPJ blocks, aggregate
  views, and the canonical multi-block form of Figure 3;
- :mod:`operator trees <repro.algebra.plan>` (the paper's "execution
  plans"), with joins and group-by operators carrying projection lists
  (Section 2);
- :mod:`legality checks <repro.algebra.legality>` corresponding to the
  paper's "legal operator tree" notion.
"""

from .expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
    and_all,
    col,
    conjuncts,
    equijoin_sides,
    lit,
)
from .aggregates import (
    AggregateCall,
    AggregateFunction,
    aggregate_function,
    register_aggregate,
)
from .query import AggregateView, CanonicalQuery, QueryBlock, TableRef
from .plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
    explain,
    plan_nodes,
)

__all__ = [
    "And",
    "Arith",
    "ColumnRef",
    "Comparison",
    "Expression",
    "Literal",
    "Not",
    "Or",
    "and_all",
    "col",
    "conjuncts",
    "equijoin_sides",
    "lit",
    "AggregateCall",
    "AggregateFunction",
    "aggregate_function",
    "register_aggregate",
    "AggregateView",
    "CanonicalQuery",
    "QueryBlock",
    "TableRef",
    "FilterNode",
    "GroupByNode",
    "JoinNode",
    "PlanNode",
    "ProjectNode",
    "RenameNode",
    "ScanNode",
    "SortNode",
    "explain",
    "plan_nodes",
]
