"""Delta-debugging minimizer for diverging fuzz scripts.

Given a script and a *check* (any callable returning the divergence
signature to preserve, or ``None`` when the script no longer fails),
the shrinker greedily reduces the script while keeping the failure:

1. **Explode inserts** — multi-row INSERTs become single-row ones, so
   statement-level deletion can bisect the data.
2. **ddmin over statements** — classic delta debugging on the
   statement list (chunks of halving size). Removing a statement the
   failure depends on (e.g. the CREATE TABLE a later query scans)
   makes the replay error with a *different* signature, so the
   candidate is simply rejected — no dependency tracking needed.
3. **Structured query reduction** — for statements that kept their
   :class:`QuerySpec`, drop WHERE/HAVING conjuncts, select items,
   grouping keys, WITH views, and joined relations one at a time.

The result is re-checked after every accepted step, so the returned
script is guaranteed to still fail with the original signature. A
``max_checks`` budget bounds the work (each check replays the script
across the whole config matrix); hitting the budget returns the best
reduction so far — shrinking is best-effort, never required for
soundness.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..sql.ddl import InsertStmt, maybe_parse_ddl
from .sqlgen import QuerySpec, Stmt

Signature = object
CheckFn = Callable[[List[Stmt]], Optional[Signature]]


class ShrinkBudgetExceeded(Exception):
    """Internal: the check budget ran out mid-pass."""


class Shrinker:
    """One shrink session: a script, a check, and a budget."""

    def __init__(
        self,
        script: Sequence[Stmt],
        check: CheckFn,
        max_checks: int = 400,
    ):
        self.check = check
        self.max_checks = max_checks
        self.checks_used = 0
        self.budget_exhausted = False
        self.script: List[Stmt] = list(script)
        self.signature = self._run_check(self.script)
        if self.signature is None:
            raise ValueError(
                "the input script does not fail the given check"
            )

    # -- plumbing ------------------------------------------------------

    def _run_check(self, candidate: List[Stmt]) -> Optional[Signature]:
        if self.checks_used >= self.max_checks:
            raise ShrinkBudgetExceeded()
        self.checks_used += 1
        return self.check(candidate)

    def _try(self, candidate: List[Stmt]) -> bool:
        """Adopt *candidate* if it still fails with the signature."""
        if self._run_check(candidate) == self.signature:
            self.script = candidate
            return True
        return False

    # -- passes --------------------------------------------------------

    def explode_inserts(self) -> None:
        """Split multi-row INSERTs into single-row statements."""
        exploded: List[Stmt] = []
        changed = False
        for stmt in self.script:
            if stmt.kind != "insert":
                exploded.append(stmt)
                continue
            parsed = maybe_parse_ddl(stmt.sql)
            if not isinstance(parsed, InsertStmt) or len(parsed.rows) <= 1:
                exploded.append(stmt)
                continue
            changed = True
            for row in parsed.rows:
                values = ", ".join(_render_literal(v) for v in row)
                exploded.append(
                    Stmt(
                        "insert",
                        f"insert into {parsed.table} values ({values})",
                    )
                )
        if changed:
            self._try(exploded)

    def ddmin_statements(self) -> None:
        """Classic ddmin over the statement list."""
        chunk = max(1, len(self.script) // 2)
        while chunk >= 1:
            position = 0
            removed_any = False
            while position < len(self.script):
                candidate = (
                    self.script[:position]
                    + self.script[position + chunk :]
                )
                if candidate and self._try(candidate):
                    removed_any = True
                    # stay at the same position: the next chunk slid in
                else:
                    position += chunk
            if chunk == 1 and not removed_any:
                break
            chunk = chunk // 2 if chunk > 1 else (1 if removed_any else 0)

    def reduce_queries(self) -> None:
        """Structured reductions on every remaining QuerySpec."""
        progress = True
        while progress:
            progress = False
            for position, stmt in enumerate(self.script):
                if stmt.query is None:
                    continue
                for reduced in _query_reductions(stmt.query):
                    candidate = list(self.script)
                    candidate[position] = Stmt(
                        "query", reduced.to_sql(), query=reduced
                    )
                    if self._try(candidate):
                        progress = True
                        break

    # -- entry ---------------------------------------------------------

    def run(self) -> List[Stmt]:
        try:
            self.explode_inserts()
            self.ddmin_statements()
            self.reduce_queries()
            self.ddmin_statements()
        except ShrinkBudgetExceeded:
            self.budget_exhausted = True
        return self.script


def _render_literal(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)


def _query_reductions(query: QuerySpec):
    """Yield one-step-smaller variants of a query, most aggressive
    first. Variants may be invalid (e.g. empty select) — the checker
    rejects those via signature mismatch."""
    # drop a joined relation and every piece that mentions it (LEFT
    # JOIN clauses whose ON touches the relation go too, taking their
    # own dependents along)
    if len(query.relations) > 1:
        for rel in query.relations:
            removed = {rel.alias}
            removed.update(
                clause.rel.alias
                for clause in query.left_joins
                if rel.alias in clause.aliases
            )
            keep_select = [
                item
                for item in query.select
                if not (item.aliases & removed)
            ]
            if not keep_select:
                continue
            yield QuerySpec(
                relations=[
                    r for r in query.relations if r.alias != rel.alias
                ],
                select=keep_select,
                where=[
                    p for p in query.where if not (p.aliases & removed)
                ],
                group_by=[
                    key
                    for key in query.group_by
                    if key.split(".", 1)[0] not in removed
                ],
                having=[
                    p
                    for p in query.having
                    if not (p.aliases & removed)
                ],
                views=[
                    v for v in query.views if v.name != rel.table
                ],
                left_joins=[
                    clause
                    for clause in query.left_joins
                    if not (clause.aliases & removed)
                ],
            )
    # drop one LEFT JOIN clause and every piece that mentions it
    for clause in query.left_joins:
        removed = {clause.rel.alias}
        keep_select = [
            item for item in query.select if not (item.aliases & removed)
        ]
        if not keep_select:
            continue
        yield _with(
            query,
            select=keep_select,
            where=[p for p in query.where if not (p.aliases & removed)],
            group_by=[
                key
                for key in query.group_by
                if key.split(".", 1)[0] not in removed
            ],
            having=[
                p for p in query.having if not (p.aliases & removed)
            ],
            left_joins=[
                c for c in query.left_joins if c is not clause
            ],
        )
    # drop one WHERE conjunct
    for index in range(len(query.where)):
        yield _with(query, where=_without(query.where, index))
    # drop HAVING entirely, then one conjunct at a time
    if query.having:
        yield _with(query, having=[])
        for index in range(len(query.having)):
            yield _with(query, having=_without(query.having, index))
    # drop one select item (keep at least one)
    if len(query.select) > 1:
        for index in range(len(query.select)):
            yield _with(query, select=_without(query.select, index))
    # drop one grouping key (legal only when its select item is gone
    # or also dropped — the checker sorts that out)
    if len(query.group_by) > 1:
        for index in range(len(query.group_by)):
            yield _with(query, group_by=_without(query.group_by, index))
    # ungroup entirely: drop group_by + aggregates + having
    if query.group_by:
        plain = [item for item in query.select if not item.is_aggregate]
        if plain:
            yield _with(
                query, select=plain, group_by=[], having=[]
            )


def _without(items, index):
    return list(items[:index]) + list(items[index + 1 :])


def _with(query: QuerySpec, **changes) -> QuerySpec:
    merged = dict(
        relations=list(query.relations),
        select=list(query.select),
        where=list(query.where),
        group_by=list(query.group_by),
        having=list(query.having),
        views=list(query.views),
        left_joins=list(query.left_joins),
    )
    merged.update(changes)
    return QuerySpec(**merged)


def shrink_script(
    script: Sequence[Stmt],
    check: CheckFn,
    max_checks: int = 400,
) -> List[Stmt]:
    """Minimize *script* while ``check`` keeps returning the same
    signature it returns for the full script."""
    return Shrinker(script, check, max_checks=max_checks).run()


__all__ = ["Shrinker", "ShrinkBudgetExceeded", "shrink_script"]
