"""Seeded grammar-driven SQL script generator for differential fuzzing.

A *script* is a list of :class:`Stmt` — DDL, INSERTs, materialized-view
statements, and canonical queries — that exercises the whole stack
through the SQL front door. Generation is deterministic per seed.

Queries keep their grammar-level structure (:class:`QuerySpec`) so the
shrinker can apply semantic reductions (drop a predicate, drop an
aggregate, drop a joined relation) instead of fumbling with text.

The generator stays inside the intersection of this engine's dialect
and SQLite's so results are directly comparable:

- every query is a bag (no ORDER BY/LIMIT) — comparison sorts rows;
- no scalar aggregation without GROUP BY (rejected at bind time here,
  and SQLite's one-NULL-row answer would diverge anyway);
- no ``/`` on integer columns (SQLite division truncates, ours does
  not);
- float data is restricted to multiples of 0.25 (dyadic rationals), so
  sums are exact in binary and immune to association order — plan
  changes and partial-aggregate merges cannot introduce float noise;
- no bool/date columns (SQLite has neither type).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

# ----------------------------------------------------------------------
# Script model
# ----------------------------------------------------------------------

HOLISTIC_AGGREGATES = ("stddev", "median")


@dataclass(frozen=True)
class PredSpec:
    """One WHERE/HAVING conjunct with the relation aliases it touches."""

    sql: str
    aliases: frozenset


@dataclass(frozen=True)
class SelectItem:
    """One output column: ``sql AS name``."""

    name: str
    sql: str
    aliases: frozenset
    is_aggregate: bool = False


@dataclass(frozen=True)
class RelRef:
    """One FROM-list entry: a base table, matview, or WITH view."""

    table: str
    alias: str


@dataclass(frozen=True)
class LeftJoinSpec:
    """One ``LEFT JOIN table alias ON on_sql`` clause.

    ``aliases`` lists every alias the ON condition touches (the joined
    alias plus the prior relations it references), so the shrinker can
    drop the clause together with everything that mentions it."""

    rel: RelRef
    on_sql: str
    aliases: frozenset

    def to_sql(self) -> str:
        return (
            f"left join {self.rel.table} {self.rel.alias} "
            f"on {self.on_sql}"
        )


@dataclass
class QuerySpec:
    """Structured form of one generated query."""

    relations: List[RelRef]
    select: List[SelectItem]
    where: List[PredSpec] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    having: List[PredSpec] = field(default_factory=list)
    views: List["ViewSpec"] = field(default_factory=list)
    left_joins: List[LeftJoinSpec] = field(default_factory=list)

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by)

    def uses_holistic(self) -> bool:
        text = self.to_sql().lower()
        return any(f"{name}(" in text for name in HOLISTIC_AGGREGATES)

    def to_sql(self) -> str:
        parts: List[str] = []
        if self.views:
            defs = ", ".join(view.to_sql() for view in self.views)
            parts.append(f"with {defs}")
        select = ", ".join(
            f"{item.sql} as {item.name}" for item in self.select
        )
        parts.append(f"select {select}")
        from_list = ", ".join(
            f"{rel.table} {rel.alias}" for rel in self.relations
        )
        parts.append(f"from {from_list}")
        for clause in self.left_joins:
            parts.append(clause.to_sql())
        if self.where:
            parts.append(
                "where " + " and ".join(pred.sql for pred in self.where)
            )
        if self.group_by:
            parts.append("group by " + ", ".join(self.group_by))
        if self.having:
            parts.append(
                "having " + " and ".join(pred.sql for pred in self.having)
            )
        return " ".join(parts)


@dataclass
class ViewSpec:
    """One WITH-clause view: ``name(columns) as (body)``."""

    name: str
    columns: List[str]
    body: QuerySpec

    def to_sql(self) -> str:
        names = ", ".join(self.columns)
        return f"{self.name}({names}) as ({self.body.to_sql()})"


@dataclass
class Stmt:
    """One statement of a fuzz script."""

    kind: str
    """``create`` | ``insert`` | ``index`` | ``matview`` | ``refresh``
    | ``analyze`` | ``query``."""
    sql: str
    query: Optional[QuerySpec] = None

    def render(self) -> str:
        if self.query is not None:
            return self.query.to_sql()
        return self.sql


@dataclass(frozen=True)
class GenColumn:
    name: str
    dtype: str  # "int" | "float" | "str"
    nullable: bool


@dataclass(frozen=True)
class GenTable:
    name: str
    columns: Tuple[GenColumn, ...]

    def columns_of_type(self, dtype: str) -> List[GenColumn]:
        return [c for c in self.columns if c.dtype == dtype]


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GenProfile:
    """Size/shape knobs for one generation run."""

    name: str = "default"
    max_tables: int = 3
    min_rows: int = 10
    max_rows: int = 60
    queries: int = 6
    matview_prob: float = 0.6
    index_prob: float = 0.5
    with_view_prob: float = 0.25
    holistic_prob: float = 0.08
    null_prob: float = 0.25
    refresh_prob: float = 0.5
    late_insert_prob: float = 0.8
    analyze_prob: float = 0.3
    """Chance that a late insert is followed by ``ANALYZE`` (sometimes
    table-targeted, sometimes whole-database) — statistics refresh must
    never change answers, only plans."""
    analyze_upfront_prob: float = 0.75
    """Chance that the initial load is followed by a whole-database
    ``ANALYZE``. NDV statistics arm the eager-aggregation prescreen
    (unanalyzed tables estimate no group collapse, so no eager
    alternatives are ever generated) — most scripts should run with
    statistics so the matrix actually exercises those plans."""
    grouped_join_prob: float = 0.35
    """Chance a query uses the dedicated grouped multi-join shape:
    aggregate arguments drawn from one relation, grouping keys from
    another — the shape where eager partial aggregation and COUNT-carry
    pre-collapse below the join apply."""
    subquery_prob: float = 0.35
    """Chance a query gains one WHERE-clause subquery conjunct (scalar
    aggregate / IN / NOT IN / EXISTS / NOT EXISTS, correlated or not).
    Inner select columns are biased toward nullable ones so NOT IN
    meets NULL-bearing inner sides — the three-valued-logic case the
    null-aware anti-join must get right."""
    left_join_prob: float = 0.3
    """Chance a query appends one ``LEFT JOIN ... ON`` clause; padded
    NULL rows then flow through filters, grouping, and aggregates."""


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------


class ScriptGenerator:
    """Deterministic script generator: same seed, same script."""

    STR_POOL = ("a", "b", "c", "d", "e")
    COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")

    def __init__(self, seed: int, profile: Optional[GenProfile] = None):
        self.rng = random.Random(seed)
        self.profile = profile or GenProfile()
        self.tables: List[GenTable] = []
        self.matviews: List[GenTable] = []
        self._names = 0

    # -- naming --------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}{self._names}"

    # -- values --------------------------------------------------------

    def _value(self, column: GenColumn, allow_null: bool = True):
        rng = self.rng
        if (
            column.nullable
            and allow_null
            and rng.random() < self.profile.null_prob
        ):
            return None
        if column.dtype == "int":
            return rng.randint(-4, 12)
        if column.dtype == "float":
            # dyadic rationals: exact in binary, sums re-associate freely
            return rng.randint(-8, 40) * 0.25
        return rng.choice(self.STR_POOL)

    def _literal(self, column: GenColumn) -> str:
        value = self._value(column, allow_null=False)
        if column.dtype == "str":
            return f"'{value}'"
        return repr(value)

    # -- schema --------------------------------------------------------

    def _gen_table(self) -> GenTable:
        rng = self.rng
        name = self._fresh("t")
        columns: List[GenColumn] = [GenColumn("c0", "int", False)]
        for position in range(1, rng.randint(2, 5)):
            dtype = rng.choice(("int", "int", "float", "str"))
            nullable = rng.random() < 0.5
            columns.append(GenColumn(f"c{position}", dtype, nullable))
        return GenTable(name, tuple(columns))

    def _create_sql(self, table: GenTable) -> str:
        parts = []
        for column in table.columns:
            suffix = " null" if column.nullable else ""
            parts.append(f"{column.name} {column.dtype}{suffix}")
        return f"create table {table.name} ({', '.join(parts)})"

    def _insert_sql(self, table: GenTable, count: int) -> str:
        rows = []
        for _ in range(count):
            values = []
            for column in table.columns:
                value = self._value(column)
                if value is None:
                    values.append("null")
                elif column.dtype == "str":
                    values.append(f"'{value}'")
                else:
                    values.append(repr(value))
            rows.append("(" + ", ".join(values) + ")")
        return f"insert into {table.name} values {', '.join(rows)}"

    # -- expressions ---------------------------------------------------

    def _column_ref(self, rel: RelRef, column: GenColumn) -> str:
        return f"{rel.alias}.{column.name}"

    def _numeric_expr(
        self, rels: Sequence[Tuple[RelRef, GenTable]]
    ) -> Optional[Tuple[str, frozenset]]:
        """A small arithmetic expression over numeric columns, or None
        when no numeric column exists. Division is never emitted: SQLite
        truncates integer division, this engine does not."""
        rng = self.rng
        numeric: List[Tuple[RelRef, GenColumn]] = [
            (rel, column)
            for rel, table in rels
            for column in table.columns
            if column.dtype in ("int", "float")
        ]
        if not numeric:
            return None
        rel, column = rng.choice(numeric)
        ref = self._column_ref(rel, column)
        op = rng.choice(("+", "-", "*"))
        if rng.random() < 0.5 or len(numeric) == 1:
            operand = str(rng.randint(-3, 6))
            return f"{ref} {op} {operand}", frozenset([rel.alias])
        other_rel, other_column = rng.choice(numeric)
        other_ref = self._column_ref(other_rel, other_column)
        return (
            f"{ref} {op} {other_ref}",
            frozenset([rel.alias, other_rel.alias]),
        )

    def _predicate(
        self, rels: Sequence[Tuple[RelRef, GenTable]]
    ) -> PredSpec:
        """One filter conjunct over the available relations."""
        rng = self.rng
        if rng.random() < 0.15:
            expr = self._numeric_expr(rels)
            if expr is not None:
                sql, aliases = expr
                op = rng.choice(self.COMPARISONS)
                return PredSpec(
                    f"{sql} {op} {rng.randint(-6, 18)}", aliases
                )
        rel, table = rng.choice(list(rels))
        column = rng.choice(table.columns)
        ref = self._column_ref(rel, column)
        roll = rng.random()
        if column.nullable and roll < 0.25:
            negate = " not" if rng.random() < 0.5 else ""
            return PredSpec(
                f"{ref} is{negate} null", frozenset([rel.alias])
            )
        if roll < 0.45 and column.dtype != "str":
            low = self._literal(column)
            high = self._literal(column)
            return PredSpec(
                f"{ref} between {low} and {high}", frozenset([rel.alias])
            )
        if roll < 0.6:
            values = ", ".join(
                self._literal(column) for _ in range(rng.randint(1, 3))
            )
            negate = "not " if rng.random() < 0.3 else ""
            return PredSpec(
                f"{ref} {negate}in ({values})", frozenset([rel.alias])
            )
        op = (
            rng.choice(("=", "!="))
            if column.dtype == "str"
            else rng.choice(self.COMPARISONS)
        )
        if rng.random() < 0.7:
            return PredSpec(
                f"{ref} {op} {self._literal(column)}",
                frozenset([rel.alias]),
            )
        # column-vs-column, same type, possibly cross-relation
        other_rel, other_table = rng.choice(list(rels))
        candidates = other_table.columns_of_type(column.dtype)
        if not candidates:
            return PredSpec(
                f"{ref} {op} {self._literal(column)}",
                frozenset([rel.alias]),
            )
        other = rng.choice(candidates)
        return PredSpec(
            f"{ref} {op} {self._column_ref(other_rel, other)}",
            frozenset([rel.alias, other_rel.alias]),
        )

    def _join_chain(
        self, rels: Sequence[Tuple[RelRef, GenTable]]
    ) -> List[PredSpec]:
        """Equality predicates connecting consecutive relations."""
        rng = self.rng
        preds: List[PredSpec] = []
        for (rel_a, table_a), (rel_b, table_b) in zip(rels, rels[1:]):
            for dtype in ("int", "float", "str"):
                left = table_a.columns_of_type(dtype)
                right = table_b.columns_of_type(dtype)
                if left and right:
                    col_a = rng.choice(left)
                    col_b = rng.choice(right)
                    preds.append(
                        PredSpec(
                            f"{self._column_ref(rel_a, col_a)} = "
                            f"{self._column_ref(rel_b, col_b)}",
                            frozenset([rel_a.alias, rel_b.alias]),
                        )
                    )
                    break
            # no shared column type: leave the pair cross-joined (rare;
            # tables are small, and both systems agree on cross joins)
        return preds

    # -- subqueries and LEFT JOIN --------------------------------------

    @staticmethod
    def _types_comparable(a: str, b: str) -> bool:
        """int/float compare numerically in both systems; strings only
        against strings (and only with =/!=, per the dialect rules)."""
        if a == "str" or b == "str":
            return a == b
        return True

    def _correlation_sql(
        self,
        inner_alias: str,
        inner_table: GenTable,
        rels: Sequence[Tuple[RelRef, GenTable]],
    ) -> Optional[Tuple[str, str]]:
        """One ``inner.col = outer.col`` equality (the only correlated
        predicate shape the binder splits), or None when no type-
        compatible pair exists. Returns (sql, outer alias)."""
        rng = self.rng
        options = [
            (inner_column, rel, outer_column)
            for inner_column in inner_table.columns
            for rel, table in rels
            for outer_column in table.columns
            if self._types_comparable(
                inner_column.dtype, outer_column.dtype
            )
        ]
        if not options:
            return None
        inner_column, rel, outer_column = rng.choice(options)
        sql = (
            f"{inner_alias}.{inner_column.name} = "
            f"{rel.alias}.{outer_column.name}"
        )
        return sql, rel.alias

    def _inner_column(self, table: GenTable) -> GenColumn:
        """A subquery's selected column, biased toward nullable ones so
        IN / NOT IN regularly meet NULL-bearing inner sides."""
        rng = self.rng
        nullable = [c for c in table.columns if c.nullable]
        if nullable and rng.random() < 0.6:
            return rng.choice(nullable)
        return rng.choice(list(table.columns))

    def _subquery_predicate(
        self, rels: Sequence[Tuple[RelRef, GenTable]]
    ) -> Optional[PredSpec]:
        """One WHERE conjunct with a subquery: scalar aggregate
        comparison, [NOT] IN membership, or [NOT] EXISTS — correlated
        or not. Subquery bodies stay inside the binder's surface: one
        base table, simple conjuncts, correlation only as
        ``inner.col = outer.col``."""
        rng = self.rng
        if not self.tables:
            return None
        inner_table = rng.choice(self.tables)
        inner_alias = self._fresh("s")
        inner_rel = RelRef(inner_table.name, inner_alias)

        inner_where: List[str] = []
        outer_aliases: set = set()
        if rng.random() < 0.45:
            local = self._predicate([(inner_rel, inner_table)])
            inner_where.append(local.sql)
        correlated = rng.random() < 0.55
        if correlated:
            pair = self._correlation_sql(inner_alias, inner_table, rels)
            if pair is None:
                correlated = False
            else:
                sql, outer_alias = pair
                inner_where.append(sql)
                outer_aliases.add(outer_alias)
        where_sql = (
            " where " + " and ".join(inner_where) if inner_where else ""
        )

        kind = rng.choice(
            ("scalar", "scalar", "in", "in", "in", "exists", "exists")
        )
        if kind == "scalar":
            numeric = [
                c
                for c in inner_table.columns
                if c.dtype in ("int", "float")
            ]
            if numeric and rng.random() < 0.8:
                column = rng.choice(numeric)
                func = rng.choice(("count", "sum", "avg", "min", "max"))
                agg = f"{func}({inner_alias}.{column.name})"
            else:
                agg = "count(*)"
            body = (
                f"(select {agg} from {inner_table.name} "
                f"{inner_alias}{where_sql})"
            )
            outer_numeric = [
                (rel, column)
                for rel, table in rels
                for column in table.columns
                if column.dtype in ("int", "float")
            ]
            op = rng.choice(self.COMPARISONS)
            if outer_numeric and rng.random() < 0.7:
                rel, column = rng.choice(outer_numeric)
                left = self._column_ref(rel, column)
                outer_aliases.add(rel.alias)
            else:
                left = str(rng.randint(-4, 12))
            if not outer_aliases:
                # anchor constant-only tests to some relation so the
                # shrinker's drop-relation pass treats them as global
                outer_aliases.add(rels[0][0].alias)
            return PredSpec(
                f"{left} {op} {body}", frozenset(outer_aliases)
            )
        if kind == "in":
            column = self._inner_column(inner_table)
            body = (
                f"(select {inner_alias}.{column.name} from "
                f"{inner_table.name} {inner_alias}{where_sql})"
            )
            options = [
                (rel, outer_column)
                for rel, table in rels
                for outer_column in table.columns
                if self._types_comparable(
                    column.dtype, outer_column.dtype
                )
            ]
            if not options:
                return None
            rel, outer_column = rng.choice(options)
            outer_aliases.add(rel.alias)
            negate = "not " if rng.random() < 0.4 else ""
            return PredSpec(
                f"{self._column_ref(rel, outer_column)} {negate}in {body}",
                frozenset(outer_aliases),
            )
        # exists / not exists
        column = rng.choice(list(inner_table.columns))
        body = (
            f"(select {inner_alias}.{column.name} from "
            f"{inner_table.name} {inner_alias}{where_sql})"
        )
        if not outer_aliases:
            outer_aliases.add(rels[0][0].alias)
        negate = "not " if rng.random() < 0.4 else ""
        return PredSpec(f"{negate}exists {body}", frozenset(outer_aliases))

    def _left_join(
        self, rels: Sequence[Tuple[RelRef, GenTable]]
    ) -> Optional[Tuple[LeftJoinSpec, RelRef, GenTable]]:
        """One ``LEFT JOIN table alias ON prior.col = alias.col`` clause
        (sometimes with an extra ANDed filter on the joined side)."""
        rng = self.rng
        if not self.tables:
            return None
        table = rng.choice(self.tables)
        alias = self._fresh("r")
        options = [
            (rel, outer_column, join_column)
            for rel, outer_table in rels
            for outer_column in outer_table.columns
            for join_column in table.columns
            if self._types_comparable(
                outer_column.dtype, join_column.dtype
            )
        ]
        if not options:
            return None
        rel, outer_column, join_column = rng.choice(options)
        on = (
            f"{rel.alias}.{outer_column.name} = "
            f"{alias}.{join_column.name}"
        )
        if rng.random() < 0.3:
            extra = rng.choice(table.columns)
            if extra.dtype == "str":
                op = rng.choice(("=", "!="))
            else:
                op = rng.choice(self.COMPARISONS)
            literal = self._literal(extra)
            on += f" and {alias}.{extra.name} {op} {literal}"
        spec = LeftJoinSpec(
            RelRef(table.name, alias), on, frozenset([alias, rel.alias])
        )
        return spec, spec.rel, table

    def _aggregate(
        self, rels: Sequence[Tuple[RelRef, GenTable]], allow_holistic: bool
    ) -> Tuple[str, str, frozenset]:
        """(sql, result type, aliases) of one aggregate call."""
        rng = self.rng
        if rng.random() < 0.15:
            return "count(*)", "int", frozenset()
        rel, table = rng.choice(list(rels))
        numeric = [
            c for c in table.columns if c.dtype in ("int", "float")
        ]
        column = rng.choice(numeric) if numeric else table.columns[0]
        ref = self._column_ref(rel, column)
        aliases = frozenset([rel.alias])
        if column.dtype == "str":
            func = rng.choice(("count", "min", "max"))
            result = "int" if func == "count" else "str"
            return f"{func}({ref})", result, aliases
        if allow_holistic and rng.random() < self.profile.holistic_prob:
            func = rng.choice(HOLISTIC_AGGREGATES)
            return f"{func}({ref})", "float", aliases
        if rng.random() < 0.25:
            expr = self._numeric_expr(rels)
            if expr is not None:
                arg, arg_aliases = expr
                func = rng.choice(("sum", "avg", "min", "max"))
                result = "float" if func == "avg" else "int"
                return f"{func}({arg})", result, arg_aliases
        func = rng.choice(("count", "sum", "avg", "min", "max"))
        if func == "count":
            result = "int"
        elif func == "avg":
            result = "float"
        else:
            result = column.dtype
        return f"{func}({ref})", result, aliases

    # -- queries -------------------------------------------------------

    def _relation_pool(self) -> List[GenTable]:
        return self.tables + self.matviews

    def _gen_query(
        self,
        allow_views: bool = True,
        allow_holistic: bool = True,
        source_tables: Optional[Sequence[GenTable]] = None,
        max_relations: int = 3,
        allow_subqueries: bool = True,
        allow_left_joins: bool = True,
    ) -> QuerySpec:
        rng = self.rng
        pool = (
            list(source_tables)
            if source_tables is not None
            else self._relation_pool()
        )
        views: List[ViewSpec] = []
        rel_count = rng.randint(1, min(max_relations, max(1, len(pool))))
        chosen = [rng.choice(pool) for _ in range(rel_count)]
        rels: List[Tuple[RelRef, GenTable]] = []
        for table in chosen:
            alias = self._fresh("r")
            rels.append((RelRef(table.name, alias), table))

        # LEFT JOIN clauses and subquery correlations reference only the
        # plain FROM-list relations (base tables and matviews), never a
        # WITH-view alias — the binder resolves those, but keeping the
        # outer side concrete keeps generated scripts inside the
        # engine's supported surface.
        plain_rels = list(rels)
        left_joins: List[LeftJoinSpec] = []
        extended: List[Tuple[RelRef, GenTable]] = []
        if (
            allow_left_joins
            and rng.random() < self.profile.left_join_prob
        ):
            joined = self._left_join(plain_rels)
            if joined is not None:
                spec, joined_rel, joined_table = joined
                left_joins.append(spec)
                extended.append((joined_rel, joined_table))

        if (
            allow_views
            and self.tables
            and rng.random() < self.profile.with_view_prob
        ):
            view = self._gen_with_view()
            views.append(view)
            view_table = GenTable(
                view.name,
                tuple(
                    GenColumn(name, dtype, True)
                    for name, dtype in zip(
                        view.columns, view_column_types(view)
                    )
                ),
            )
            alias = self._fresh("r")
            rels.append((RelRef(view.name, alias), view_table))
        extended = list(rels) + extended

        where: List[PredSpec] = []
        if len(rels) > 1:
            where.extend(self._join_chain(rels))
        for _ in range(rng.randint(0, 2)):
            where.append(self._predicate(extended))
        if (
            allow_subqueries
            and rng.random() < self.profile.subquery_prob
        ):
            subquery_pred = self._subquery_predicate(plain_rels)
            if subquery_pred is not None:
                where.append(subquery_pred)

        grouped = rng.random() < 0.6
        select: List[SelectItem] = []
        group_by: List[str] = []
        having: List[PredSpec] = []
        if grouped:
            key_count = rng.randint(1, 2)
            for _ in range(key_count):
                rel, table = rng.choice(extended)
                column = rng.choice(table.columns)
                ref = self._column_ref(rel, column)
                if ref not in group_by:
                    group_by.append(ref)
                    select.append(
                        SelectItem(
                            self._fresh("x"),
                            ref,
                            frozenset([rel.alias]),
                        )
                    )
            seen_aggregates = set()
            for _ in range(rng.randint(1, 3)):
                sql, _, aliases = self._aggregate(
                    extended, allow_holistic
                )
                if sql in seen_aggregates:
                    continue  # the binder rejects duplicate aggregates
                seen_aggregates.add(sql)
                select.append(
                    SelectItem(
                        self._fresh("x"), sql, aliases, is_aggregate=True
                    )
                )
            if rng.random() < 0.35:
                aggregates = [
                    item for item in select if item.is_aggregate
                ]
                target = rng.choice(aggregates)
                op = rng.choice(self.COMPARISONS)
                bound = (
                    rng.randint(-2, 8)
                    if "count" in target.sql
                    else rng.randint(-10, 30)
                )
                having.append(
                    PredSpec(
                        f"{target.sql} {op} {bound}", target.aliases
                    )
                )
        else:
            for _ in range(rng.randint(1, 4)):
                if rng.random() < 0.2:
                    expr = self._numeric_expr(extended)
                    if expr is not None:
                        sql, aliases = expr
                        select.append(
                            SelectItem(self._fresh("x"), sql, aliases)
                        )
                        continue
                rel, table = rng.choice(extended)
                column = rng.choice(table.columns)
                select.append(
                    SelectItem(
                        self._fresh("x"),
                        self._column_ref(rel, column),
                        frozenset([rel.alias]),
                    )
                )

        return QuerySpec(
            relations=[rel for rel, _ in rels],
            select=select,
            where=where,
            group_by=group_by,
            having=having,
            views=views,
            left_joins=left_joins,
        )

    def _gen_grouped_join_query(self) -> QuerySpec:
        """A grouped multi-join query shaped for eager aggregation:
        every aggregate argument comes from one relation (the *fact*
        side) while the grouping keys come from the others, so the
        optimizer may legally collapse either side below the join — a
        partial group-by on the fact side, a COUNT-carry pre-collapse
        on a dimension side. Whether it does is a pure cost decision;
        the answers must not move either way."""
        rng = self.rng
        pool = self._relation_pool()
        rels: List[Tuple[RelRef, GenTable]] = []
        for _ in range(rng.randint(2, 3)):
            table = rng.choice(pool)
            alias = self._fresh("r")
            rels.append((RelRef(table.name, alias), table))

        where = self._join_chain(rels)
        for _ in range(rng.randint(0, 2)):
            where.append(self._predicate(rels))
        if rng.random() < self.profile.subquery_prob:
            # decorrelation interacting with eager aggregation: the
            # semi/anti/LEFT unit must not break the partial-agg DP
            subquery_pred = self._subquery_predicate(rels)
            if subquery_pred is not None:
                where.append(subquery_pred)

        fact = rng.choice(rels)
        dims = [pair for pair in rels if pair is not fact] or [fact]
        select: List[SelectItem] = []
        group_by: List[str] = []
        for _ in range(rng.randint(1, 2)):
            rel, table = rng.choice(dims)
            column = rng.choice(table.columns)
            ref = self._column_ref(rel, column)
            if ref not in group_by:
                group_by.append(ref)
                select.append(
                    SelectItem(
                        self._fresh("x"), ref, frozenset([rel.alias])
                    )
                )

        seen_aggregates = set()
        if rng.random() < 0.4:
            # duplicate-sensitive and argument-free: the COUNT-carry
            # weighting must reproduce join multiplicity exactly
            seen_aggregates.add("count(*)")
            select.append(
                SelectItem(
                    self._fresh("x"), "count(*)", frozenset(), True
                )
            )
        for _ in range(rng.randint(1, 3)):
            sql, _, aliases = self._aggregate([fact], False)
            if sql in seen_aggregates:
                continue  # the binder rejects duplicate aggregates
            seen_aggregates.add(sql)
            select.append(
                SelectItem(
                    self._fresh("x"), sql, aliases, is_aggregate=True
                )
            )

        having: List[PredSpec] = []
        if rng.random() < 0.3:
            aggregates = [item for item in select if item.is_aggregate]
            target = rng.choice(aggregates)
            op = rng.choice(self.COMPARISONS)
            bound = (
                rng.randint(-2, 8)
                if "count" in target.sql
                else rng.randint(-10, 30)
            )
            having.append(
                PredSpec(f"{target.sql} {op} {bound}", target.aliases)
            )

        return QuerySpec(
            relations=[rel for rel, _ in rels],
            select=select,
            where=where,
            group_by=group_by,
            having=having,
        )

    def _gen_with_view(self) -> ViewSpec:
        """A simple grouped WITH view over one base table."""
        rng = self.rng
        table = rng.choice(self.tables)
        alias = self._fresh("r")
        rel = RelRef(table.name, alias)
        rels = [(rel, table)]
        key = rng.choice(table.columns)
        select = [
            SelectItem(
                "k0", self._column_ref(rel, key), frozenset([alias])
            )
        ]
        types = [key.dtype]
        seen_aggregates = set()
        for position in range(rng.randint(1, 2)):
            sql, dtype, aliases = self._aggregate(rels, False)
            if sql in seen_aggregates:
                continue
            seen_aggregates.add(sql)
            select.append(
                SelectItem(f"v{position}", sql, aliases, True)
            )
            types.append(dtype)
        where = [self._predicate(rels)] if rng.random() < 0.5 else []
        body = QuerySpec(
            relations=[rel],
            select=select,
            where=where,
            group_by=[self._column_ref(rel, key)],
        )
        view = ViewSpec(
            name=self._fresh("v"),
            columns=[item.name for item in select],
            body=body,
        )
        view._types = types  # stashed for view_column_types
        return view

    def _gen_matview(self) -> Tuple[Stmt, GenTable]:
        """CREATE MATERIALIZED VIEW over one or two base tables.

        Holistic aggregates are kept out of matview bodies: a query
        referencing the view by name would hide them from the oracle's
        holistic-SQL detection."""
        rng = self.rng
        count = 1 if rng.random() < 0.7 else 2
        body = self._gen_query(
            allow_views=False,
            allow_holistic=False,
            source_tables=self.tables,
            max_relations=count,
            allow_subqueries=False,
            allow_left_joins=False,
        )
        # matview bodies must group and must not HAVING
        if not body.group_by:
            rel = body.relations[0]
            key = f"{rel.alias}.c0"
            body.group_by = [key]
            body.select = [
                SelectItem(self._fresh("x"), key, frozenset([rel.alias]))
            ] + [item for item in body.select if item.is_aggregate]
            if len(body.select) == 1:
                body.select.append(
                    SelectItem(
                        self._fresh("x"),
                        "count(*)",
                        frozenset(),
                        is_aggregate=True,
                    )
                )
        body.having = []
        name = self._fresh("mv")
        sql = f"create materialized view {name} as {body.to_sql()}"
        by_alias = {
            rel.alias: next(
                table for table in self.tables if table.name == rel.table
            )
            for rel in body.relations
        }
        columns = tuple(
            GenColumn(item.name, _output_type(item, by_alias), True)
            for item in body.select
        )
        return Stmt("matview", sql), GenTable(name, columns)

    # -- whole scripts -------------------------------------------------

    def generate(self) -> List[Stmt]:
        rng = self.rng
        profile = self.profile
        script: List[Stmt] = []

        for _ in range(rng.randint(1, profile.max_tables)):
            table = self._gen_table()
            self.tables.append(table)
            script.append(Stmt("create", self._create_sql(table)))
            rows = rng.randint(profile.min_rows, profile.max_rows)
            script.append(Stmt("insert", self._insert_sql(table, rows)))

        for table in self.tables:
            if rng.random() < profile.index_prob:
                column = rng.choice(table.columns)
                script.append(
                    Stmt(
                        "index",
                        f"create index {self._fresh('ix')} on "
                        f"{table.name} ({column.name})",
                    )
                )

        if rng.random() < profile.matview_prob:
            for _ in range(rng.randint(1, 2)):
                stmt, view_table = self._gen_matview()
                script.append(stmt)
                self.matviews.append(view_table)

        if rng.random() < profile.analyze_upfront_prob:
            script.append(Stmt("analyze", "analyze"))

        for _ in range(profile.queries):
            roll = rng.random()
            if roll < 0.2 and rng.random() < profile.late_insert_prob:
                table = rng.choice(self.tables)
                script.append(
                    Stmt(
                        "insert",
                        self._insert_sql(table, rng.randint(1, 8)),
                    )
                )
                if self.matviews and rng.random() < profile.refresh_prob:
                    view = rng.choice(self.matviews)
                    script.append(
                        Stmt(
                            "refresh",
                            f"refresh materialized view {view.name}",
                        )
                    )
                if rng.random() < profile.analyze_prob:
                    target = (
                        f" {table.name}" if rng.random() < 0.5 else ""
                    )
                    script.append(Stmt("analyze", f"analyze{target}"))
            if rng.random() < profile.grouped_join_prob:
                query = self._gen_grouped_join_query()
            else:
                query = self._gen_query()
            script.append(Stmt("query", query.to_sql(), query=query))
        return script


def _output_type(item: SelectItem, by_alias) -> str:
    """The result type of one select item, given alias → GenTable.

    Exact for key columns and MIN/MAX (which preserve their argument's
    type — getting ``str`` right matters because only =/!= are safe on
    strings); numeric aggregates approximate to float, which any
    numeric literal compares against safely."""

    def resolve(ref: str) -> str:
        alias, column_name = ref.split(".", 1)
        table = by_alias[alias]
        for column in table.columns:
            if column.name == column_name:
                return column.dtype
        return "int"

    sql = item.sql
    if not item.is_aggregate:
        return resolve(sql)
    if sql == "count(*)" or sql.startswith("count("):
        return "int"
    func, _, rest = sql.partition("(")
    arg = rest.rstrip(")")
    if func in ("min", "max"):
        return resolve(arg)
    return "float"


def view_column_types(view: ViewSpec) -> List[str]:
    """Column types of a WITH view (stashed by the generator)."""
    return getattr(view, "_types", ["int"] * len(view.columns))


def generate_script(
    seed: int, profile: Optional[GenProfile] = None
) -> List[Stmt]:
    """The deterministic fuzz script for *seed*."""
    return ScriptGenerator(seed, profile).generate()


def render_script(script: Sequence[Stmt]) -> str:
    """Self-contained ``;``-separated SQL text of a script."""
    return ";\n".join(stmt.render() for stmt in script) + ";\n"


__all__ = [
    "GenProfile",
    "LeftJoinSpec",
    "PredSpec",
    "QuerySpec",
    "RelRef",
    "ScriptGenerator",
    "SelectItem",
    "Stmt",
    "ViewSpec",
    "generate_script",
    "render_script",
    "view_column_types",
]
