"""Differential fuzzing subsystem.

Exercises the whole stack through the SQL front door: a seeded
grammar-driven generator (:mod:`sqlgen`), a SQLite + brute-force
oracle layer (:mod:`oracle`), metamorphic plan-space cross-checks
(:mod:`metamorphic`), a delta-debugging shrinker (:mod:`shrink`), and
the fuzz loop with profiles and JSON reporting (:mod:`runner`).
"""

from .metamorphic import CONFIGS, CheckReport, Divergence, check_script
from .oracle import OracleError, SqliteOracle, needs_reference
from .runner import (
    PROFILES,
    FuzzConfigError,
    FuzzReport,
    load_corpus_script,
    run_fuzz,
)
from .shrink import shrink_script
from .sqlgen import GenProfile, Stmt, generate_script, render_script

__all__ = [
    "CONFIGS",
    "PROFILES",
    "CheckReport",
    "Divergence",
    "FuzzConfigError",
    "FuzzReport",
    "GenProfile",
    "OracleError",
    "SqliteOracle",
    "Stmt",
    "check_script",
    "generate_script",
    "load_corpus_script",
    "needs_reference",
    "render_script",
    "run_fuzz",
    "shrink_script",
]
