"""Differential-testing oracles: SQLite and the brute-force evaluator.

Layer one is :class:`SqliteOracle`, a stdlib-``sqlite3`` in-memory
database replaying the same script. The generated dialect is designed
to mean the same thing in both systems (see ``sqlgen``), so queries
pass to SQLite **verbatim**; only DDL/DML is translated:

- ``CREATE TABLE`` — types map int→INTEGER, float→REAL, str→TEXT. No
  constraints are forwarded: SQLite's ``INTEGER PRIMARY KEY`` aliases
  the rowid (changing semantics), and NOT NULL enforcement is this
  engine's job, not the oracle's.
- ``CREATE INDEX`` — dropped; indexes cannot change SQLite's answers.
- ``INSERT`` — re-emitted with placeholders from the parsed rows.
- ``CREATE MATERIALIZED VIEW`` — becomes a plain ``CREATE VIEW``: a
  live view is exactly the always-fresh semantics the engine promises
  for queries that name a materialized view.
- ``REFRESH MATERIALIZED VIEW`` — a no-op (views are always fresh).

Layer two is the brute-force reference evaluator
(:meth:`repro.db.Database.reference`), used for constructs SQLite
cannot mirror — the holistic aggregates ``stddev`` (population form;
SQLite has none built in) and ``median``.

Result comparison is bag equality with float tolerance and NULL
awareness, shared with the reference module's :func:`rows_equal_bag`.
"""

from __future__ import annotations

import re
import sqlite3
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..sql.ddl import CreateTableStmt, InsertStmt, maybe_parse_ddl
from .sqlgen import HOLISTIC_AGGREGATES, Stmt

_SQLITE_TYPES = {
    "int": "INTEGER",
    "integer": "INTEGER",
    "float": "REAL",
    "double": "REAL",
    "str": "TEXT",
    "string": "TEXT",
    "text": "TEXT",
}

_MATVIEW_RE = re.compile(
    r"^\s*create\s+materialized\s+view\s+", re.IGNORECASE
)

_HOLISTIC_RE = re.compile(
    r"\b(" + "|".join(HOLISTIC_AGGREGATES) + r")\s*\(", re.IGNORECASE
)


class OracleError(ReproError):
    """The oracle could not be set up or could not run a statement."""


def needs_reference(sql: str) -> bool:
    """True when *sql* uses a construct SQLite cannot mirror, so the
    brute-force evaluator must serve as the oracle instead."""
    return _HOLISTIC_RE.search(sql) is not None


class SqliteOracle:
    """An in-memory SQLite database mirroring one fuzz script."""

    def __init__(self) -> None:
        try:
            self.connection = sqlite3.connect(":memory:")
        except sqlite3.Error as error:  # pragma: no cover - env-specific
            raise OracleError(f"cannot open SQLite oracle: {error}")

    def close(self) -> None:
        self.connection.close()

    # -- statement replay ----------------------------------------------

    def apply(self, stmt: Stmt) -> None:
        """Replay one non-query statement."""
        try:
            self._apply(stmt)
        except OracleError:
            raise
        except (sqlite3.Error, ReproError) as error:
            raise OracleError(
                f"oracle failed on {stmt.kind} statement: {error}"
            )

    def _apply(self, stmt: Stmt) -> None:
        if stmt.kind in ("index", "refresh", "analyze"):
            return
        if stmt.kind == "matview":
            sql = _MATVIEW_RE.sub("create view ", stmt.sql)
            self.connection.execute(sql)
            return
        if stmt.kind == "create":
            parsed = maybe_parse_ddl(stmt.sql)
            if not isinstance(parsed, CreateTableStmt):
                raise OracleError(
                    f"unexpected create statement: {stmt.sql!r}"
                )
            columns = ", ".join(
                f"{name} {_SQLITE_TYPES[type_name]}"
                for name, type_name in parsed.columns
            )
            self.connection.execute(
                f"CREATE TABLE {parsed.name} ({columns})"
            )
            return
        if stmt.kind == "insert":
            parsed = maybe_parse_ddl(stmt.sql)
            if not isinstance(parsed, InsertStmt):
                raise OracleError(
                    f"unexpected insert statement: {stmt.sql!r}"
                )
            width = len(parsed.rows[0])
            holes = ", ".join(["?"] * width)
            self.connection.executemany(
                f"INSERT INTO {parsed.table} VALUES ({holes})",
                list(parsed.rows),
            )
            return
        raise OracleError(f"oracle cannot replay kind {stmt.kind!r}")

    # -- queries -------------------------------------------------------

    def query(self, sql: str) -> List[Tuple[Any, ...]]:
        """Run one generated query verbatim."""
        try:
            return [
                tuple(row)
                for row in self.connection.execute(sql).fetchall()
            ]
        except sqlite3.Error as error:
            raise OracleError(f"oracle failed on query: {error}")


def oracle_rows(
    sqlite_oracle: Optional[SqliteOracle],
    reference_db,
    sql: str,
) -> Tuple[str, List[Tuple[Any, ...]]]:
    """(oracle name, rows) for one query: SQLite when it can mirror the
    SQL, the brute-force reference evaluator otherwise."""
    if sqlite_oracle is not None and not needs_reference(sql):
        return "sqlite", sqlite_oracle.query(sql)
    return "reference", list(reference_db.reference(sql).rows)


__all__ = [
    "OracleError",
    "SqliteOracle",
    "needs_reference",
    "oracle_rows",
]
