"""The fuzz loop: generate → cross-check → shrink → report.

One *run* iterates seeds, generates a script per seed
(:mod:`sqlgen`), replays it across the metamorphic config matrix and
the oracles (:mod:`metamorphic`), and on divergence delta-debugs the
script down to a minimal repro (:mod:`shrink`) which is written to the
regression corpus as a self-contained ``.sql`` file.

Profiles bound the scale (``smoke`` for CI, ``default`` for local
runs, ``deep`` for nightly soak); a wall-clock ``duration`` cap can
stop a run early — the report records how far it got.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from .metamorphic import CONFIGS, check_script
from .shrink import shrink_script
from .sqlgen import GenProfile, Stmt, generate_script, render_script

PROFILES: Dict[str, GenProfile] = {
    "smoke": GenProfile(
        name="smoke",
        max_tables=2,
        min_rows=5,
        max_rows=25,
        queries=3,
        matview_prob=0.5,
        with_view_prob=0.2,
    ),
    "default": GenProfile(name="default"),
    "deep": GenProfile(
        name="deep",
        max_tables=3,
        min_rows=30,
        max_rows=120,
        queries=10,
        matview_prob=0.75,
        with_view_prob=0.35,
        holistic_prob=0.12,
    ),
}


class FuzzConfigError(ReproError):
    """Bad fuzz parameters (unknown profile, bad seed range, ...)."""


def resolve_profile(name: str) -> GenProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise FuzzConfigError(
            f"unknown fuzz profile {name!r} "
            f"(choose from {', '.join(sorted(PROFILES))})"
        )


@dataclass
class DivergenceRecord:
    """One confirmed divergence, with its shrunk repro."""

    seed: int
    kind: str
    config: str
    detail: str
    script_sql: str
    shrunk_statements: int
    original_statements: int
    corpus_path: Optional[str] = None


@dataclass
class FuzzReport:
    """JSON-serializable summary of one fuzz run."""

    profile: str
    seeds_planned: int
    seeds_run: int = 0
    queries_checked: int = 0
    configs: int = len(CONFIGS)
    duration_seconds: float = 0.0
    stopped_by_duration: bool = False
    divergences: List[DivergenceRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)


def _corpus_name(seed: int, kind: str, config: str) -> str:
    slug = config.replace("/", "-")
    return f"fuzz_seed{seed}_{kind}_{slug}.sql"


def write_corpus_case(
    directory: Path,
    seed: int,
    profile: str,
    script: Sequence[Stmt],
    kind: str,
    config: str,
    detail: str,
) -> Path:
    """Write one shrunk repro as a self-contained ``.sql`` file."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / _corpus_name(seed, kind, config)
    header = (
        f"-- fuzz repro: seed={seed} profile={profile}\n"
        f"-- divergence: kind={kind} config={config}\n"
        + "".join(
            f"-- {line}\n" for line in detail.splitlines()
        )
    )
    path.write_text(header + render_script(script))
    return path


def parse_corpus_sql(text: str) -> List[str]:
    """Split a corpus file into statements (comments stripped).

    The generated dialect never contains ``;`` inside literals, so a
    plain split is exact."""
    lines = [
        line
        for line in text.splitlines()
        if not line.lstrip().startswith("--")
    ]
    statements = []
    for chunk in "\n".join(lines).split(";"):
        chunk = chunk.strip()
        if chunk:
            statements.append(chunk)
    return statements


def classify_statement(sql: str) -> str:
    """Statement kind of one corpus SQL string (mirrors the
    generator's kinds so oracles replay corpus files identically)."""
    head = sql.lstrip().lower()
    if head.startswith("create materialized view"):
        return "matview"
    if head.startswith("create table"):
        return "create"
    if head.startswith("create index"):
        return "index"
    if head.startswith("insert"):
        return "insert"
    if head.startswith("refresh"):
        return "refresh"
    if head.startswith("analyze"):
        return "analyze"
    return "query"


def load_corpus_script(path: Path) -> List[Stmt]:
    """Parse one corpus ``.sql`` file back into a replayable script."""
    return [
        Stmt(classify_statement(sql), sql)
        for sql in parse_corpus_sql(path.read_text())
    ]


def run_fuzz(
    seeds: int,
    seed_base: int = 0,
    profile: str = "default",
    duration: Optional[float] = None,
    corpus_dir: Optional[Path] = None,
    shrink: bool = True,
    max_shrink_checks: int = 200,
    progress=None,
) -> FuzzReport:
    """Run the differential fuzz loop over ``seeds`` consecutive seeds.

    Returns a :class:`FuzzReport`; divergences (if any) carry shrunk
    self-contained repro scripts, optionally written to *corpus_dir*.
    """
    if seeds < 1:
        raise FuzzConfigError("seeds must be >= 1")
    gen_profile = resolve_profile(profile)
    report = FuzzReport(profile=profile, seeds_planned=seeds)
    started = time.monotonic()

    for seed in range(seed_base, seed_base + seeds):
        if duration is not None and time.monotonic() - started > duration:
            report.stopped_by_duration = True
            break
        script = generate_script(seed, gen_profile)
        check = check_script(script)
        report.seeds_run += 1
        report.queries_checked += check.queries_checked
        if progress is not None:
            progress(seed, check)
        if check.ok:
            continue

        # One record per distinct signature: shrink against the first
        # divergence of each (kind, config) pair.
        seen_signatures = set()
        for divergence in check.divergences:
            signature = divergence.signature
            if signature in seen_signatures:
                continue
            seen_signatures.add(signature)
            shrunk: List[Stmt] = list(script)
            if shrink:

                def recheck(candidate: List[Stmt]):
                    result = check_script(candidate)
                    for item in result.divergences:
                        if item.signature == signature:
                            return signature
                    return None

                try:
                    shrunk = shrink_script(
                        script, recheck, max_checks=max_shrink_checks
                    )
                except ValueError:
                    shrunk = list(script)  # flaky repro: keep whole
            record = DivergenceRecord(
                seed=seed,
                kind=divergence.kind,
                config=divergence.config,
                detail=divergence.detail,
                script_sql=render_script(shrunk),
                shrunk_statements=len(shrunk),
                original_statements=len(script),
            )
            if corpus_dir is not None:
                path = write_corpus_case(
                    Path(corpus_dir),
                    seed,
                    profile,
                    shrunk,
                    divergence.kind,
                    divergence.config,
                    divergence.detail,
                )
                record.corpus_path = str(path)
            report.divergences.append(record)

    report.duration_seconds = time.monotonic() - started
    return report


__all__ = [
    "PROFILES",
    "DivergenceRecord",
    "FuzzConfigError",
    "FuzzReport",
    "classify_statement",
    "load_corpus_script",
    "parse_corpus_sql",
    "resolve_profile",
    "run_fuzz",
    "write_corpus_case",
]
