"""Metamorphic plan-space cross-checks.

A fuzz script is replayed through several *engine configurations* —
points in the plan space that must all produce the same bags of rows:

- the three optimizer levels (``full`` / ``greedy`` / ``traditional``);
- the paper's transformations on vs. off (pull-up, push-down,
  invariant grouping split);
- answering from materialized views on vs. off;
- the streaming batch executor vs. the legacy row-at-a-time executor.

Each configuration replays the *entire* script in its own database, so
interleaved inserts, matview staleness, and lazy refreshes are
exercised under every plan shape — the state mutations are identical,
only the query plans differ.

On top of row agreement, the harness checks the paper's **no-worse
guarantee**: the full optimizer's estimated cost never exceeds the
traditional optimizer's for the same query (Section 5's safety
property; ``tests/test_property_optimizer.py`` pins the same invariant
on curated workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cost.params import CostParams
from ..db import Database
from ..engine.reference import rows_equal_bag
from ..errors import ReproError
from ..optimizer.options import OptimizerOptions
from .oracle import OracleError, SqliteOracle, oracle_rows
from .sqlgen import Stmt

COST_SLACK = 1e-9


@dataclass(frozen=True)
class EngineConfig:
    """One point in the plan space."""

    name: str
    optimizer: str = "full"
    options: Optional[OptimizerOptions] = None
    engine: str = "batch"
    params: Optional[CostParams] = None
    """Cost-model parameters for this configuration's database. Cost
    knobs steer plan choice only — answers must not move, which is
    exactly what the matrix checks. (The no-worse cost comparison is
    only made between configs sharing the default parameters.)"""
    session: bool = False
    """Replay through a :class:`~repro.server.session.Session` instead
    of the bare ``Database`` facade: every query runs twice through a
    warm plan cache (the second must hit and answer identically) and —
    when the outer WHERE/HAVING contains literals — a third time via
    PREPARE/EXECUTE with the literals lifted to ``$1..$n``."""


#: The cross-check matrix. The first entry is the baseline.
CONFIGS: Tuple[EngineConfig, ...] = (
    EngineConfig("full-batch"),
    EngineConfig("full-rowexec", engine="rowexec"),
    EngineConfig(
        "full-norewrite",
        options=OptimizerOptions(enable_view_rewrite=False),
    ),
    EngineConfig(
        "full-notransforms",
        options=OptimizerOptions(
            enable_pullup=False,
            enable_pushdown=False,
            enable_invariant_split=False,
        ),
    ),
    EngineConfig("greedy-batch", optimizer="greedy"),
    EngineConfig("traditional-batch", optimizer="traditional"),
    EngineConfig(
        "traditional-rowexec-norewrite",
        optimizer="traditional",
        options=OptimizerOptions(enable_view_rewrite=False),
        engine="rowexec",
    ),
    # Statistics ablation: histograms/MCVs/NDV feed only the cost
    # model, so disabling them may change plan choice but never
    # answers — exactly the invariant this matrix checks.
    EngineConfig(
        "full-nostats",
        options=OptimizerOptions(use_statistics=False),
    ),
    # Projection-pruning ablation: lifetime analysis narrows interior
    # schemas only — answers must be identical, and (because pruning is
    # applied before the traditional-min comparison) the no-worse cost
    # guarantee must keep holding with it disabled.
    EngineConfig(
        "full-nopruning",
        options=OptimizerOptions(enable_projection_pruning=False),
    ),
    # Serving-path replay: the plan cache, snapshot execution, and the
    # prepared-statement parameter substitution must all preserve
    # answers — caching and parameter lifting are pure plan-delivery
    # mechanics, never semantics.
    EngineConfig("full-plancache", session=True),
    # Eager-aggregation ablation: partial group-bys and COUNT-carry
    # pre-collapses below joins are retained *alternatives* next to
    # the lazy plan, picked purely by cost — disabling them may change
    # plans and costs but never answers.
    EngineConfig(
        "full-noeager",
        options=OptimizerOptions(enable_eager_aggregation=False),
    ),
    # Eager-adoption point: a weighted CPU+IO objective and a tiny
    # memory budget make the retained eager alternatives actually win
    # at fuzz scale, so partial group-by and COUNT-carry plans get
    # *executed* (including Grace-spill paths) under cross-check — not
    # merely generated and priced.
    EngineConfig(
        "full-eagercost",
        params=CostParams(memory_pages=4, cpu_tuple_weight=0.01),
    ),
    # Decorrelation ablation: subqueries execute as naive mark joins
    # instead of flattened semi/anti/LEFT units — the slow path must
    # agree with the decorrelated plans and the oracle on every row,
    # including NOT IN meeting NULL-bearing inner sides.
    EngineConfig(
        "full-nodecorrelate",
        options=OptimizerOptions(enable_decorrelation=False),
    ),
)


@dataclass
class QueryOutcome:
    """What one configuration produced for one query."""

    rows: Optional[List[Tuple[Any, ...]]] = None
    error: Optional[str] = None
    cost: Optional[float] = None


@dataclass
class Divergence:
    """One disagreement the harness found."""

    kind: str
    """``rows`` (config vs oracle), ``error`` (a config raised),
    ``oracle-error`` (the oracle raised), ``cost`` (no-worse guarantee
    violated), ``setup-error`` (a non-query statement failed)."""
    stmt_index: int
    config: str
    detail: str

    @property
    def signature(self) -> Tuple[str, str]:
        """What the shrinker must preserve: same check, same config."""
        return (self.kind, self.config)

    def describe(self) -> str:
        return (
            f"[{self.kind}] statement #{self.stmt_index} "
            f"config={self.config}: {self.detail}"
        )


@dataclass
class CheckReport:
    """Everything one script check produced."""

    divergences: List[Divergence] = field(default_factory=list)
    queries_checked: int = 0
    configs_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def _session_query_outcome(
    session, sql: str, position: int, rel_tol: float
) -> QueryOutcome:
    """One query through the serving path: twice via the warm plan
    cache, then (literals permitting) once via PREPARE/EXECUTE.

    All three answers must agree; a cache miss on the immediate re-run
    or any disagreement becomes the outcome's error (reported as a
    divergence by ``check_script``). The first run's rows feed the
    standard oracle comparison.
    """
    from ..server.parameterize import parameterize_query

    outcome = QueryOutcome()
    try:
        first = session.execute(sql)
        second = session.execute(sql)
    except ReproError as error:
        outcome.error = f"{type(error).__name__}: {error}"
        return outcome
    outcome.rows = [tuple(row) for row in first.rows]
    outcome.cost = first.query_result.estimated_cost
    if not second.cache_hit:
        outcome.error = "immediate re-execution missed the warm plan cache"
        return outcome
    second_rows = [tuple(row) for row in second.rows]
    if not rows_equal_bag(second_rows, outcome.rows, rel_tol=0.0):
        outcome.error = (
            f"plan-cache re-execution diverged: got "
            f"{_summarize(second_rows)}, expected "
            f"{_summarize(outcome.rows)}"
        )
        return outcome
    # Prepared replay: lift the outer literals to $1..$n. Skipped when
    # there is nothing to lift; a prepare-time rejection of the
    # parameterized form (e.g. a shape the optimizer only supports with
    # concrete constants) also skips — "where literals permit".
    try:
        with session.db.write_lock:
            bound = session.db.bind(sql)
    except ReproError:
        return outcome
    parameterized = parameterize_query(bound)
    if parameterized is None:
        return outcome
    query, values = parameterized
    name = f"fz_{position}"
    try:
        session.prepare_bound(name, query, sql=sql)
    except ReproError:
        return outcome
    try:
        third = session.execute_prepared(name, list(values))
    except ReproError as error:
        outcome.error = (
            f"prepared execution failed: {type(error).__name__}: {error}"
        )
        return outcome
    finally:
        if name in session.prepared:
            session.deallocate(name)
    third_rows = [tuple(row) for row in third.rows]
    if not rows_equal_bag(third_rows, outcome.rows, rel_tol=rel_tol):
        outcome.error = (
            f"prepared execution diverged: got "
            f"{_summarize(third_rows)}, expected "
            f"{_summarize(outcome.rows)}"
        )
    return outcome


def _replay_session_config(
    script: Sequence[Stmt], config: EngineConfig, rel_tol: float
) -> Tuple[Dict[int, QueryOutcome], Optional[Divergence], Database]:
    """Replay the whole script through one :class:`Session`."""
    db = Database(config.params)
    outcomes: Dict[int, QueryOutcome] = {}
    with db.session(
        optimizer=config.optimizer,
        options=config.options,
        engine=config.engine,
    ) as session:
        for position, stmt in enumerate(script):
            if stmt.kind == "query":
                outcomes[position] = _session_query_outcome(
                    session, stmt.render(), position, rel_tol
                )
                continue
            try:
                session.execute(stmt.render())
            except ReproError as error:
                return (
                    outcomes,
                    Divergence(
                        kind="setup-error",
                        stmt_index=position,
                        config=config.name,
                        detail=f"{type(error).__name__}: {error}",
                    ),
                    db,
                )
    return outcomes, None, db


def _replay_config(
    script: Sequence[Stmt], config: EngineConfig, rel_tol: float = 1e-6
) -> Tuple[Dict[int, QueryOutcome], Optional[Divergence], Database]:
    """Replay the whole script under one configuration."""
    if config.session:
        return _replay_session_config(script, config, rel_tol)
    db = Database(config.params)
    outcomes: Dict[int, QueryOutcome] = {}
    for position, stmt in enumerate(script):
        if stmt.kind == "query":
            outcome = QueryOutcome()
            try:
                result = db.query(
                    stmt.render(),
                    optimizer=config.optimizer,
                    options=config.options,
                    engine=config.engine,
                )
                outcome.rows = [tuple(row) for row in result.rows]
                outcome.cost = result.estimated_cost
            except ReproError as error:
                outcome.error = f"{type(error).__name__}: {error}"
            outcomes[position] = outcome
        else:
            try:
                db.execute(stmt.render())
            except ReproError as error:
                return (
                    outcomes,
                    Divergence(
                        kind="setup-error",
                        stmt_index=position,
                        config=config.name,
                        detail=f"{type(error).__name__}: {error}",
                    ),
                    db,
                )
    return outcomes, None, db


def _summarize(rows: Sequence[Tuple[Any, ...]]) -> str:
    shown = ", ".join(repr(row) for row in list(rows)[:4])
    suffix = ", ..." if len(rows) > 4 else ""
    return f"{len(rows)} rows [{shown}{suffix}]"


def check_script(
    script: Sequence[Stmt],
    configs: Sequence[EngineConfig] = CONFIGS,
    rel_tol: float = 1e-6,
) -> CheckReport:
    """Cross-check one script across the config matrix and the oracles.

    Query comparisons use bag equality with *rel_tol* float tolerance;
    the generator's dyadic-rational data keeps true answers exact, so
    the tolerance only absorbs display-level float noise (e.g. AVG's
    final division).
    """
    report = CheckReport()

    # Baseline replay also serves the reference-evaluator oracle.
    baseline = configs[0]
    base_outcomes, setup_error, _ = _replay_config(
        script, baseline, rel_tol=rel_tol
    )
    report.configs_run += 1
    if setup_error is not None:
        report.divergences.append(setup_error)
        return report

    # Oracle replay: statements in order, queries captured. A separate
    # reference database replays alongside SQLite so brute-force oracle
    # answers reflect the state *at each query's position* (the
    # baseline database above has already run to the end).
    oracle_results: Dict[int, Tuple[str, Any]] = {}
    reference_db = Database()
    try:
        sqlite_oracle: Optional[SqliteOracle] = SqliteOracle()
    except OracleError as error:  # pragma: no cover - env-specific
        sqlite_oracle = None
        report.divergences.append(
            Divergence("oracle-error", -1, "sqlite", str(error))
        )
    try:
        for position, stmt in enumerate(script):
            if stmt.kind == "query":
                try:
                    oracle_results[position] = oracle_rows(
                        sqlite_oracle, reference_db, stmt.render()
                    )
                except (OracleError, ReproError) as error:
                    report.divergences.append(
                        Divergence(
                            "oracle-error",
                            position,
                            "sqlite",
                            f"{type(error).__name__}: {error}",
                        )
                    )
                continue
            try:
                reference_db.execute(stmt.render())
            except ReproError:
                pass  # the baseline replay already reported this
            if sqlite_oracle is not None:
                try:
                    sqlite_oracle.apply(stmt)
                except OracleError as error:
                    report.divergences.append(
                        Divergence(
                            "oracle-error", position, "sqlite", str(error)
                        )
                    )
                    sqlite_oracle = None
    finally:
        if sqlite_oracle is not None:
            sqlite_oracle.close()

    # Every config (baseline included) must match the oracle.
    all_outcomes: Dict[str, Dict[int, QueryOutcome]] = {
        baseline.name: base_outcomes
    }
    for config in configs[1:]:
        outcomes, setup_error, _ = _replay_config(
            script, config, rel_tol=rel_tol
        )
        report.configs_run += 1
        if setup_error is not None:
            report.divergences.append(setup_error)
            continue
        all_outcomes[config.name] = outcomes

    for position, stmt in enumerate(script):
        if stmt.kind != "query":
            continue
        report.queries_checked += 1
        oracle = oracle_results.get(position)
        for config_name, outcomes in all_outcomes.items():
            outcome = outcomes.get(position)
            if outcome is None:
                continue
            if outcome.error is not None:
                report.divergences.append(
                    Divergence(
                        "error", position, config_name, outcome.error
                    )
                )
                continue
            if oracle is None:
                continue
            oracle_name, expected = oracle
            assert outcome.rows is not None
            if not rows_equal_bag(
                outcome.rows, expected, rel_tol=rel_tol
            ):
                report.divergences.append(
                    Divergence(
                        "rows",
                        position,
                        config_name,
                        f"vs {oracle_name}: got "
                        f"{_summarize(outcome.rows)}, expected "
                        f"{_summarize(expected)}",
                    )
                )

        # No-worse guarantee: full cost <= traditional cost.
        full = all_outcomes.get("full-batch", {}).get(position)
        trad = all_outcomes.get("traditional-batch", {}).get(position)
        if (
            full is not None
            and trad is not None
            and full.cost is not None
            and trad.cost is not None
            and full.cost > trad.cost + COST_SLACK
        ):
            report.divergences.append(
                Divergence(
                    "cost",
                    position,
                    "full-batch",
                    f"full cost {full.cost:.6f} > traditional "
                    f"{trad.cost:.6f}",
                )
            )
    return report


__all__ = [
    "CONFIGS",
    "COST_SLACK",
    "CheckReport",
    "Divergence",
    "EngineConfig",
    "QueryOutcome",
    "check_script",
]
