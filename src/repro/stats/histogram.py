"""Equi-depth histograms over the non-null values of one column.

Each bucket holds (approximately) the same number of rows, so skew shows
up as *narrow* buckets around popular regions instead of tall bars — the
classic trade that makes range selectivity error bounded by roughly one
bucket's fraction regardless of the distribution.

Buckets are stored as ``bounds`` (``len(fractions) + 1`` edges, first is
the column min, last the column max), per-bucket ``fractions`` of the
non-null row count, and per-bucket ``distincts``. The bucket convention
is half-open ``[lo, hi)`` except the last, which is closed — the same
convention SQLite's ``stat4`` and Postgres's ``histogram_bounds`` use.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class EquiDepthHistogram:
    """Bucketed distribution of one column's non-null, orderable values."""

    bounds: Tuple[float, ...]
    fractions: Tuple[float, ...]
    distincts: Tuple[int, ...]

    @property
    def num_buckets(self) -> int:
        return len(self.fractions)

    # -- selectivity ---------------------------------------------------

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Fraction of non-null rows with ``col < value`` (or ``<=``).

        Interpolates linearly inside the bucket containing *value*;
        the ``inclusive`` flag adds one average value's worth of rows
        from that bucket, so ``<=`` and ``<`` differ by roughly the
        equality fraction rather than being conflated.
        """
        if not self.fractions:
            return 0.0
        if value < self.bounds[0]:
            return 0.0
        if value >= self.bounds[-1]:
            # Above the max; for inclusive comparisons at exactly the
            # max everything qualifies too.
            if value > self.bounds[-1] or inclusive:
                return 1.0
            return 1.0 - self._point_fraction(len(self.fractions) - 1)
        bucket = min(
            bisect_right(self.bounds, value) - 1, len(self.fractions) - 1
        )
        below = sum(self.fractions[:bucket])
        lo, hi = self.bounds[bucket], self.bounds[bucket + 1]
        if hi > lo:
            below += self.fractions[bucket] * (value - lo) / (hi - lo)
        if inclusive:
            below += self._point_fraction(bucket)
        return min(1.0, max(0.0, below))

    def eq_fraction(self, value: float) -> float:
        """Fraction of non-null rows equal to *value* (assuming *value*
        is not an MCV — callers consult the MCV list first)."""
        if not self.fractions:
            return 0.0
        if value < self.bounds[0] or value > self.bounds[-1]:
            return 0.0
        bucket = min(
            bisect_right(self.bounds, value) - 1, len(self.fractions) - 1
        )
        return self._point_fraction(bucket)

    def _point_fraction(self, bucket: int) -> float:
        """One value's share of rows within *bucket*: the bucket's
        fraction spread uniformly over its distinct values."""
        return self.fractions[bucket] / max(1, self.distincts[bucket])


def build_histogram(
    sorted_values: Sequence[float], buckets: int
) -> EquiDepthHistogram:
    """Build an equi-depth histogram from pre-sorted non-null values.

    Bucket edges land on value boundaries (all copies of a value stay in
    one bucket), so heavy hitters collapse their bucket's width to zero
    rather than smearing across neighbours.
    """
    n = len(sorted_values)
    if n == 0 or buckets <= 0:
        return EquiDepthHistogram((), (), ())
    buckets = min(buckets, n)
    bounds: List[float] = [float(sorted_values[0])]
    fractions: List[float] = []
    distincts: List[int] = []
    start = 0
    for b in range(buckets):
        # Ideal end of this bucket, then push past ties so equal values
        # never straddle a boundary.
        end = round((b + 1) * n / buckets)
        end = max(end, start + 1)
        while end < n and sorted_values[end] == sorted_values[end - 1]:
            end += 1
        if b == buckets - 1:
            end = n
        if start >= end:
            continue
        chunk = sorted_values[start:end]
        fractions.append(len(chunk) / n)
        distinct = 1
        for i in range(1, len(chunk)):
            if chunk[i] != chunk[i - 1]:
                distinct += 1
        distincts.append(distinct)
        # Upper bound: the next bucket's minimum (half-open), or the
        # column max for the final bucket (closed).
        bounds.append(
            float(sorted_values[end]) if end < n else float(chunk[-1])
        )
        start = end
        if start >= n:
            break
    return EquiDepthHistogram(tuple(bounds), tuple(fractions), tuple(distincts))


__all__ = ["EquiDepthHistogram", "build_histogram"]
