"""Estimate-vs-actual feedback: per-operator q-error.

The executor records actual row counts on every plan node
(``node.actual_rows``); the cost annotator records estimates
(``node.props.rows``). The q-error of a pair is the standard
multiplicative measure

    q = max(max(1, est) / max(1, act), max(1, act) / max(1, est))

— symmetric, ≥ 1, and 1.0 exactly when the estimate is right. Both
sides are floored at one row so empty results do not divide by zero and
"estimated 3, got 0" stays finite. A plan whose worst operator q-error
is small was costed from faithful statistics; large q-errors point at
exactly the operator whose estimate went wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..algebra.plan import PlanNode


def q_error(estimated: float, actual: float) -> float:
    """Multiplicative estimate-vs-actual error, ≥ 1.0."""
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


@dataclass(frozen=True)
class EstimateRecord:
    """One operator's estimate-vs-actual outcome."""

    operator: str
    depth: int
    estimated_rows: float
    actual_rows: int

    @property
    def q_error(self) -> float:
        return q_error(self.estimated_rows, self.actual_rows)


def plan_estimates(plan: PlanNode) -> List[EstimateRecord]:
    """Estimate records for every executed, costed operator of *plan*
    (pre-order, matching ``explain`` output)."""
    records: List[EstimateRecord] = []
    for depth, node in _walk(plan, 0):
        if node.props is None or node.actual_rows is None:
            continue
        records.append(
            EstimateRecord(
                operator=node.describe(),
                depth=depth,
                estimated_rows=float(node.props.rows),
                actual_rows=node.actual_rows,
            )
        )
    return records


def _walk(node: PlanNode, depth: int):
    yield depth, node
    for child in node.children:
        yield from _walk(child, depth + 1)


def median(values: Sequence[float]) -> Optional[float]:
    """Plain median; None for an empty sequence."""
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile (``fraction`` in [0, 1])."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


__all__ = [
    "EstimateRecord",
    "median",
    "percentile",
    "plan_estimates",
    "q_error",
]
