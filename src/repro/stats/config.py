"""Knobs of the statistics subsystem.

Collection knobs (how ANALYZE scans and what it builds) live here, on a
:class:`StatsConfig` the catalog carries; *consumption* knobs (whether
the optimizer trusts column statistics at all) live on
``OptimizerOptions.use_statistics`` so ablations can flip them per
query without touching the stored statistics.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StatsConfig:
    """How ANALYZE collects per-table statistics.

    - ``histogram_buckets``: equi-depth buckets per orderable column
      (0 disables histograms — the pure uniform-NDV baseline).
    - ``mcv_entries``: maximum most-common-value entries per column
      (0 disables MCV lists).
    - ``mcv_min_ratio``: a value qualifies as an MCV only when its
      frequency is at least this multiple of the column's average
      frequency (``1/ndv``); keeps uniform columns MCV-free so their
      estimates match the classic System R formulas exactly.
    - ``full_scan_pages``: tables at most this many pages are scanned
      exactly; beyond it ANALYZE switches to block sampling.
    - ``sample_fraction``: fraction of a large table's pages one
      sampled ANALYZE reads (the "at most a configurable fraction of
      pages" bound).
    - ``min_sample_pages``: floor on the sampled page count, so tiny
      fractions of huge tables still see enough data.
    - ``stale_growth_fraction``: re-analyze lazily only once a table
      has grown by this fraction since the last analyze; row and page
      counts are always served exactly (they are O(1) reads), so
      staleness affects only column-level statistics.
    - ``seed``: sampling determinism — the page sample for a given
      (table, size) is a pure function of the seed, so differential
      replays across engine configurations see identical statistics.
    """

    histogram_buckets: int = 32
    mcv_entries: int = 16
    mcv_min_ratio: float = 2.0
    full_scan_pages: int = 256
    sample_fraction: float = 0.1
    min_sample_pages: int = 64
    stale_growth_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.histogram_buckets < 0:
            raise ValueError("histogram_buckets must be non-negative")
        if self.mcv_entries < 0:
            raise ValueError("mcv_entries must be non-negative")
        if self.mcv_min_ratio < 1.0:
            raise ValueError("mcv_min_ratio must be at least 1.0")
        if self.full_scan_pages < 1:
            raise ValueError("full_scan_pages must be positive")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if self.min_sample_pages < 1:
            raise ValueError("min_sample_pages must be positive")
        if self.stale_growth_fraction < 0.0:
            raise ValueError("stale_growth_fraction must be non-negative")


EXACT = StatsConfig(full_scan_pages=2**31, stale_growth_fraction=0.0)
"""Always-exact collection: full scans, refresh on any growth — the
seed's behavior, kept for tests that pin exact estimates."""

UNIFORM = StatsConfig(histogram_buckets=0, mcv_entries=0)
"""NDV-and-range-only collection: the uniform-distribution baseline the
fidelity benchmark compares histograms against."""
