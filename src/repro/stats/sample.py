"""Block sampling and sample-based NDV estimation.

ANALYZE on a large table reads a deterministic pseudo-random subset of
its pages (block sampling: whole pages, not scattered rows, so the page
budget bounds I/O exactly) and scales what it sees. Row counts need no
estimation here — the heap knows its exact size in O(1) — so sampling
only has to recover per-column facts: distinct counts, null fraction,
and the value distribution.

NDV from a sample is the famously hard one; we use the Duj1 estimator
(Haas et al., "Sampling-based estimation of the number of distinct
values of an attribute", VLDB 1995):

    D̂ = n·d / (n − f1 + f1·n/N)

where ``n`` is the sample size, ``N`` the table size, ``d`` the sample
distinct count, and ``f1`` the number of values seen exactly once. The
intuition: singletons (f1) are the evidence of unseen values — a column
whose sampled values all repeat is probably low-cardinality, while one
full of singletons extrapolates toward N. Duj1's ratio error is
typically within a small constant factor for sample fractions ≥ ~5%,
degrading on extreme long-tail distributions; DESIGN.md §9 documents
the measured bounds on the generator workloads.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence

from .config import StatsConfig


def sample_pages(
    table_name: str, num_pages: int, config: StatsConfig
) -> List[int]:
    """Page numbers one sampled ANALYZE reads, sorted ascending.

    Deterministic: a pure function of (table name, page count, seed),
    via ``crc32`` rather than ``hash()`` (which is salted per process),
    so differential replays across engine configurations and processes
    collect identical statistics.
    """
    budget = max(
        config.min_sample_pages, int(num_pages * config.sample_fraction)
    )
    if budget >= num_pages:
        return list(range(num_pages))
    rng = random.Random(zlib.crc32(table_name.encode()) ^ config.seed)
    return sorted(rng.sample(range(num_pages), budget))


def estimate_ndv(
    sample_distinct: int,
    singletons: int,
    sample_rows: int,
    total_rows: int,
) -> int:
    """Duj1 distinct-count estimate, clamped to [d, N]."""
    d, f1, n, total = sample_distinct, singletons, sample_rows, total_rows
    if n <= 0 or d <= 0:
        return 0
    if n >= total:
        return d
    denominator = n - f1 + f1 * n / total
    estimate = n * d / max(denominator, 1e-9)
    return int(min(float(total), max(float(d), estimate)) + 0.5)


def scale_count(sample_count: int, sample_rows: int, total_rows: int) -> int:
    """Linear scale-up of a per-row count (e.g. nulls) from the sample."""
    if sample_rows <= 0:
        return 0
    if sample_rows >= total_rows:
        return sample_count
    return int(sample_count * total_rows / sample_rows + 0.5)


def sampled_rows(
    rows: Sequence[tuple], pages: Sequence[int], rows_per_page: int
) -> List[tuple]:
    """The rows living on the given pages of an in-memory heap."""
    out: List[tuple] = []
    for page in pages:
        out.extend(rows[page * rows_per_page : (page + 1) * rows_per_page])
    return out


__all__ = ["sample_pages", "estimate_ndv", "scale_count", "sampled_rows"]
