"""The statistics subsystem: collection, distributions, and feedback.

- :mod:`repro.stats.config` — :class:`StatsConfig` collection knobs.
- :mod:`repro.stats.collect` — ANALYZE: NULL-aware per-column
  statistics (NDV, range, null count, width, MCVs, histograms).
- :mod:`repro.stats.histogram` — equi-depth histograms.
- :mod:`repro.stats.sample` — block sampling and the Duj1 NDV
  estimator for sublinear ANALYZE on large tables.
- :mod:`repro.stats.feedback` — per-operator estimate-vs-actual
  q-error, closing the loop through ``explain(analyze=True)``.

``repro.catalog.statistics`` re-exports the core types for backward
compatibility; new code should import from here.
"""

from .collect import DEFAULT_CONFIG, ColumnStats, TableStats, analyze_table
from .config import EXACT, UNIFORM, StatsConfig
from .histogram import EquiDepthHistogram, build_histogram
from .sample import estimate_ndv, sample_pages

_FEEDBACK_EXPORTS = (
    "EstimateRecord",
    "median",
    "percentile",
    "plan_estimates",
    "q_error",
)


def __getattr__(name):
    # Feedback helpers depend on the algebra layer, which (transitively)
    # imports the catalog, which imports this package — so they load
    # lazily to keep `repro.catalog.statistics -> repro.stats` cycle-free.
    if name in _FEEDBACK_EXPORTS:
        from . import feedback

        return getattr(feedback, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ColumnStats",
    "DEFAULT_CONFIG",
    "EXACT",
    "EquiDepthHistogram",
    "EstimateRecord",
    "StatsConfig",
    "TableStats",
    "UNIFORM",
    "analyze_table",
    "build_histogram",
    "estimate_ndv",
    "median",
    "percentile",
    "plan_estimates",
    "q_error",
    "sample_pages",
]
