"""ANALYZE: collect per-table and per-column statistics.

The collected shape (Selinger basics plus distribution detail):

- ``row_count`` / ``page_count`` / ``row_width`` — exact, O(1) from the
  heap; never sampled.
- per column: distinct count (exact on small tables, Duj1-estimated
  from a block sample on large ones), null count, average payload
  width, min/max over **non-null** values, a most-common-value list,
  and an equi-depth histogram over the non-MCV numeric values.

NULL handling is deliberate: NULL is not a value. It never enters the
distinct set (the seed stub counted it, inflating NDV), never enters
min/max (the seed let ``min()`` raise ``TypeError`` on the first
NULL-bearing numeric column and silently dropped the range), and is
tracked separately as ``null_count`` so the estimator can discount
equality/range/join selectivities by the non-null fraction.

MCVs follow the Postgres rule: a value is "common" only when its
frequency is at least ``mcv_min_ratio`` times the column average
(``1/ndv``). Uniform columns therefore store no MCVs at all, and every
estimate reduces exactly to the classic System R formula — skew pays
for its own bookkeeping.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..storage.table import HeapTable
from .config import StatsConfig
from .histogram import EquiDepthHistogram, build_histogram
from .sample import estimate_ndv, sample_pages, sampled_rows, scale_count

DEFAULT_CONFIG = StatsConfig()


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column.

    Field order up to ``max_value`` is part of the public API (callers
    construct ``ColumnStats(n_distinct, min_value, max_value)``
    positionally); new fields append after it with defaults.

    ``mcvs`` holds ``(value, fraction)`` pairs, fractions relative to
    the **non-null** row count, sorted by descending frequency.
    ``histogram`` covers the numeric non-null values *excluding* MCVs,
    so the two compose without double counting.
    """

    n_distinct: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    null_count: int = 0
    avg_width: float = 0.0
    mcvs: Tuple[Tuple[Any, float], ...] = ()
    histogram: Optional[EquiDepthHistogram] = None

    @property
    def spread(self) -> Optional[float]:
        """Numeric range width, or ``None`` for non-numeric columns."""
        if isinstance(self.min_value, (int, float)) and isinstance(
            self.max_value, (int, float)
        ):
            return float(self.max_value) - float(self.min_value)
        return None

    @property
    def mcv_total_fraction(self) -> float:
        return sum(fraction for _, fraction in self.mcvs)

    def mcv_fraction(self, value: Any) -> Optional[float]:
        """The value's non-null-row fraction if it is an MCV, else None."""
        for mcv_value, fraction in self.mcvs:
            if mcv_value == value:
                return fraction
        return None

    def null_fraction(self, row_count: int) -> float:
        if row_count <= 0:
            return 0.0
        return min(1.0, self.null_count / row_count)


@dataclass(frozen=True)
class TableStats:
    """Statistics of one stored table.

    ``sampled`` records whether column statistics came from a block
    sample; ``pages_scanned`` is the exact number of heap pages that
    ANALYZE read to build them (the sublinearity the staleness
    micro-benchmark asserts on).
    """

    row_count: int
    page_count: int
    row_width: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    sampled: bool = False
    pages_scanned: int = 0

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _value_width(value: Any, default: int) -> int:
    if isinstance(value, str):
        return len(value)
    return default


def _column_stats(
    position: int,
    declared_width: int,
    rows,
    sample_size: int,
    total_rows: int,
    sampled: bool,
    config: StatsConfig,
) -> ColumnStats:
    counter: Counter = Counter()
    null_sample = 0
    width_sum = 0
    for row in rows:
        value = row[position]
        if value is None:
            null_sample += 1
        else:
            counter[value] += 1
            width_sum += _value_width(value, declared_width)
    non_null_sample = sample_size - null_sample
    null_count = (
        scale_count(null_sample, sample_size, total_rows)
        if sampled
        else null_sample
    )
    if not counter:
        return ColumnStats(n_distinct=0, null_count=null_count)
    avg_width = width_sum / non_null_sample

    if sampled:
        singletons = sum(1 for count in counter.values() if count == 1)
        total_non_null = max(non_null_sample, total_rows - null_count)
        ndv = estimate_ndv(
            len(counter), singletons, non_null_sample, total_non_null
        )
    else:
        ndv = len(counter)

    try:
        low, high = min(counter), max(counter)
    except TypeError:  # mixed un-orderable values; range unknown
        low = high = None

    # MCVs: values at least mcv_min_ratio times as frequent as average.
    mcvs: Tuple[Tuple[Any, float], ...] = ()
    if config.mcv_entries > 0 and ndv > 1:
        threshold = config.mcv_min_ratio / ndv
        common = [
            (value, count / non_null_sample)
            for value, count in counter.most_common(config.mcv_entries)
            if count / non_null_sample >= threshold
        ]
        mcvs = tuple(common)

    histogram: Optional[EquiDepthHistogram] = None
    if config.histogram_buckets > 0:
        mcv_values = {value for value, _ in mcvs}
        numeric = sorted(
            value
            for value in counter
            if _is_numeric(value) and value not in mcv_values
        )
        if numeric and len(numeric) == len(counter) - len(mcv_values):
            expanded = [
                float(value)
                for value in numeric
                for _ in range(counter[value])
            ]
            histogram = build_histogram(expanded, config.histogram_buckets)

    return ColumnStats(
        n_distinct=ndv,
        min_value=low,
        max_value=high,
        null_count=null_count,
        avg_width=avg_width,
        mcvs=mcvs,
        histogram=histogram,
    )


def analyze_table(
    table: HeapTable, config: StatsConfig = DEFAULT_CONFIG
) -> TableStats:
    """Collect statistics for *table*.

    Tables at most ``config.full_scan_pages`` pages are scanned exactly;
    larger ones are block-sampled down to
    ``max(min_sample_pages, sample_fraction × pages)`` pages, making
    ANALYZE sublinear in table size. Row and page counts are always
    exact — only column-level statistics are estimated.
    """
    total_rows = table.num_rows
    total_pages = table.num_pages
    if total_pages <= config.full_scan_pages:
        rows = table.rows
        sampled = False
        pages_scanned = total_pages
    else:
        pages = sample_pages(table.name, total_pages, config)
        rows = sampled_rows(table.rows, pages, table.rows_per_page)
        sampled = len(pages) < total_pages
        pages_scanned = len(pages)

    sample_size = len(rows)
    column_stats: Dict[str, ColumnStats] = {}
    for position, column in enumerate(table.columns):
        column_stats[column.name] = _column_stats(
            position,
            column.dtype.width,
            rows,
            sample_size,
            total_rows,
            sampled,
            config,
        )
    return TableStats(
        row_count=total_rows,
        page_count=total_pages,
        row_width=table.row_width,
        columns=column_stats,
        sampled=sampled,
        pages_scanned=pages_scanned,
    )


__all__ = [
    "ColumnStats",
    "TableStats",
    "analyze_table",
    "DEFAULT_CONFIG",
]
