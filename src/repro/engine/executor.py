"""Streaming batch executor: drives plan trees as batch pipelines.

Two production pipelines share this driver, selected by
``ExecutionContext.engine``:

- ``"columnar"`` (the default): operators exchange
  :class:`~repro.engine.batch.ColumnBatch` column sets and run compiled
  kernels (:mod:`repro.engine.kernels`). Maximal filter→project→rename
  chains fuse into ONE per-batch loop carrying a lazy selection vector —
  no intermediate batch is materialized between fused operators, and
  each fused operator still gets its own
  :class:`~repro.engine.metrics.OperatorMetrics` (rows and batches are
  exact; wall-clock is attributed to the chain head, and members carry
  the ``fused`` flag that ``explain``/``--stats`` render).
- ``"rows"``: the tuple-batch engine (PR 2), kept as the wall-clock
  baseline that ``benchmarks/bench_executor.py`` measures the columnar
  engine against.

Both paths charge identical page IO to ``context.io``. The legacy
row-at-a-time interpreter lives on in :mod:`repro.engine.rowexec` as the
differential reference; all three produce identical row streams.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, List

from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
    SubqueryMarkNode,
)
from ..errors import ExecutionError
from .batch import ColumnBatch, RowBatch, take
from .context import ExecutionContext, Result
from .groupby import (
    filter_batches,
    group_by_batches,
    group_by_columns,
    limit_batches,
    limit_columns,
    project_batches,
    rename_batches,
    sort_batches,
    sort_columns,
)
from .join import join_batches, join_columns
from .kernels import ComputeProgram, SelectionProgram, gather_virtual
from .marks import mark_batches, mark_columns
from .metrics import ExecutionMetrics, OperatorMetrics
from .scan import scan_batches, scan_columns

_BUILDERS = {
    ScanNode: scan_batches,
    JoinNode: join_batches,
    SubqueryMarkNode: mark_batches,
    GroupByNode: group_by_batches,
    SortNode: sort_batches,
    RenameNode: rename_batches,
    ProjectNode: project_batches,
    FilterNode: filter_batches,
    LimitNode: limit_batches,
}

_COLUMN_BUILDERS = {
    ScanNode: scan_columns,
    JoinNode: join_columns,
    SubqueryMarkNode: mark_columns,
    GroupByNode: group_by_columns,
    SortNode: sort_columns,
    LimitNode: limit_columns,
}

_FUSABLE = (FilterNode, ProjectNode, RenameNode)

_SENTINEL = object()


def execute_plan(plan: PlanNode, context: ExecutionContext) -> Result:
    """Execute an operator tree and return the materialized result.

    Page IO is charged to ``context.io`` as execution proceeds; wrap the
    call in ``context.io.measure()`` to attribute IO to one query. Each
    node's actual output cardinality is recorded on ``node.actual_rows``
    and its full counters on ``node.op_metrics``, so
    ``explain(plan, analyze=True)`` can show estimates next to actuals.
    """
    if context.metrics is None:
        context.metrics = ExecutionMetrics()
    rows = []
    for batch in build_pipeline(plan, context):
        if isinstance(batch, ColumnBatch):
            rows.extend(batch.to_rows())
        else:
            rows.extend(batch)
    context.metrics.kernels_compiled = context.kernels_compiled
    return Result(schema=plan.schema, rows=rows)


def build_pipeline(
    plan: PlanNode, context: ExecutionContext, depth: int = 0
) -> Iterator:
    """Build the metered batch generator for *plan* (pre-order setup:
    kernel compilation / expression binding and child pipeline
    construction happen eagerly, row flow is lazy)."""
    if context.engine == "rows":
        return _build_rows(plan, context, depth)
    return _build_columnar(plan, context, depth)


def _lookup(table, plan: PlanNode):
    builder = table.get(type(plan))
    if builder is None:
        for node_type, candidate in table.items():
            if isinstance(plan, node_type):
                builder = candidate
                break
    return builder


def _build_rows(
    plan: PlanNode, context: ExecutionContext, depth: int = 0
) -> Iterator[RowBatch]:
    builder = _lookup(_BUILDERS, plan)
    if builder is None:
        raise ExecutionError(
            f"cannot execute node type {type(plan).__name__}"
        )

    metrics = OperatorMetrics(
        label=plan.describe(), depth=depth, width=len(plan.schema)
    )
    if context.metrics is not None:
        context.metrics.register(metrics)
    plan.op_metrics = metrics

    def run(child: PlanNode) -> Iterator[RowBatch]:
        child_batches = _build_rows(child, context, depth + 1)
        if child.op_metrics is not None:
            metrics.children.append(child.op_metrics)
        return child_batches

    generator = builder(plan, context, metrics, run)
    return _metered(plan, generator, metrics)


def _build_columnar(
    plan: PlanNode, context: ExecutionContext, depth: int = 0
) -> Iterator[ColumnBatch]:
    if isinstance(plan, _FUSABLE):
        return _fused_chain(plan, context, depth)
    builder = _lookup(_COLUMN_BUILDERS, plan)
    if builder is None:
        raise ExecutionError(
            f"cannot execute node type {type(plan).__name__}"
        )

    metrics = OperatorMetrics(
        label=plan.describe(), depth=depth, width=len(plan.schema)
    )
    if context.metrics is not None:
        context.metrics.register(metrics)
    plan.op_metrics = metrics

    def run(child: PlanNode) -> Iterator[ColumnBatch]:
        child_batches = _build_columnar(child, context, depth + 1)
        if child.op_metrics is not None:
            metrics.children.append(child.op_metrics)
        return child_batches

    generator = builder(plan, context, metrics, run)
    return _metered(plan, generator, metrics)


class _Stage:
    """One member of a fused unary chain, with its compiled program."""

    __slots__ = ("kind", "program", "positions", "width", "metrics", "is_head")

    def __init__(self, node: PlanNode, context: ExecutionContext):
        child_schema = node.child.schema
        self.width = len(child_schema)
        if isinstance(node, FilterNode):
            self.kind = "filter"
            self.program = SelectionProgram(
                node.predicates, child_schema, context
            )
            self.positions = ()
        elif isinstance(node, ProjectNode):
            self.kind = "project"
            self.program = ComputeProgram(
                [expression for _, _, expression in node.outputs],
                child_schema,
                context,
            )
            self.positions = ()
        else:
            self.kind = "rename"
            self.program = None
            self.positions = tuple(node.positions)
        self.metrics: OperatorMetrics = None  # type: ignore[assignment]
        self.is_head = False


def _fused_chain(
    plan: PlanNode, context: ExecutionContext, depth: int
) -> Iterator[ColumnBatch]:
    """Fuse the maximal filter/project/rename chain rooted at *plan*
    into one per-batch loop.

    The loop threads ``(columns, count, sel)`` through the chain —
    ``sel`` is a pending selection vector, applied lazily so a filter
    followed by a projection gathers each referenced column exactly
    once, and unreferenced columns are never touched. A projection is
    the rematerialization point (it computes new columns); rename is
    zero-copy under a pending selection.

    Every member keeps its own metrics (exact rows in/out and batches;
    inclusive time lands on the chain head) and is flagged ``fused``.
    """
    chain: List[PlanNode] = [plan]
    node = plan.child
    while isinstance(node, _FUSABLE):
        chain.append(node)
        node = node.child

    fused = len(chain) > 1
    for i, member in enumerate(chain):
        member_metrics = OperatorMetrics(
            label=member.describe(),
            depth=depth + i,
            fused=fused,
            width=len(member.schema),
        )
        if context.metrics is not None:
            context.metrics.register(member_metrics)
        member.op_metrics = member_metrics

    child_batches = _build_columnar(node, context, depth + len(chain))
    head_metrics = chain[0].op_metrics
    if node.op_metrics is not None:
        # the head's inclusive time must subtract the real producer —
        # fused members contribute no time of their own
        head_metrics.children.append(node.op_metrics)

    # stages run bottom-up (deepest chain member first)
    stages = [_Stage(member, context) for member in reversed(chain)]
    for stage, member in zip(stages, reversed(chain)):
        stage.metrics = member.op_metrics
    stages[-1].is_head = True

    def generate() -> Iterator[ColumnBatch]:
        for batch in child_batches:
            columns = batch.columns
            count = batch.length
            sel = None
            emitted = count
            for stage in stages:
                in_rows = len(sel) if sel is not None else count
                stage.metrics.rows_in += in_rows
                if stage.kind == "filter":
                    program = stage.program
                    if sel is None:
                        sel = program.run(columns, count)
                    elif program.active:
                        virtual = gather_virtual(
                            columns, program.used, sel, stage.width
                        )
                        relative = program.run(virtual, len(sel))
                        if relative is not None:
                            sel = [sel[i] for i in relative]
                elif stage.kind == "project":
                    program = stage.program
                    if sel is not None:
                        virtual = gather_virtual(
                            columns, program.used, sel, stage.width
                        )
                        count = len(sel)
                        columns = program.run(virtual, count)
                        sel = None
                    else:
                        columns = program.run(columns, count)
                else:  # rename: pure column pick, selection unaffected
                    columns = [columns[p] for p in stage.positions]
                emitted = len(sel) if sel is not None else count
                if not emitted:
                    break
                if not stage.is_head:
                    stage.metrics.batches += 1
                    stage.metrics.rows_out += emitted
            if not emitted:
                continue
            if sel is not None:
                yield ColumnBatch(
                    [take(column, sel) for column in columns], len(sel)
                )
            else:
                yield ColumnBatch(columns, count)
        for member in chain[1:]:
            member.actual_rows = member.op_metrics.rows_out

    return _metered(plan, generate(), head_metrics)


def _metered(
    plan: PlanNode, generator: Iterator, metrics: OperatorMetrics
) -> Iterator:
    """Wrap an operator's batch generator with row/batch/time counters;
    records ``actual_rows`` when the stream is exhausted."""
    rows_out = 0
    while True:
        started = perf_counter()
        batch = next(generator, _SENTINEL)
        metrics.seconds += perf_counter() - started
        if batch is _SENTINEL:
            break
        metrics.batches += 1
        rows_out += len(batch)
        yield batch
    metrics.rows_out = rows_out
    plan.actual_rows = rows_out
