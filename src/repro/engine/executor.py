"""Plan executor: dispatches plan nodes to physical operators."""

from __future__ import annotations

from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
)
from ..errors import ExecutionError
from .context import ExecutionContext, Result
from .groupby import (
    execute_filter,
    execute_group_by,
    execute_limit,
    execute_project,
    execute_rename,
    execute_sort,
)
from .join import execute_join
from .scan import execute_scan


def execute_plan(plan: PlanNode, context: ExecutionContext) -> Result:
    """Execute an operator tree and return the materialized result.

    Page IO is charged to ``context.io`` as execution proceeds; wrap the
    call in ``context.io.measure()`` to attribute IO to one query. Each
    node's actual output cardinality is recorded on ``node.actual_rows``
    so ``explain(plan, analyze=True)`` can show estimates next to
    actuals.
    """
    result = _dispatch(plan, context)
    plan.actual_rows = len(result.rows)
    return result


def _dispatch(plan: PlanNode, context: ExecutionContext) -> Result:
    if isinstance(plan, ScanNode):
        return execute_scan(plan, context)
    if isinstance(plan, JoinNode):
        return execute_join(plan, context, execute_plan)
    if isinstance(plan, GroupByNode):
        return execute_group_by(plan, context, execute_plan)
    if isinstance(plan, SortNode):
        return execute_sort(plan, context, execute_plan)
    if isinstance(plan, RenameNode):
        return execute_rename(plan, context, execute_plan)
    if isinstance(plan, ProjectNode):
        return execute_project(plan, context, execute_plan)
    if isinstance(plan, FilterNode):
        return execute_filter(plan, context, execute_plan)
    if isinstance(plan, LimitNode):
        return execute_limit(plan, context, execute_plan)
    raise ExecutionError(f"cannot execute node type {type(plan).__name__}")
