"""Streaming batch executor: drives plan trees as batch pipelines.

Each plan node becomes a generator of row batches (``engine.batch``);
scan→filter→project and join→residual→project run as fused per-batch
loops, and only the operators whose semantics require it (hash-join
build side, group-by table, sort buffer) break the pipeline. Every
operator is metered: rows, batches, inclusive wall-clock, and spill IO
land in an :class:`~repro.engine.metrics.OperatorMetrics` registered on
``context.metrics`` and attached to the node as ``node.op_metrics``,
which is what ``explain(plan, analyze=True)`` and ``repro --stats``
render.

The legacy row-at-a-time interpreter lives on in
:mod:`repro.engine.rowexec` as the differential baseline; both paths
charge identical page IO to ``context.io``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator

from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
)
from ..errors import ExecutionError
from .batch import RowBatch
from .context import ExecutionContext, Result
from .groupby import (
    filter_batches,
    group_by_batches,
    limit_batches,
    project_batches,
    rename_batches,
    sort_batches,
)
from .join import join_batches
from .metrics import ExecutionMetrics, OperatorMetrics
from .scan import scan_batches

_BUILDERS = {
    ScanNode: scan_batches,
    JoinNode: join_batches,
    GroupByNode: group_by_batches,
    SortNode: sort_batches,
    RenameNode: rename_batches,
    ProjectNode: project_batches,
    FilterNode: filter_batches,
    LimitNode: limit_batches,
}

_SENTINEL = object()


def execute_plan(plan: PlanNode, context: ExecutionContext) -> Result:
    """Execute an operator tree and return the materialized result.

    Page IO is charged to ``context.io`` as execution proceeds; wrap the
    call in ``context.io.measure()`` to attribute IO to one query. Each
    node's actual output cardinality is recorded on ``node.actual_rows``
    and its full counters on ``node.op_metrics``, so
    ``explain(plan, analyze=True)`` can show estimates next to actuals.
    """
    if context.metrics is None:
        context.metrics = ExecutionMetrics()
    rows = []
    for batch in build_pipeline(plan, context):
        rows.extend(batch)
    return Result(schema=plan.schema, rows=rows)


def build_pipeline(
    plan: PlanNode, context: ExecutionContext, depth: int = 0
) -> Iterator[RowBatch]:
    """Build the metered batch generator for *plan* (pre-order setup:
    expression binding and child pipeline construction happen eagerly,
    row flow is lazy)."""
    builder = _BUILDERS.get(type(plan))
    if builder is None:
        for node_type, candidate in _BUILDERS.items():
            if isinstance(plan, node_type):
                builder = candidate
                break
    if builder is None:
        raise ExecutionError(
            f"cannot execute node type {type(plan).__name__}"
        )

    metrics = OperatorMetrics(label=plan.describe(), depth=depth)
    if context.metrics is not None:
        context.metrics.register(metrics)
    plan.op_metrics = metrics

    def run(child: PlanNode) -> Iterator[RowBatch]:
        child_batches = build_pipeline(child, context, depth + 1)
        if child.op_metrics is not None:
            metrics.children.append(child.op_metrics)
        return child_batches

    generator = builder(plan, context, metrics, run)
    return _metered(plan, generator, metrics)


def _metered(
    plan: PlanNode, generator: Iterator[RowBatch], metrics: OperatorMetrics
) -> Iterator[RowBatch]:
    """Wrap an operator's batch generator with row/batch/time counters;
    records ``actual_rows`` when the stream is exhausted."""
    rows_out = 0
    while True:
        started = perf_counter()
        batch = next(generator, _SENTINEL)
        metrics.seconds += perf_counter() - started
        if batch is _SENTINEL:
            break
        metrics.batches += 1
        rows_out += len(batch)
        yield batch
    metrics.rows_out = rows_out
    plan.actual_rows = rows_out
