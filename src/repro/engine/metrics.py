"""Executor observability: per-operator metrics.

Every :func:`repro.engine.executor.execute_plan` call meters each
operator of the plan: rows and batches produced, inclusive wall-clock
(the time spent inside the operator *and* its children), and the spill
IO the operator charged. The metrics are collected on the
:class:`~repro.engine.context.ExecutionContext` (``context.metrics``)
and attached to each plan node (``node.op_metrics``) so
``explain(plan, analyze=True)`` and the CLI's ``--stats`` flag can
attribute a benchmark regression to a specific operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class OperatorMetrics:
    """Counters for one physical operator of one execution.

    ``seconds`` is *inclusive* (it contains time spent pulling batches
    from child operators); :attr:`self_seconds` subtracts the children.
    """

    label: str
    depth: int = 0
    rows_in: int = 0
    rows_out: int = 0
    batches: int = 0
    seconds: float = 0.0
    spill_reads: int = 0
    spill_writes: int = 0
    fused: bool = False
    width: int = 0
    """Live output width — columns in this operator's schema. Set at
    pipeline build; projection pruning shows up here directly."""
    cells: int = 0
    """Cells this operator *materialized* (copied or expanded values).
    Zero-copy pass-through columns cost nothing, which is why a join's
    cells can be far below ``rows_out × width`` — and why pruning wide
    columns from under a duplicate-expanding join cuts this counter
    rather than ``rows_out``."""
    children: List["OperatorMetrics"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Wall-clock spent in this operator excluding its children."""
        childtime = sum(child.seconds for child in self.children)
        return max(0.0, self.seconds - childtime)

    def spill(self, reads: int, writes: int) -> None:
        self.spill_reads += reads
        self.spill_writes += writes

    def summary(self) -> str:
        parts = [
            f"rows={self.rows_out}",
            f"batches={self.batches}",
            f"time={self.seconds * 1000.0:.2f}ms",
            f"self={self.self_seconds * 1000.0:.2f}ms",
        ]
        if self.width:
            parts.append(f"width={self.width}")
        if self.cells:
            parts.append(f"cells={self.cells}")
        if self.spill_reads or self.spill_writes:
            parts.append(f"spill={self.spill_reads}r/{self.spill_writes}w")
        if self.fused:
            parts.append("fused")
        return " ".join(parts)


class ExecutionMetrics:
    """All operator metrics of one (or more) ``execute_plan`` calls.

    Operators register in plan pre-order, so :meth:`lines` renders an
    indented tree matching ``explain`` output.
    """

    def __init__(self) -> None:
        self.operators: List[OperatorMetrics] = []
        #: kernels instantiated by the columnar engine for this
        #: execution (copied from ``ExecutionContext.kernels_compiled``)
        self.kernels_compiled: int = 0

    def register(self, metrics: OperatorMetrics) -> None:
        self.operators.append(metrics)

    @property
    def total_rows(self) -> int:
        """Rows produced across all operators (interpreter work done)."""
        return sum(op.rows_out for op in self.operators)

    @property
    def total_cells(self) -> int:
        """Cells materialized across all operators — the engine-level
        number projection pruning is meant to shrink."""
        return sum(op.cells for op in self.operators)

    def lines(self) -> List[str]:
        return [
            ("  " * op.depth) + f"{op.label}  [{op.summary()}]"
            for op in self.operators
        ]

    def as_dicts(self) -> List[dict]:
        return [
            {
                "label": op.label,
                "depth": op.depth,
                "rows_out": op.rows_out,
                "batches": op.batches,
                "seconds": op.seconds,
                "self_seconds": op.self_seconds,
                "spill_reads": op.spill_reads,
                "spill_writes": op.spill_writes,
                "fused": op.fused,
                "width": op.width,
                "cells": op.cells,
            }
            for op in self.operators
        ]


def charge_spill(io, metrics: Optional[OperatorMetrics], extra: int) -> None:
    """Charge an out-of-memory IO total the way every operator does:
    half writes (rounding down), the rest reads — the exact split the
    seed executor used, so executed IO stays formula-identical."""
    if not extra:
        return
    writes = extra // 2
    reads = extra - writes
    io.write_pages(writes)
    io.read_pages(reads)
    if metrics is not None:
        metrics.spill(reads, writes)
