"""Shared helpers of the streaming batch pipeline — row-batch and
column-batch representations.

Two batch layouts flow through the engine:

- **Row batches** (plain lists of row tuples) power the PR-2 streaming
  engine, kept as the wall-clock baseline (``ExecutionContext.engine ==
  "rows"``). The helpers here precompile the per-row work into C-speed
  accessors (:func:`projector`, :func:`keyer`, :func:`tuple_keyer`).
- **Column batches** (:class:`ColumnBatch`: one stdlib list/tuple per
  column) power the production columnar engine. Column-major layout
  makes key extraction free (a join/group key *is* its column), makes
  projection a zero-copy column pick (:meth:`ColumnBatch.project`), and
  lets the compiled kernels in :mod:`repro.engine.kernels` run fused
  scan→filter→project loops with no per-row Python function calls.

Columns are any indexable sequences: lists, tuples (``zip(*rows)``
transposes straight to tuples), or ``range`` objects (the synthesized
``_rid`` column is a ``range`` — never materialized unless selected).
``array.array`` columns would also satisfy the protocol, but object
lists win in CPython for these workloads: typed arrays re-box every
element on access, which costs more than the pointer-width list slots
they would save.

``DEFAULT_BATCH_SIZE`` is the pipeline's batch-size knob; per-execution
overrides go through ``ExecutionContext.batch_size``.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, List, Optional, Sequence, Tuple

DEFAULT_BATCH_SIZE = 1024
"""Rows per pipeline batch (see DESIGN.md, "Streaming batch execution")."""

RowBatch = List[Tuple[Any, ...]]

Column = Sequence[Any]
"""One column of a batch: any indexable sequence (list/tuple/range)."""


class ColumnBatch:
    """A column-major batch: one sequence per column, equal lengths.

    The batch never owns its columns — operators share column references
    freely (projection and rename are zero-copy picks), and only filters
    and computed projections allocate new columns.

    **Aliasing contract.** Because pass-through is zero-copy, the same
    column object may be referenced by *several* live batches at once —
    a pruned join projection, a rename, and the scan that produced the
    column can all alias one list. Two rules keep this sound:

    1. An operator must never mutate a column it *received* (no
       ``column[i] = ...``, ``sort()``, ``append()`` on inputs). New
       values always go into freshly allocated columns.
    2. An operator may mutate a column only while it provably holds the
       sole reference — e.g. the accumulators inside
       :class:`ColumnBatchBuilder` and :func:`concat_columns`, or row
       lists built by a private ``to_rows``/collect pass (the sort-merge
       join sorts *those*, never a received column).

    Violating rule 1 would corrupt sibling consumers retroactively and
    is exactly the class of bug projection pruning makes likelier (more
    sharing, fewer defensive copies); the regression tests in
    ``tests/test_batch_aliasing.py`` pin the contract.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Sequence[Column], length: int):
        self.columns: List[Column] = list(columns)
        self.length = length

    def __len__(self) -> int:
        return self.length

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[Any, ...]], width: int) -> "ColumnBatch":
        """Transpose row tuples into columns (one C-speed ``zip`` pass)."""
        if not rows:
            return cls([() for _ in range(width)], 0)
        return cls(list(zip(*rows)), len(rows))

    def to_rows(self) -> RowBatch:
        """Transpose back to row tuples (one C-speed ``zip`` pass)."""
        if not self.length:
            return []
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def column(self, position: int) -> Column:
        return self.columns[position]

    def project(self, positions: Sequence[int]) -> "ColumnBatch":
        """Cheap column slicing: pick/reorder columns without copying."""
        columns = self.columns
        return ColumnBatch([columns[p] for p in positions], self.length)

    def take(self, sel: Sequence[int]) -> "ColumnBatch":
        """Gather the selected row indices from every column."""
        return ColumnBatch([take(c, sel) for c in self.columns], len(sel))


def take(column: Column, sel: Sequence[int]) -> Column:
    """Gather one column through a selection vector.

    Uses a C-level :func:`operator.itemgetter` bulk fetch — measurably
    faster than an interpreted listcomp on large gathers. The result is
    a tuple, which is a perfectly good column (columns are any indexable
    sequence)."""
    if len(sel) > 1:
        return itemgetter(*sel)(column)
    if sel:
        return (column[sel[0]],)
    return ()


def concat_columns(
    batches: Sequence[ColumnBatch], width: int
) -> Tuple[List[List[Any]], int]:
    """Concatenate batches into one column set (per-column ``extend``)."""
    columns: List[List[Any]] = [[] for _ in range(width)]
    total = 0
    for batch in batches:
        total += batch.length
        for accumulator, column in zip(columns, batch.columns):
            accumulator.extend(column)
    return columns, total


class ColumnBatchBuilder:
    """Accumulates column chunks and hands out full column batches.

    The columnar analogue of :class:`BatchBuilder`: producers ``extend``
    with per-column chunks and drain whole batches once ``full``.
    """

    __slots__ = ("columns", "length", "size", "width")

    def __init__(self, size: int, width: int):
        self.size = size
        self.width = width
        self.columns: List[List[Any]] = [[] for _ in range(width)]
        self.length = 0

    def extend(self, columns: Sequence[Column], length: int) -> None:
        self.length += length
        for accumulator, column in zip(self.columns, columns):
            accumulator.extend(column)

    @property
    def full(self) -> bool:
        return self.length >= self.size

    def drain(self) -> ColumnBatch:
        batch = ColumnBatch(self.columns, self.length)
        self.columns = [[] for _ in range(self.width)]
        self.length = 0
        return batch


def projector(
    positions: Sequence[int], source_width: int
) -> Optional[Callable[[Tuple[Any, ...]], Tuple[Any, ...]]]:
    """A compiled projection, or ``None`` for the identity projection.

    ``None`` lets callers skip the per-row copy when an operator's
    projection keeps every source column in order (common for scans
    that output the full table row).
    """
    positions = list(positions)
    if positions == list(range(source_width)):
        return None
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def keyer(positions: Sequence[int]) -> Callable[[Tuple[Any, ...]], Any]:
    """A compiled key extractor; single-column keys become scalars so
    dictionary probes and sort keys allocate no tuple per row."""
    positions = list(positions)
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


def tuple_keyer(
    positions: Sequence[int],
) -> Callable[[Tuple[Any, ...]], Tuple[Any, ...]]:
    """Like :func:`keyer` but always yields a tuple (index probe keys)."""
    positions = list(positions)
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def filtered(batch: RowBatch, checks) -> RowBatch:
    """Apply bound predicate conjuncts to one batch in a single pass.

    Small conjunct counts are special-cased into one inlined boolean
    expression so the common 2–3-predicate case runs without a per-row
    generator (and without rebuilding the batch list per check)."""
    if not checks:
        return batch
    if len(checks) == 1:
        check = checks[0]
        return [row for row in batch if check(row)]
    if len(checks) == 2:
        first, second = checks
        return [row for row in batch if first(row) and second(row)]
    if len(checks) == 3:
        first, second, third = checks
        return [
            row
            for row in batch
            if first(row) and second(row) and third(row)
        ]
    return [row for row in batch if all(check(row) for check in checks)]


class BatchBuilder:
    """Accumulates rows and hands out full batches.

    Producers ``extend``/``append`` rows and yield :meth:`drain` results
    whenever :meth:`full` says the target size is reached; a final
    :meth:`drain` flushes the remainder.
    """

    __slots__ = ("rows", "size")

    def __init__(self, size: int):
        self.rows: RowBatch = []
        self.size = size

    def extend(self, rows: RowBatch) -> None:
        self.rows.extend(rows)

    def append(self, row: Tuple[Any, ...]) -> None:
        self.rows.append(row)

    @property
    def full(self) -> bool:
        return len(self.rows) >= self.size

    def drain(self) -> RowBatch:
        batch, self.rows = self.rows, []
        return batch
