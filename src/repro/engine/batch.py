"""Shared helpers of the streaming batch pipeline.

Operators exchange *batches* — plain lists of row tuples — through
generators, so a scan→filter→project (or join→residual→project) chain
runs as one per-batch loop instead of materializing a full ``Result``
between operators. The helpers here precompile the per-row work into
C-speed accessors:

- :func:`projector` turns a position list into an ``itemgetter`` (or
  ``None`` when the projection is the identity, so callers skip the
  copy entirely);
- :func:`keyer` extracts join/group keys, hoisting the single-column
  case to a scalar so hash probes allocate no key tuple;
- :func:`tuple_keyer` always produces tuples (index probes need them).

``DEFAULT_BATCH_SIZE`` is the pipeline's batch-size knob; per-execution
overrides go through ``ExecutionContext.batch_size``.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, List, Optional, Sequence, Tuple

DEFAULT_BATCH_SIZE = 1024
"""Rows per pipeline batch (see DESIGN.md, "Streaming batch execution")."""

RowBatch = List[Tuple[Any, ...]]


def projector(
    positions: Sequence[int], source_width: int
) -> Optional[Callable[[Tuple[Any, ...]], Tuple[Any, ...]]]:
    """A compiled projection, or ``None`` for the identity projection.

    ``None`` lets callers skip the per-row copy when an operator's
    projection keeps every source column in order (common for scans
    that output the full table row).
    """
    positions = list(positions)
    if positions == list(range(source_width)):
        return None
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def keyer(positions: Sequence[int]) -> Callable[[Tuple[Any, ...]], Any]:
    """A compiled key extractor; single-column keys become scalars so
    dictionary probes and sort keys allocate no tuple per row."""
    positions = list(positions)
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


def tuple_keyer(
    positions: Sequence[int],
) -> Callable[[Tuple[Any, ...]], Tuple[Any, ...]]:
    """Like :func:`keyer` but always yields a tuple (index probe keys)."""
    positions = list(positions)
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def filtered(batch: RowBatch, checks) -> RowBatch:
    """Apply bound predicate conjuncts to one batch."""
    if not checks:
        return batch
    if len(checks) == 1:
        check = checks[0]
        return [row for row in batch if check(row)]
    return [row for row in batch if all(check(row) for check in checks)]


class BatchBuilder:
    """Accumulates rows and hands out full batches.

    Producers ``extend``/``append`` rows and yield :meth:`drain` results
    whenever :meth:`full` says the target size is reached; a final
    :meth:`drain` flushes the remainder.
    """

    __slots__ = ("rows", "size")

    def __init__(self, size: int):
        self.rows: RowBatch = []
        self.size = size

    def extend(self, rows: RowBatch) -> None:
        self.rows.extend(rows)

    def append(self, row: Tuple[Any, ...]) -> None:
        self.rows.append(row)

    @property
    def full(self) -> bool:
        return len(self.rows) >= self.size

    def drain(self) -> RowBatch:
        batch, self.rows = self.rows, []
        return batch
