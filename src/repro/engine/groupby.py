"""Execution of group-by (hash and sort-based), sort, and rename."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..algebra.aggregates import Accumulator
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    LimitNode,
    ProjectNode,
    RenameNode,
    SortNode,
)
from .context import ExecutionContext, Result
from .spill import external_sort_extra_io, hash_group_extra_io


def execute_group_by(
    plan: GroupByNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Group the child's rows (hash or sorted-run) and apply HAVING."""
    child = run(plan.child, context)
    child_schema = plan.child.schema
    key_positions = [
        child_schema.index_of(alias, name) for alias, name in plan.group_keys
    ]
    arg_evaluators = [
        call.arg.bind(child_schema) if call.arg is not None else None
        for _, call in plan.aggregates
    ]
    functions = [call.function() for _, call in plan.aggregates]

    if plan.method == "sort":
        groups = _sorted_groups(child.rows, key_positions, arg_evaluators, functions)
    else:
        groups = _hashed_groups(child.rows, key_positions, arg_evaluators, functions)
        extra = hash_group_extra_io(
            child.pages,
            _group_pages(len(groups), plan.internal_schema.width),
            context.params.memory_pages,
        )
        if extra:
            context.io.write_pages(extra // 2)
            context.io.read_pages(extra - extra // 2)

    internal = plan.internal_schema
    having_checks = [predicate.bind(internal) for predicate in plan.having]
    out_positions = [
        internal.index_of(alias, name) for alias, name in plan.projection
    ]
    rows: List[Tuple] = []
    for key, accumulators in groups:
        internal_row = key + tuple(acc.value() for acc in accumulators)
        if all(check(internal_row) for check in having_checks):
            rows.append(tuple(internal_row[p] for p in out_positions))
    return Result(schema=plan.schema, rows=rows)


def _hashed_groups(rows, key_positions, arg_evaluators, functions):
    table: Dict[Tuple, List[Accumulator]] = {}
    order: List[Tuple] = []
    for row in rows:
        key = tuple(row[p] for p in key_positions)
        accumulators = table.get(key)
        if accumulators is None:
            accumulators = [function.make_accumulator() for function in functions]
            table[key] = accumulators
            order.append(key)
        for accumulator, evaluate in zip(accumulators, arg_evaluators):
            accumulator.add(evaluate(row) if evaluate is not None else None)
    return [(key, table[key]) for key in order]


def _sorted_groups(rows, key_positions, arg_evaluators, functions):
    """Run-based aggregation over input sorted on the group keys.

    The planner guarantees the ordering (a SortNode below, or an order-
    producing child); we re-sort defensively if the input is small and
    unsorted, which keeps hand-built plans usable in tests.
    """
    keyed = [(tuple(row[p] for p in key_positions), row) for row in rows]
    if any(keyed[i][0] > keyed[i + 1][0] for i in range(len(keyed) - 1)):
        keyed.sort(key=lambda pair: pair[0])
    groups = []
    current_key = None
    accumulators: List[Accumulator] = []
    for key, row in keyed:
        if key != current_key:
            if current_key is not None:
                groups.append((current_key, accumulators))
            current_key = key
            accumulators = [function.make_accumulator() for function in functions]
        for accumulator, evaluate in zip(accumulators, arg_evaluators):
            accumulator.add(evaluate(row) if evaluate is not None else None)
    if current_key is not None:
        groups.append((current_key, accumulators))
    return groups


def _group_pages(group_count: int, width: int) -> int:
    from ..storage.page import pages_for

    return pages_for(group_count, width)


def execute_sort(
    plan: SortNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Sort the child's rows (stable, per-key direction), charging external-sort IO when the input exceeds memory."""
    child = run(plan.child, context)
    child_order = getattr(plan.child.props, "order", ()) if plan.child.props else ()
    ascending_only = not any(plan.descending)
    if ascending_only and tuple(
        child_order[: len(plan.keys)]
    ) == tuple(plan.keys):
        return Result(schema=plan.schema, rows=child.rows)
    extra = external_sort_extra_io(child.pages, context.params.memory_pages)
    if extra:
        context.io.write_pages(extra // 2)
        context.io.read_pages(extra - extra // 2)
    schema = plan.child.schema
    rows = list(child.rows)
    # stable multi-pass sort: apply keys from least to most significant
    for key, descending in reversed(list(zip(plan.keys, plan.descending))):
        position = schema.index_of(*key)
        rows.sort(key=lambda row: row[position], reverse=descending)
    return Result(schema=plan.schema, rows=rows)


def execute_limit(
    plan: LimitNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Keep the first N child rows."""
    child = run(plan.child, context)
    return Result(schema=plan.schema, rows=child.rows[: plan.count])


def execute_filter(
    plan: FilterNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Drop child rows failing any predicate (pipelined, no IO)."""
    child = run(plan.child, context)
    schema = plan.child.schema
    checks = [predicate.bind(schema) for predicate in plan.predicates]
    rows = [
        row for row in child.rows if all(check(row) for check in checks)
    ]
    return Result(schema=plan.schema, rows=rows)


def execute_project(
    plan: ProjectNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Evaluate each output expression per child row."""
    child = run(plan.child, context)
    schema = plan.child.schema
    evaluators = [
        expression.bind(schema) for _, _, expression in plan.outputs
    ]
    rows = [
        tuple(evaluate(row) for evaluate in evaluators) for row in child.rows
    ]
    return Result(schema=plan.schema, rows=rows)


def execute_rename(
    plan: RenameNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Permute/rename child columns per the node's mapping."""
    child = run(plan.child, context)
    positions = plan.positions
    rows = [tuple(row[p] for p in positions) for row in child.rows]
    return Result(schema=plan.schema, rows=rows)
