"""Streaming execution of group-by (hash and sort-based), sort, rename,
and the pipelined operators (filter, project, limit).

The group-by table and the sort buffer are pipeline breakers; filter,
project, and rename are pure per-batch loops. ``LimitNode`` drains its
child completely (the legacy executor materialized the child, so the
child's page IO was always charged in full — the batch path preserves
that) while emitting only the first N rows.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from ..algebra.aggregates import Accumulator
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    LimitNode,
    ProjectNode,
    RenameNode,
    SortNode,
)
from ..datatypes import NullOrdered, null_ordered_key
from ..storage.page import pages_for
from .batch import (
    BatchBuilder,
    ColumnBatch,
    RowBatch,
    filtered,
    keyer,
    projector,
    take,
)
from .context import ExecutionContext
from .kernels import ComputeProgram, SelectionProgram, groupby_kernels
from .metrics import OperatorMetrics, charge_spill
from .spill import external_sort_extra_io, hash_group_extra_io


def group_by_batches(
    plan: GroupByNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Group the child's stream (hash or sorted-run) and apply HAVING."""
    child_batches = run(plan.child)
    child_schema = plan.child.schema
    key_positions = [
        child_schema.index_of(alias, name) for alias, name in plan.group_keys
    ]
    single_key = len(key_positions) == 1
    key_of = keyer(key_positions)
    arg_evaluators = [
        call.arg.bind(child_schema) if call.arg is not None else None
        for _, call in plan.aggregates
    ]
    functions = [call.function() for _, call in plan.aggregates]

    internal = plan.internal_schema
    having_checks = [predicate.bind(internal) for predicate in plan.having]
    out_positions = [
        internal.index_of(alias, name) for alias, name in plan.projection
    ]
    project = projector(out_positions, len(internal))

    def generate() -> Iterator[RowBatch]:
        if plan.method == "sort":
            rows: List[Tuple[Any, ...]] = []
            for batch in child_batches:
                rows.extend(batch)
            metrics.rows_in = len(rows)
            groups = _sorted_groups(rows, key_of, arg_evaluators, functions)
        else:
            groups, child_count = _hashed_groups_streamed(
                child_batches, key_of, arg_evaluators, functions, metrics
            )
            # hash table larger than memory: partition-to-disk charge,
            # using the child's total pages (known once it is drained)
            charge_spill(
                context.io,
                metrics,
                hash_group_extra_io(
                    pages_for(child_count, child_schema.width),
                    pages_for(len(groups), internal.width),
                    context.params.memory_pages,
                ),
            )

        out = BatchBuilder(context.batch_size)
        for key, accumulators in groups:
            key_part = (key,) if single_key else key
            internal_row = key_part + tuple(
                accumulator.value() for accumulator in accumulators
            )
            if having_checks and not all(
                check(internal_row) for check in having_checks
            ):
                continue
            out.append(
                project(internal_row) if project is not None else internal_row
            )
            if out.full:
                yield out.drain()
        if out.rows:
            yield out.drain()

    return generate()


def _hashed_groups_streamed(
    child_batches: Iterator[RowBatch],
    key_of,
    arg_evaluators,
    functions,
    metrics: OperatorMetrics,
):
    """Build the group table batch by batch; group order is first-seen
    (dict insertion order), matching the legacy executor exactly."""
    table: Dict[Any, List[Accumulator]] = {}
    lookup = table.get
    count = 0
    if len(functions) == 1:
        # the common single-aggregate shape: no per-row zip loop
        make = functions[0].make_accumulator
        evaluate = arg_evaluators[0]
        for batch in child_batches:
            count += len(batch)
            for row in batch:
                key = key_of(row)
                accumulators = lookup(key)
                if accumulators is None:
                    accumulators = [make()]
                    table[key] = accumulators
                accumulators[0].add(
                    evaluate(row) if evaluate is not None else True
                )
    else:
        for batch in child_batches:
            count += len(batch)
            for row in batch:
                key = key_of(row)
                accumulators = lookup(key)
                if accumulators is None:
                    accumulators = [
                        function.make_accumulator() for function in functions
                    ]
                    table[key] = accumulators
                for accumulator, evaluate in zip(accumulators, arg_evaluators):
                    accumulator.add(
                        evaluate(row) if evaluate is not None else True
                    )
    metrics.rows_in = count
    return list(table.items()), count


def _sorted_groups(rows, key_of, arg_evaluators, functions):
    """Run-based aggregation over input sorted on the group keys.

    The planner guarantees the ordering (a SortNode below, or an order-
    producing child); we re-sort defensively if the input is small and
    unsorted, which keeps hand-built plans usable in tests.
    """
    keyed = [(key_of(row), row) for row in rows]
    if any(
        _order_key(keyed[i + 1][0]) < _order_key(keyed[i][0])
        for i in range(len(keyed) - 1)
    ):
        keyed.sort(key=lambda pair: _order_key(pair[0]))
    groups = []
    current_key = None
    started = False
    accumulators: List[Accumulator] = []
    for key, row in keyed:
        if not started or key != current_key:
            if started:
                groups.append((current_key, accumulators))
            started = True
            current_key = key
            accumulators = [
                function.make_accumulator() for function in functions
            ]
        for accumulator, evaluate in zip(accumulators, arg_evaluators):
            accumulator.add(evaluate(row) if evaluate is not None else True)
    if started:
        groups.append((current_key, accumulators))
    return groups


def _order_key(key):
    """NULL-safe ordering wrapper for a group key (scalar or tuple)."""
    if type(key) is tuple:
        return null_ordered_key(key)
    return NullOrdered(key)


def group_by_columns(
    plan: GroupByNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[ColumnBatch]:
    """Columnar group-by: key columns feed the fused accumulate kernel
    directly (key extraction is free), aggregate arguments are computed
    as whole columns, and HAVING + projection run as one selection
    kernel + column gather over the finalized group columns.

    The sort-method path stays row-based (it reuses the run-detection
    logic and is never the hot path); spill charges use the identical
    formula and inputs as the row engine.
    """
    child_batches = run(plan.child)
    child_schema = plan.child.schema
    key_positions = [
        child_schema.index_of(alias, name) for alias, name in plan.group_keys
    ]
    internal = plan.internal_schema
    having = SelectionProgram(plan.having, internal, context)
    out_positions = [
        internal.index_of(alias, name) for alias, name in plan.projection
    ]
    arg_expressions = [
        call.arg for _, call in plan.aggregates if call.arg is not None
    ]
    arg_program = ComputeProgram(arg_expressions, child_schema, context)
    arg_slots = []  # per aggregate: index into the computed columns
    slot = 0
    for _, call in plan.aggregates:
        if call.arg is None:
            arg_slots.append(None)
        else:
            arg_slots.append(slot)
            slot += 1
    update, finalize = groupby_kernels(
        len(key_positions), plan.aggregates, context
    )

    def generate_hash() -> Iterator[ColumnBatch]:
        table: Dict[Any, List[Any]] = {}
        count = 0
        for batch in child_batches:
            n = batch.length
            count += n
            metrics.rows_in += n
            columns = batch.columns
            keys = [columns[p] for p in key_positions]
            computed = arg_program.run(columns, n) if arg_expressions else ()
            args = [
                computed[s] if s is not None else None for s in arg_slots
            ]
            update(keys, args, table)
        charge_spill(
            context.io,
            metrics,
            hash_group_extra_io(
                pages_for(count, child_schema.width),
                pages_for(len(table), internal.width),
                context.params.memory_pages,
            ),
        )
        internal_columns = list(finalize(table.items()))
        groups = len(table)
        metrics.cells += groups * len(internal_columns)
        sel = having.run(internal_columns, groups)
        if sel is not None:
            out_columns = [
                take(internal_columns[p], sel) for p in out_positions
            ]
            metrics.cells += len(sel) * len(out_positions)
            groups = len(sel)
        else:
            out_columns = [internal_columns[p] for p in out_positions]
        for start in range(0, groups, context.batch_size):
            end = min(start + context.batch_size, groups)
            yield ColumnBatch(
                [column[start:end] for column in out_columns], end - start
            )

    def generate_sort() -> Iterator[ColumnBatch]:
        key_of = keyer(key_positions)
        arg_evaluators = [
            call.arg.bind(child_schema) if call.arg is not None else None
            for _, call in plan.aggregates
        ]
        functions = [call.function() for _, call in plan.aggregates]
        having_checks = [predicate.bind(internal) for predicate in plan.having]
        project = projector(out_positions, len(internal))
        single_key = len(key_positions) == 1
        rows: List[Tuple[Any, ...]] = []
        for batch in child_batches:
            rows.extend(batch.to_rows())
        metrics.rows_in = len(rows)
        groups = _sorted_groups(rows, key_of, arg_evaluators, functions)
        out_rows: List[Tuple[Any, ...]] = []
        for key, accumulators in groups:
            key_part = (key,) if single_key else key
            internal_row = key_part + tuple(
                accumulator.value() for accumulator in accumulators
            )
            if having_checks and not all(
                check(internal_row) for check in having_checks
            ):
                continue
            out_rows.append(
                project(internal_row) if project is not None else internal_row
            )
        width = len(out_positions)
        for start in range(0, len(out_rows), context.batch_size):
            chunk = out_rows[start : start + context.batch_size]
            yield ColumnBatch.from_rows(chunk, width)

    return generate_sort() if plan.method == "sort" else generate_hash()


def sort_batches(
    plan: SortNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Sort the child's stream (stable, per-key direction), charging
    external-sort IO when the input exceeds memory."""
    child_batches = run(plan.child)
    child_order = (
        getattr(plan.child.props, "order", ()) if plan.child.props else ()
    )
    ascending_only = not any(plan.descending)
    preordered = ascending_only and tuple(
        child_order[: len(plan.keys)]
    ) == tuple(plan.keys)
    schema = plan.child.schema
    key_specs = [
        (schema.index_of(*key), descending)
        for key, descending in zip(plan.keys, plan.descending)
    ]

    def generate() -> Iterator[RowBatch]:
        if preordered:
            for batch in child_batches:
                metrics.rows_in += len(batch)
                yield batch
            return
        rows: List[Tuple[Any, ...]] = []
        for batch in child_batches:
            rows.extend(batch)
        metrics.rows_in = len(rows)
        charge_spill(
            context.io,
            metrics,
            external_sort_extra_io(
                pages_for(len(rows), schema.width),
                context.params.memory_pages,
            ),
        )
        # stable multi-pass sort: apply keys from least to most significant
        # NullOrdered sorts NULLs first ascending (so last descending),
        # matching SQLite's default NULL placement.
        for position, descending in reversed(key_specs):
            rows.sort(
                key=lambda row: NullOrdered(row[position]),
                reverse=descending,
            )
        for start in range(0, len(rows), context.batch_size):
            yield rows[start : start + context.batch_size]

    return generate()


def sort_columns(
    plan: SortNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[ColumnBatch]:
    """Columnar sort: pre-ordered inputs stream through untouched; the
    general case transposes to rows for the stable multi-pass sort
    (identical permutation and spill charge to the row engine)."""
    child_batches = run(plan.child)
    child_order = (
        getattr(plan.child.props, "order", ()) if plan.child.props else ()
    )
    ascending_only = not any(plan.descending)
    preordered = ascending_only and tuple(
        child_order[: len(plan.keys)]
    ) == tuple(plan.keys)
    schema = plan.child.schema
    key_specs = [
        (schema.index_of(*key), descending)
        for key, descending in zip(plan.keys, plan.descending)
    ]
    width = len(schema)

    def generate() -> Iterator[ColumnBatch]:
        if preordered:
            for batch in child_batches:
                metrics.rows_in += batch.length
                yield batch
            return
        rows: List[Tuple[Any, ...]] = []
        for batch in child_batches:
            rows.extend(batch.to_rows())
        metrics.rows_in = len(rows)
        charge_spill(
            context.io,
            metrics,
            external_sort_extra_io(
                pages_for(len(rows), schema.width),
                context.params.memory_pages,
            ),
        )
        for position, descending in reversed(key_specs):
            rows.sort(
                key=lambda row: NullOrdered(row[position]),
                reverse=descending,
            )
        for start in range(0, len(rows), context.batch_size):
            chunk = rows[start : start + context.batch_size]
            yield ColumnBatch.from_rows(chunk, width)

    return generate()


def limit_columns(
    plan: LimitNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[ColumnBatch]:
    """Columnar limit: emit the first N rows via column slices; the
    child is still drained in full so its IO and actuals stay complete."""
    child_batches = run(plan.child)
    count = plan.count

    def generate() -> Iterator[ColumnBatch]:
        remaining = count
        for batch in child_batches:
            metrics.rows_in += batch.length
            if remaining > 0:
                if batch.length <= remaining:
                    remaining -= batch.length
                    yield batch
                else:
                    head = ColumnBatch(
                        [column[:remaining] for column in batch.columns],
                        remaining,
                    )
                    remaining = 0
                    yield head
            # keep draining: child IO and actuals must be complete

    return generate()


def limit_batches(
    plan: LimitNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Emit the first N child rows; the child is drained in full so the
    IO it charges matches the legacy materializing executor."""
    child_batches = run(plan.child)
    count = plan.count

    def generate() -> Iterator[RowBatch]:
        remaining = count
        for batch in child_batches:
            metrics.rows_in += len(batch)
            if remaining > 0:
                if len(batch) <= remaining:
                    remaining -= len(batch)
                    yield batch
                else:
                    head = batch[:remaining]
                    remaining = 0
                    yield head
            # keep draining: child IO and actuals must be complete

    return generate()


def filter_batches(
    plan: FilterNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Drop child rows failing any predicate (pipelined, no IO)."""
    child_batches = run(plan.child)
    schema = plan.child.schema
    checks = [predicate.bind(schema) for predicate in plan.predicates]

    def generate() -> Iterator[RowBatch]:
        for batch in child_batches:
            metrics.rows_in += len(batch)
            batch = filtered(batch, checks)
            if batch:
                yield batch

    return generate()


def project_batches(
    plan: ProjectNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Evaluate each output expression per child row."""
    child_batches = run(plan.child)
    schema = plan.child.schema
    evaluators = [
        expression.bind(schema) for _, _, expression in plan.outputs
    ]
    single = evaluators[0] if len(evaluators) == 1 else None

    def generate() -> Iterator[RowBatch]:
        for batch in child_batches:
            metrics.rows_in += len(batch)
            if single is not None:
                yield [(single(row),) for row in batch]
            else:
                yield [
                    tuple(evaluate(row) for evaluate in evaluators)
                    for row in batch
                ]

    return generate()


def rename_batches(
    plan: RenameNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Permute/rename child columns per the node's mapping."""
    child_batches = run(plan.child)
    project = projector(plan.positions, len(plan.child.schema))

    def generate() -> Iterator[RowBatch]:
        for batch in child_batches:
            metrics.rows_in += len(batch)
            yield [project(row) for row in batch] if project else batch

    return generate()
