"""Physical execution: iterator operators, executor, reference evaluator.

Plans produced by the optimizer (or built by hand) execute against the
stored tables, charging page IO with exactly the formulas the cost model
estimates with — spills, rescans, and materializations included — so a
benchmark can put estimated IO and executed IO side by side.
"""

from .context import ExecutionContext, Result
from .executor import execute_plan
from .reference import evaluate_block, evaluate_canonical, rows_equal_bag

__all__ = [
    "ExecutionContext",
    "Result",
    "execute_plan",
    "evaluate_block",
    "evaluate_canonical",
    "rows_equal_bag",
]
