"""Physical execution: streaming batch pipelines, executor, reference
evaluator, and the legacy row-at-a-time baseline.

Plans produced by the optimizer (or built by hand) execute against the
stored tables, charging page IO with exactly the formulas the cost model
estimates with — spills, rescans, and materializations included — so a
benchmark can put estimated IO and executed IO side by side. The batch
executor (:func:`execute_plan`) is the production path; the legacy
interpreter (:func:`execute_plan_rows`) is kept as the differential and
performance baseline, and :mod:`repro.engine.reference` remains the
optimizer-free ground truth.
"""

from .batch import DEFAULT_BATCH_SIZE, ColumnBatch
from .context import ExecutionContext, Result
from .executor import execute_plan
from .metrics import ExecutionMetrics, OperatorMetrics
from .reference import evaluate_block, evaluate_canonical, rows_equal_bag
from .rowexec import execute_plan_rows

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ColumnBatch",
    "ExecutionContext",
    "ExecutionMetrics",
    "OperatorMetrics",
    "Result",
    "execute_plan",
    "execute_plan_rows",
    "evaluate_block",
    "evaluate_canonical",
    "rows_equal_bag",
]
