"""Execution context and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..catalog.catalog import Catalog
from ..catalog.schema import RowSchema
from ..cost.params import CostParams
from ..storage.iocounter import IOCounter
from ..storage.page import pages_for
from ..storage.snapshot import DatabaseSnapshot
from .batch import DEFAULT_BATCH_SIZE
from .metrics import ExecutionMetrics


@dataclass
class ExecutionContext:
    """Everything a physical operator needs: catalog, IO counter, knobs.

    ``batch_size`` is the streaming pipeline's rows-per-batch knob;
    ``metrics`` collects per-operator counters (created by the executor
    on first use, accumulating if the context is reused).

    ``engine`` selects the batch representation: ``"columnar"`` (the
    default) runs compiled column kernels, ``"rows"`` runs the tuple
    pipeline kept as the wall-clock baseline. ``kernels_compiled``
    counts kernel instantiations for this context — the observability
    counter behind ``repro --stats`` (cached source still counts: the
    counter tracks kernels built, not code objects compiled).
    """

    catalog: Catalog
    io: IOCounter
    params: CostParams = field(default_factory=CostParams)
    batch_size: int = DEFAULT_BATCH_SIZE
    metrics: Optional[ExecutionMetrics] = None
    engine: str = "columnar"
    kernels_compiled: int = 0
    # When set, scans and index probes read this stable snapshot
    # instead of the live catalog tables — the serving layer's
    # readers-don't-block-writer discipline (storage/snapshot.py).
    # Costing and schema lookups still go through ``catalog``, which
    # is safe: the single writer only appends or publishes.
    snapshot: Optional["DatabaseSnapshot"] = None

    def storage_for(self, table_name: str):
        """The object scans should read *table_name*'s rows from: its
        snapshot if this execution pinned one (and the table existed at
        capture time), else the live heap table."""
        if self.snapshot is not None:
            captured = self.snapshot.table(table_name)
            if captured is not None:
                return captured
        return self.catalog.table(table_name)


@dataclass
class Result:
    """A materialized (in Python memory) intermediate or final result."""

    schema: RowSchema
    rows: List[Tuple[Any, ...]]

    def __post_init__(self) -> None:
        # cached (row_count, pages) pair; pages_for is hot in the join
        # spill-charging paths, and a Result's width never changes
        self._pages_cache: Optional[Tuple[int, int]] = None

    @property
    def pages(self) -> int:
        """Pages this result would occupy if spilled/materialized.

        Cached per row count (appending rows invalidates the cache)."""
        count = len(self.rows)
        cached = self._pages_cache
        if cached is None or cached[0] != count:
            cached = (count, pages_for(count, self.schema.width))
            self._pages_cache = cached
        return cached[1]

    def column(self, alias, name) -> List[Any]:
        """Convenience accessor: all values of one output column."""
        position = self.schema.index_of(alias, name)
        return [row[position] for row in self.rows]

    def as_dicts(self) -> List[dict]:
        """Rows as ``{display_name: value}`` dicts (for examples/docs)."""
        names = [field.display() for field in self.schema]
        return [dict(zip(names, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
