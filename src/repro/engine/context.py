"""Execution context and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from ..catalog.catalog import Catalog
from ..catalog.schema import RowSchema
from ..cost.params import CostParams
from ..storage.iocounter import IOCounter
from ..storage.page import pages_for


@dataclass
class ExecutionContext:
    """Everything a physical operator needs: catalog, IO counter, knobs."""

    catalog: Catalog
    io: IOCounter
    params: CostParams = field(default_factory=CostParams)


@dataclass
class Result:
    """A materialized (in Python memory) intermediate or final result."""

    schema: RowSchema
    rows: List[Tuple[Any, ...]]

    @property
    def pages(self) -> int:
        """Pages this result would occupy if spilled/materialized."""
        return pages_for(len(self.rows), self.schema.width)

    def column(self, alias, name) -> List[Any]:
        """Convenience accessor: all values of one output column."""
        position = self.schema.index_of(alias, name)
        return [row[position] for row in self.rows]

    def as_dicts(self) -> List[dict]:
        """Rows as ``{display_name: value}`` dicts (for examples/docs)."""
        names = [field.display() for field in self.schema]
        return [dict(zip(names, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
