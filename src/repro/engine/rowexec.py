"""Legacy row-at-a-time executor (the pre-batching interpreter).

This is the seed executor kept intact as a second oracle: it fully
materializes a :class:`Result` between every operator and interprets
tuples one at a time. The streaming batch executor
(:mod:`repro.engine.executor`) must produce byte-identical rows and
identical IO charges; ``benchmarks/bench_executor.py`` and the
differential tests in ``tests/test_batch_engine.py`` hold it to that.

Do not optimize this module — its value is being the slow, obviously
correct baseline.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..algebra.aggregates import Accumulator
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
    SubqueryMarkNode,
)
from ..catalog.schema import RowSchema, table_row_schema
from ..datatypes import NullOrdered, null_ordered_key
from ..errors import ExecutionError
from .context import ExecutionContext, Result
from .spill import (
    external_sort_extra_io,
    hash_group_extra_io,
    hash_spill_extra_io,
    nlj_blocks,
)


def execute_plan_rows(plan: PlanNode, context: ExecutionContext) -> Result:
    """Execute an operator tree one tuple at a time (legacy path).

    Charges exactly the same page IO as the batch executor and records
    ``actual_rows`` the same way (except the index-NLJ probe side,
    which the legacy path never recorded — the bug the batch executor
    fixes).
    """
    result = _dispatch(plan, context)
    plan.actual_rows = len(result.rows)
    return result


def _dispatch(plan: PlanNode, context: ExecutionContext) -> Result:
    if isinstance(plan, ScanNode):
        return _execute_scan(plan, context)
    if isinstance(plan, JoinNode):
        return _execute_join(plan, context, execute_plan_rows)
    if isinstance(plan, SubqueryMarkNode):
        return _execute_mark(plan, context, execute_plan_rows)
    if isinstance(plan, GroupByNode):
        return _execute_group_by(plan, context, execute_plan_rows)
    if isinstance(plan, SortNode):
        return _execute_sort(plan, context, execute_plan_rows)
    if isinstance(plan, RenameNode):
        return _execute_rename(plan, context, execute_plan_rows)
    if isinstance(plan, ProjectNode):
        return _execute_project(plan, context, execute_plan_rows)
    if isinstance(plan, FilterNode):
        return _execute_filter(plan, context, execute_plan_rows)
    if isinstance(plan, LimitNode):
        return _execute_limit(plan, context, execute_plan_rows)
    raise ExecutionError(f"cannot execute node type {type(plan).__name__}")


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------


def _execute_scan(plan: ScanNode, context: ExecutionContext) -> Result:
    table = context.catalog.table(plan.table_name)
    storage = context.storage_for(plan.table_name)
    full_schema = table_row_schema(plan.alias, table.columns, include_rid=True)
    checks = [predicate.bind(full_schema) for predicate in plan.filters]
    positions = [
        full_schema.index_of(field.alias, field.name) for field in plan.schema
    ]

    if plan.index_name is not None:
        from .join import _probe_lookup

        info = context.catalog.info(plan.table_name)
        index = info.indexes.get(plan.index_name)
        if index is None:
            raise ExecutionError(
                f"index {plan.index_name!r} not found on {plan.table_name!r}"
            )
        source = _probe_lookup(context, plan, index)(
            context.io, plan.index_values, include_rid=True
        )
    else:
        source = storage.scan(context.io, include_rid=True)

    rows: List[Tuple] = []
    for row in source:
        if all(check(row) for check in checks):
            rows.append(tuple(row[position] for position in positions))
    return Result(schema=plan.schema, rows=rows)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


def _execute_join(
    plan: JoinNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    left = run(plan.left, context)
    if plan.kind != "inner":
        return _execute_kind_join(plan, context, run, left)
    combined = plan.left.schema.concat(plan.right.schema)
    residual_checks = [
        predicate.bind(combined) for predicate in plan.residuals
    ]
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]

    if plan.method == "inlj":
        joined = _index_nlj(plan, context, left)
    else:
        right = run(plan.right, context)
        if plan.method == "hj":
            joined = _hash_join(plan, context, left, right)
        elif plan.method == "smj":
            joined = _sort_merge_join(plan, context, left, right)
        else:
            joined = _block_nlj(plan, context, left, right)

    rows: List[Tuple] = []
    for row in joined:
        if all(check(row) for check in residual_checks):
            rows.append(tuple(row[position] for position in positions))
    return Result(schema=plan.schema, rows=rows)


def _execute_kind_join(
    plan: JoinNode,
    context: ExecutionContext,
    run: Callable[..., Result],
    left: Result,
) -> Result:
    """Semi / anti / LEFT OUTER joins (hash or block-NLJ cores only).

    The ON condition is the equi keys *plus* the residuals, evaluated
    while matching — a residual that fails means "no match" (padded for
    LEFT, unmatched for semi/anti), never a post-join filter. IO
    charges mirror the inner-join cores of the same method.
    """
    right = run(plan.right, context)
    memory = context.params.memory_pages

    if plan.method == "hj":
        extra = hash_spill_extra_io(right.pages, left.pages, memory)
        if extra:
            context.io.write_pages(extra // 2)
            context.io.read_pages(extra - extra // 2)
    else:  # block NLJ: charge the inner side's rescans
        blocks = nlj_blocks(left.pages, memory)
        inner_is_scan = (
            isinstance(plan.right, ScanNode) and plan.right.index_name is None
        )
        if inner_is_scan:
            inner_pages = context.storage_for(plan.right.table_name).num_pages
            if inner_pages > max(1, memory - 2) and blocks > 1:
                context.io.read_pages((blocks - 1) * inner_pages)
        else:
            inner_pages = right.pages
            if inner_pages > max(1, memory - 2):
                context.io.write_pages(inner_pages)  # materialize the inner
                context.io.read_pages(blocks * inner_pages)

    combined = plan.left.schema.concat(plan.right.schema)
    residual_checks = [
        predicate.bind(combined) for predicate in plan.residuals
    ]
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]
    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )

    if plan.null_aware:
        # NOT IN anti join over its single key, SQL three-valued logic:
        # any TRUE match drops the probe row, and so does any UNKNOWN
        # (NULL probe against a non-empty inner, or a NULL inner key
        # against an otherwise unmatched probe). An empty inner keeps
        # every probe row.
        keys = [row[right_positions[0]] for row in right.rows]
        inner_nonempty = bool(keys)
        inner_has_null = any(key is None for key in keys)
        key_set = set(key for key in keys if key is not None)
        rows: List[Tuple] = []
        for left_row in left.rows:
            key = left_row[left_positions[0]]
            if inner_nonempty and (
                key is None or inner_has_null or key in key_set
            ):
                continue
            rows.append(tuple(left_row[p] for p in positions))
        return Result(schema=plan.schema, rows=rows)

    if plan.equi_keys:
        buckets: dict = {}
        for right_row in right.rows:
            key = tuple(right_row[p] for p in right_positions)
            if None in key:
                continue  # NULL keys never equi-match
            buckets.setdefault(key, []).append(right_row)

        def candidates(left_row):
            key = tuple(left_row[p] for p in left_positions)
            if None in key:
                return ()
            return buckets.get(key, ())

    else:

        def candidates(left_row):
            return right.rows

    rows = []
    if plan.kind == "left":
        padding = (None,) * len(plan.right.schema)
        for left_row in left.rows:
            matched = False
            for right_row in candidates(left_row):
                row = left_row + right_row
                if all(check(row) for check in residual_checks):
                    rows.append(tuple(row[p] for p in positions))
                    matched = True
            if not matched:
                row = left_row + padding
                rows.append(tuple(row[p] for p in positions))
    else:
        # semi/anti project the left side only (positions < left width)
        want = plan.kind == "semi"
        for left_row in left.rows:
            hit = any(
                all(
                    check(left_row + right_row)
                    for check in residual_checks
                )
                for right_row in candidates(left_row)
            )
            if hit is want:
                rows.append(tuple(left_row[p] for p in positions))
    return Result(schema=plan.schema, rows=rows)


def _execute_mark(
    plan: SubqueryMarkNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Naive mark join: materialize the inner subplan once, then keep or
    drop each child row per the shared mark predicate."""
    from .marks import mark_filter

    child = run(plan.child, context)
    inner = run(plan.inner, context)
    keep = mark_filter(plan, inner.rows)
    rows = [row for row in child.rows if keep(row)]
    return Result(schema=plan.schema, rows=rows)


def _key_positions(
    schema: RowSchema, keys: List[Tuple[Optional[str], str]]
) -> List[int]:
    return [schema.index_of(alias, name) for alias, name in keys]


def _block_nlj(
    plan: JoinNode, context: ExecutionContext, left: Result, right: Result
) -> List[Tuple]:
    """Block nested-loop join; equi keys (if any) checked as predicates."""
    memory = context.params.memory_pages
    blocks = nlj_blocks(left.pages, memory)

    # Charge the inner side's rescans. The first pass was charged when
    # the right child executed (base scan) or is free (still in memory).
    inner_is_scan = (
        isinstance(plan.right, ScanNode) and plan.right.index_name is None
    )
    if inner_is_scan:
        inner_pages = context.storage_for(plan.right.table_name).num_pages
        if inner_pages > max(1, memory - 2) and blocks > 1:
            context.io.read_pages((blocks - 1) * inner_pages)
    else:
        inner_pages = right.pages
        if inner_pages > max(1, memory - 2):
            context.io.write_pages(inner_pages)  # materialize the inner
            context.io.read_pages(blocks * inner_pages)

    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )
    rows: List[Tuple] = []
    for left_row in left.rows:
        left_key = tuple(left_row[p] for p in left_positions)
        if None in left_key:
            continue  # NULL keys never equi-join
        for right_row in right.rows:
            if left_key == tuple(right_row[p] for p in right_positions):
                rows.append(left_row + right_row)
    return rows


def _index_nlj(
    plan: JoinNode, context: ExecutionContext, left: Result
) -> List[Tuple]:
    """Index nested-loop join: probe the inner table's index per outer
    row, applying the inner scan's filters to fetched rows."""
    inner = plan.right
    if not isinstance(inner, ScanNode):
        raise ExecutionError("index NLJ requires a base-table inner")
    info = context.catalog.info(inner.table_name)
    index = info.indexes.get(plan.index_name or "")
    if index is None:
        raise ExecutionError(
            f"index {plan.index_name!r} not found on {inner.table_name!r}"
        )

    # The index must be on the inner join columns, in equi-key order.
    inner_join_columns = [name for (_, (_, name)) in plan.equi_keys]
    if list(index.column_names[: len(inner_join_columns)]) != inner_join_columns:
        raise ExecutionError(
            f"index {index.name!r} does not cover join columns "
            f"{inner_join_columns}"
        )

    table = info.table
    inner_full = table_row_schema(inner.alias, table.columns, include_rid=True)
    checks = [predicate.bind(inner_full) for predicate in inner.filters]
    inner_positions = [
        inner_full.index_of(field.alias, field.name) for field in inner.schema
    ]
    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )

    from .join import _probe_lookup

    lookup = _probe_lookup(context, inner, index)
    rows: List[Tuple] = []
    for left_row in left.rows:
        probe = tuple(left_row[p] for p in left_positions)
        if None in probe:
            continue  # NULL keys never equi-join
        for inner_row in lookup(context.io, probe, include_rid=True):
            if all(check(inner_row) for check in checks):
                projected = tuple(inner_row[p] for p in inner_positions)
                rows.append(left_row + projected)
    return rows


def _hash_join(
    plan: JoinNode, context: ExecutionContext, left: Result, right: Result
) -> List[Tuple]:
    """Hash join, build side right, probe side left."""
    extra = hash_spill_extra_io(
        right.pages, left.pages, context.params.memory_pages
    )
    if extra:
        context.io.write_pages(extra // 2)
        context.io.read_pages(extra - extra // 2)

    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )
    buckets: dict = {}
    for right_row in right.rows:
        key = tuple(right_row[p] for p in right_positions)
        buckets.setdefault(key, []).append(right_row)
    rows: List[Tuple] = []
    for left_row in left.rows:
        key = tuple(left_row[p] for p in left_positions)
        if None in key:
            continue  # NULL keys never equi-join
        for right_row in buckets.get(key, ()):
            rows.append(left_row + right_row)
    return rows


def _sort_merge_join(
    plan: JoinNode, context: ExecutionContext, left: Result, right: Result
) -> List[Tuple]:
    """Sort-merge join; charges sorts unless an input is pre-ordered.

    Sorts into fresh lists: the child ``Result`` objects may be shared
    (cached subplans, pre-ordered sort pass-through), so mutating
    ``result.rows`` in place would corrupt them.
    """
    memory = context.params.memory_pages
    left_keys = [pair[0] for pair in plan.equi_keys]
    right_keys = [pair[1] for pair in plan.equi_keys]
    left_positions = _key_positions(plan.left.schema, left_keys)
    right_positions = _key_positions(plan.right.schema, right_keys)

    # NULL-keyed rows never equi-join and have no place in the key
    # order, so both sides drop them up front (charges stay based on
    # the child's full page count, matching the batch executor).
    left_rows = [
        row
        for row in left.rows
        if None not in _sort_key(row, left_positions)
    ]
    right_rows = [
        row
        for row in right.rows
        if None not in _sort_key(row, right_positions)
    ]
    for result, child, positions in (
        (left, plan.left, left_positions),
        (right, plan.right, right_positions),
    ):
        order = getattr(child.props, "order", ()) if child.props else ()
        keys = left_keys if result is left else right_keys
        if tuple(order[: len(keys)]) != tuple(keys):
            extra = external_sort_extra_io(result.pages, memory)
            if extra:
                context.io.write_pages(extra // 2)
                context.io.read_pages(extra - extra // 2)
            if result is left:
                left_rows.sort(key=lambda row: _sort_key(row, positions))
            else:
                right_rows.sort(key=lambda row: _sort_key(row, positions))
        # pre-ordered inputs merge for free

    rows: List[Tuple] = []
    i = 0
    j = 0
    while i < len(left_rows) and j < len(right_rows):
        left_key = _sort_key(left_rows[i], left_positions)
        right_key = _sort_key(right_rows[j], right_positions)
        if left_key < right_key:
            i += 1
        elif left_key > right_key:
            j += 1
        else:
            # collect the equal-key run on each side, emit the product
            i_end = i
            while (
                i_end < len(left_rows)
                and _sort_key(left_rows[i_end], left_positions) == left_key
            ):
                i_end += 1
            j_end = j
            while (
                j_end < len(right_rows)
                and _sort_key(right_rows[j_end], right_positions) == right_key
            ):
                j_end += 1
            for left_row in left_rows[i:i_end]:
                for right_row in right_rows[j:j_end]:
                    rows.append(left_row + right_row)
            i, j = i_end, j_end
    return rows


def _sort_key(row: Tuple, positions: List[int]) -> Tuple[Any, ...]:
    return tuple(row[p] for p in positions)


# ----------------------------------------------------------------------
# Group-by, sort, and the pipelined operators
# ----------------------------------------------------------------------


def _execute_group_by(
    plan: GroupByNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Group the child's rows (hash or sorted-run) and apply HAVING."""
    child = run(plan.child, context)
    child_schema = plan.child.schema
    key_positions = [
        child_schema.index_of(alias, name) for alias, name in plan.group_keys
    ]
    arg_evaluators = [
        call.arg.bind(child_schema) if call.arg is not None else None
        for _, call in plan.aggregates
    ]
    functions = [call.function() for _, call in plan.aggregates]

    if plan.method == "sort":
        groups = _sorted_groups(child.rows, key_positions, arg_evaluators, functions)
    else:
        groups = _hashed_groups(child.rows, key_positions, arg_evaluators, functions)
        extra = hash_group_extra_io(
            child.pages,
            _group_pages(len(groups), plan.internal_schema.width),
            context.params.memory_pages,
        )
        if extra:
            context.io.write_pages(extra // 2)
            context.io.read_pages(extra - extra // 2)

    internal = plan.internal_schema
    having_checks = [predicate.bind(internal) for predicate in plan.having]
    out_positions = [
        internal.index_of(alias, name) for alias, name in plan.projection
    ]
    rows: List[Tuple] = []
    for key, accumulators in groups:
        internal_row = key + tuple(acc.value() for acc in accumulators)
        if all(check(internal_row) for check in having_checks):
            rows.append(tuple(internal_row[p] for p in out_positions))
    return Result(schema=plan.schema, rows=rows)


def _hashed_groups(rows, key_positions, arg_evaluators, functions):
    table: Dict[Tuple, List[Accumulator]] = {}
    order: List[Tuple] = []
    for row in rows:
        key = tuple(row[p] for p in key_positions)
        accumulators = table.get(key)
        if accumulators is None:
            accumulators = [function.make_accumulator() for function in functions]
            table[key] = accumulators
            order.append(key)
        for accumulator, evaluate in zip(accumulators, arg_evaluators):
            accumulator.add(evaluate(row) if evaluate is not None else True)
    return [(key, table[key]) for key in order]


def _sorted_groups(rows, key_positions, arg_evaluators, functions):
    """Run-based aggregation over input sorted on the group keys.

    The planner guarantees the ordering (a SortNode below, or an order-
    producing child); we re-sort defensively if the input is small and
    unsorted, which keeps hand-built plans usable in tests.
    """
    keyed = [(tuple(row[p] for p in key_positions), row) for row in rows]
    if any(
        null_ordered_key(keyed[i + 1][0]) < null_ordered_key(keyed[i][0])
        for i in range(len(keyed) - 1)
    ):
        keyed.sort(key=lambda pair: null_ordered_key(pair[0]))
    groups = []
    current_key = None
    accumulators: List[Accumulator] = []
    for key, row in keyed:
        if key != current_key:
            if current_key is not None:
                groups.append((current_key, accumulators))
            current_key = key
            accumulators = [function.make_accumulator() for function in functions]
        for accumulator, evaluate in zip(accumulators, arg_evaluators):
            accumulator.add(evaluate(row) if evaluate is not None else True)
    if current_key is not None:
        groups.append((current_key, accumulators))
    return groups


def _group_pages(group_count: int, width: int) -> int:
    from ..storage.page import pages_for

    return pages_for(group_count, width)


def _execute_sort(
    plan: SortNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Sort the child's rows (stable, per-key direction), charging
    external-sort IO when the input exceeds memory."""
    child = run(plan.child, context)
    child_order = getattr(plan.child.props, "order", ()) if plan.child.props else ()
    ascending_only = not any(plan.descending)
    if ascending_only and tuple(
        child_order[: len(plan.keys)]
    ) == tuple(plan.keys):
        return Result(schema=plan.schema, rows=child.rows)
    extra = external_sort_extra_io(child.pages, context.params.memory_pages)
    if extra:
        context.io.write_pages(extra // 2)
        context.io.read_pages(extra - extra // 2)
    schema = plan.child.schema
    rows = list(child.rows)
    # stable multi-pass sort: apply keys from least to most significant
    for key, descending in reversed(list(zip(plan.keys, plan.descending))):
        position = schema.index_of(*key)
        # NullOrdered sorts NULLs first ascending (so last descending),
        # matching SQLite's default NULL placement.
        rows.sort(
            key=lambda row: NullOrdered(row[position]), reverse=descending
        )
    return Result(schema=plan.schema, rows=rows)


def _execute_limit(
    plan: LimitNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Keep the first N child rows."""
    child = run(plan.child, context)
    return Result(schema=plan.schema, rows=child.rows[: plan.count])


def _execute_filter(
    plan: FilterNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Drop child rows failing any predicate (pipelined, no IO)."""
    child = run(plan.child, context)
    schema = plan.child.schema
    checks = [predicate.bind(schema) for predicate in plan.predicates]
    rows = [
        row for row in child.rows if all(check(row) for check in checks)
    ]
    return Result(schema=plan.schema, rows=rows)


def _execute_project(
    plan: ProjectNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Evaluate each output expression per child row."""
    child = run(plan.child, context)
    schema = plan.child.schema
    evaluators = [
        expression.bind(schema) for _, _, expression in plan.outputs
    ]
    rows = [
        tuple(evaluate(row) for evaluate in evaluators) for row in child.rows
    ]
    return Result(schema=plan.schema, rows=rows)


def _execute_rename(
    plan: RenameNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Permute/rename child columns per the node's mapping."""
    child = run(plan.child, context)
    positions = plan.positions
    rows = [tuple(row[p] for p in positions) for row in child.rows]
    return Result(schema=plan.schema, rows=rows)
