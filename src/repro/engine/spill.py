"""Shared spill-IO formulas.

These formulas are the single source of truth for out-of-memory charges:
the cost model calls them with *estimated* page counts, the executor with
*actual* ones. Keeping them in one place is what makes experiment E12
(cost-model fidelity) meaningful.
"""

from __future__ import annotations

import math


def external_sort_extra_io(pages: int, memory_pages: int) -> int:
    """Extra page IO to sort a *pages*-page stream with *memory_pages*
    buffers, beyond reading the input once.

    In-memory sorts are free. External sorts write initial runs, then
    each merge pass reads and writes everything; the final merge streams
    out without a write. Total: ``2 * pages * merge_passes``.
    """
    pages = max(1, int(math.ceil(pages)))
    if pages <= memory_pages:
        return 0
    runs = math.ceil(pages / memory_pages)
    fan_in = max(2, memory_pages - 1)
    passes = max(1, math.ceil(math.log(runs, fan_in)))
    return 2 * pages * passes


def hash_spill_extra_io(
    build_pages: int, probe_pages: int, memory_pages: int
) -> int:
    """Extra page IO of a Grace hash join when the build side exceeds
    memory: one partitioning pass writes and re-reads both inputs."""
    if build_pages <= memory_pages:
        return 0
    return 2 * (int(math.ceil(build_pages)) + int(math.ceil(probe_pages)))


def hash_group_extra_io(
    input_pages: int, group_pages: int, memory_pages: int
) -> int:
    """Extra page IO of hash aggregation when the group table exceeds
    memory: partition the input to disk and re-read it."""
    if group_pages <= memory_pages:
        return 0
    return 2 * int(math.ceil(input_pages))


def nlj_blocks(outer_pages: int, memory_pages: int) -> int:
    """Number of outer blocks (inner passes) of a block nested-loop join
    that buffers ``memory_pages - 2`` outer pages per block."""
    block_size = max(1, memory_pages - 2)
    return max(1, math.ceil(max(1, outer_pages) / block_size))
