"""Brute-force reference evaluator.

Evaluates query blocks and canonical queries directly from their
definitions — cartesian products, predicate filtering, dictionary
grouping — with no optimizer, no plans, and no IO accounting. It is the
ground truth that every transformation and every optimizer plan is
checked against in the test suite: if a pulled-up or pushed-down plan
disagrees with this evaluator, the transformation is wrong.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.aggregates import Accumulator
from ..algebra.query import AggregateView, CanonicalQuery, QueryBlock
from ..catalog.catalog import Catalog
from ..catalog.schema import Field, RowSchema, table_row_schema
from ..datatypes import NullOrdered
from .context import Result


def evaluate_block(block: QueryBlock, catalog: Catalog) -> Result:
    """Evaluate one single-block query by brute force."""
    sources = [_table_source(ref, catalog) for ref in block.relations]
    return _evaluate_over(
        sources,
        block.predicates,
        block.group_by,
        block.aggregates,
        block.having,
        block.select,
    )


def _table_source(ref, catalog: Catalog) -> Result:
    """A base table as a source, with the hidden row id exposed so
    rid-keyed pulled-up queries evaluate under the reference too."""
    table = catalog.table(ref.table)
    schema = table_row_schema(ref.alias, table.columns, include_rid=True)
    rows = [row + (rid,) for rid, row in enumerate(table.rows)]
    return Result(schema=schema, rows=rows)


def evaluate_view(view: AggregateView, catalog: Catalog) -> Result:
    """Evaluate an aggregate view; outputs are ``view_alias.column``."""
    inner = evaluate_block(view.block, catalog)
    fields = [
        Field(view.alias, field.name, field.dtype) for field in inner.schema
    ]
    return Result(schema=RowSchema(fields), rows=inner.rows)


def evaluate_canonical(query: CanonicalQuery, catalog: Catalog) -> Result:
    """Evaluate a Figure 3 canonical query by brute force: materialize
    each aggregate view, then evaluate the outer block."""
    sources = [_table_source(ref, catalog) for ref in query.base_tables]
    for view in query.views:
        sources.append(evaluate_view(view, catalog))
    result = _evaluate_over(
        sources,
        query.predicates,
        query.group_by,
        query.aggregates,
        query.having,
        query.select,
    )
    if query.order_by:
        rows = list(result.rows)
        for name, descending in reversed(query.order_by):
            position = result.schema.index_of(None, name)
            rows.sort(
                key=lambda row: NullOrdered(row[position]),
                reverse=descending,
            )
        result = Result(schema=result.schema, rows=rows)
    if query.limit is not None:
        result = Result(
            schema=result.schema, rows=result.rows[: query.limit]
        )
    return result


def _evaluate_over(
    sources: Sequence[Result],
    predicates,
    group_by,
    aggregates,
    having,
    select,
) -> Result:
    schema = sources[0].schema
    for source in sources[1:]:
        schema = schema.concat(source.schema)
    checks = [predicate.bind(schema) for predicate in predicates]

    joined: List[Tuple[Any, ...]] = []
    for combo in itertools.product(*(source.rows for source in sources)):
        row = tuple(itertools.chain.from_iterable(combo))
        if all(check(row) for check in checks):
            joined.append(row)

    if not group_by:
        evaluators = [source.bind(schema) for _, source in select]
        rows = [
            tuple(evaluate(row) for evaluate in evaluators) for row in joined
        ]
        out_schema = RowSchema(
            Field(None, name, source.dtype(schema))
            for name, source in select
        )
        return Result(schema=out_schema, rows=rows)

    key_positions = [
        schema.index_of(reference.alias, reference.name)
        for reference in group_by
    ]
    functions = [call.function() for _, call in aggregates]
    arg_evaluators = [
        call.arg.bind(schema) if call.arg is not None else None
        for _, call in aggregates
    ]
    groups: Dict[Tuple, List[Accumulator]] = {}
    order: List[Tuple] = []
    for row in joined:
        key = tuple(row[p] for p in key_positions)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [function.make_accumulator() for function in functions]
            groups[key] = accumulators
            order.append(key)
        for accumulator, evaluate in zip(accumulators, arg_evaluators):
            accumulator.add(evaluate(row) if evaluate is not None else True)

    internal_fields = [schema.fields[p] for p in key_positions]
    internal_fields += [
        Field(None, name, call.output_dtype(schema))
        for name, call in aggregates
    ]
    internal_schema = RowSchema(internal_fields)
    having_checks = [predicate.bind(internal_schema) for predicate in having]
    evaluators = [source.bind(internal_schema) for _, source in select]
    out_schema = RowSchema(
        Field(None, name, source.dtype(internal_schema))
        for name, source in select
    )
    rows = []
    for key in order:
        internal_row = key + tuple(acc.value() for acc in groups[key])
        if all(check(internal_row) for check in having_checks):
            rows.append(tuple(evaluate(internal_row) for evaluate in evaluators))
    return Result(schema=out_schema, rows=rows)


# ----------------------------------------------------------------------
# Bag comparison (for equivalence tests)
# ----------------------------------------------------------------------


def _normalize(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, 9)
    return value


def rows_equal_bag(
    left: Sequence[Tuple[Any, ...]],
    right: Sequence[Tuple[Any, ...]],
    rel_tol: float = 1e-9,
) -> bool:
    """Multiset equality of row collections, tolerant to float noise and
    row order (SQL results are bags)."""
    if len(left) != len(right):
        return False
    key = lambda row: tuple(  # noqa: E731 - local sort key
        (str(type(v)), _normalize(v)) for v in row
    )
    left_sorted = sorted(left, key=key)
    right_sorted = sorted(right, key=key)
    for row_a, row_b in zip(left_sorted, right_sorted):
        if len(row_a) != len(row_b):
            return False
        for a, b in zip(row_a, row_b):
            if a is None or b is None:
                if a is not b:
                    return False
            elif isinstance(a, float) or isinstance(b, float):
                if not math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True
