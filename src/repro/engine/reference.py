"""Brute-force reference evaluator.

Evaluates query blocks and canonical queries directly from their
definitions — cartesian products, predicate filtering, dictionary
grouping — with no optimizer, no plans, and no IO accounting. It is the
ground truth that every transformation and every optimizer plan is
checked against in the test suite: if a pulled-up or pushed-down plan
disagrees with this evaluator, the transformation is wrong.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.aggregates import Accumulator
from ..algebra.expressions import _COMPARISON_OPS, Comparison
from ..algebra.query import (
    AggregateView,
    CanonicalQuery,
    JoinUnit,
    QueryBlock,
    SubquerySpec,
)
from ..catalog.catalog import Catalog
from ..catalog.schema import Field, RowSchema, table_row_schema
from ..datatypes import NullOrdered
from .context import Result


def evaluate_block(block: QueryBlock, catalog: Catalog) -> Result:
    """Evaluate one single-block query by brute force."""
    sources = [_table_source(ref, catalog) for ref in block.relations]
    return _evaluate_over(
        sources,
        block.predicates,
        block.group_by,
        block.aggregates,
        block.having,
        block.select,
    )


def _table_source(ref, catalog: Catalog) -> Result:
    """A base table as a source, with the hidden row id exposed so
    rid-keyed pulled-up queries evaluate under the reference too."""
    table = catalog.table(ref.table)
    schema = table_row_schema(ref.alias, table.columns, include_rid=True)
    rows = [row + (rid,) for rid, row in enumerate(table.rows)]
    return Result(schema=schema, rows=rows)


def evaluate_view(view: AggregateView, catalog: Catalog) -> Result:
    """Evaluate an aggregate view; outputs are ``view_alias.column``."""
    inner = evaluate_block(view.block, catalog)
    fields = [
        Field(view.alias, field.name, field.dtype) for field in inner.schema
    ]
    return Result(schema=RowSchema(fields), rows=inner.rows)


def evaluate_canonical(query: CanonicalQuery, catalog: Catalog) -> Result:
    """Evaluate a Figure 3 canonical query by brute force: materialize
    each aggregate view, join in each unit (semi / anti / left) and
    apply each remaining subquery spec as a mark filter, then evaluate
    the outer block. WHERE predicates run after the units — exactly
    SQL's FROM-then-WHERE order, which is what makes filters over a
    LEFT unit's padded output come out right."""
    unit_aliases = {unit.alias for unit in query.joins}
    sources = [_table_source(ref, catalog) for ref in query.base_tables]
    unit_views: Dict[str, Result] = {}
    for view in query.views:
        if view.alias in unit_aliases:
            unit_views[view.alias] = evaluate_view(view, catalog)
        else:
            sources.append(evaluate_view(view, catalog))
    if query.joins or query.subqueries:
        core = _product(sources)
        for unit in query.joins:
            if unit.table is not None:
                unit_source = _table_source(unit.table, catalog)
                checks = [
                    predicate.bind(unit_source.schema)
                    for predicate in unit.filters
                ]
                unit_source = Result(
                    schema=unit_source.schema,
                    rows=[
                        row
                        for row in unit_source.rows
                        if all(check(row) for check in checks)
                    ],
                )
            else:
                unit_source = unit_views[unit.alias]
            core = _apply_unit(core, unit, unit_source)
        for spec in query.subqueries:
            core = _apply_mark(core, spec, catalog)
        sources = [core]
    result = _evaluate_over(
        sources,
        query.predicates,
        query.group_by,
        query.aggregates,
        query.having,
        query.select,
    )
    if query.order_by:
        rows = list(result.rows)
        for name, descending in reversed(query.order_by):
            position = result.schema.index_of(None, name)
            rows.sort(
                key=lambda row: NullOrdered(row[position]),
                reverse=descending,
            )
        result = Result(schema=result.schema, rows=rows)
    if query.limit is not None:
        result = Result(
            schema=result.schema, rows=result.rows[: query.limit]
        )
    return result


def _product(sources: Sequence[Result]) -> Result:
    """The unfiltered cartesian product of *sources*."""
    schema = sources[0].schema
    for source in sources[1:]:
        schema = schema.concat(source.schema)
    rows = [
        tuple(itertools.chain.from_iterable(combo))
        for combo in itertools.product(*(source.rows for source in sources))
    ]
    return Result(schema=schema, rows=rows)


def _apply_unit(core: Result, unit: JoinUnit, unit_source: Result) -> Result:
    """Join one unit onto the accumulated outer rows by brute force."""
    combined = core.schema.concat(unit_source.schema)
    checks = [predicate.bind(combined) for predicate in unit.on]
    if unit.null_aware:
        # NOT IN three-valued logic over the single membership
        # equality: any TRUE match drops the row, and so does any
        # UNKNOWN (a NULL probe against a non-empty inner, or a NULL
        # inner key against an unmatched probe).
        assert unit.kind == "anti" and len(checks) == 1
        rows = []
        for outer_row in core.rows:
            verdicts = [
                checks[0](outer_row + inner_row)
                for inner_row in unit_source.rows
            ]
            if any(v is True for v in verdicts):
                continue
            if any(v is None for v in verdicts):
                continue
            rows.append(outer_row)
        return Result(schema=core.schema, rows=rows)
    if unit.kind in ("semi", "anti"):
        want = unit.kind == "semi"
        rows = [
            outer_row
            for outer_row in core.rows
            if any(
                all(check(outer_row + inner_row) for check in checks)
                for inner_row in unit_source.rows
            )
            is want
        ]
        return Result(schema=core.schema, rows=rows)
    assert unit.kind == "left"
    padding = (None,) * len(unit_source.schema.fields)
    rows = []
    for outer_row in core.rows:
        matched = False
        for inner_row in unit_source.rows:
            if all(check(outer_row + inner_row) for check in checks):
                rows.append(outer_row + inner_row)
                matched = True
        if not matched:
            rows.append(outer_row + padding)
    return Result(schema=combined, rows=rows)


def _apply_mark(core: Result, spec: SubquerySpec, catalog: Catalog) -> Result:
    """Filter the outer rows through one unflattened subquery spec,
    evaluated naively: materialize the inner block once, then match
    correlations per outer row."""
    inner = _product([_table_source(ref, catalog) for ref in spec.relations])
    local_checks = [
        predicate.bind(inner.schema) for predicate in spec.local_predicates
    ]
    inner_rows = [
        row
        for row in inner.rows
        if all(check(row) for check in local_checks)
    ]
    combined = core.schema.concat(inner.schema)
    correlation_checks = [
        Comparison("=", inner_ref, outer_expr).bind(combined)
        for inner_ref, outer_expr in spec.correlations
    ]
    value_eval = (
        spec.value.bind(inner.schema) if spec.value is not None else None
    )
    outer_eval = (
        spec.outer.bind(core.schema) if spec.outer is not None else None
    )
    # IN's membership test is an implicit equality (op is None).
    compare = _COMPARISON_OPS[spec.op or "="]

    rows = []
    for outer_row in core.rows:
        candidates = [
            inner_row
            for inner_row in inner_rows
            if all(
                check(outer_row + inner_row) is True
                for check in correlation_checks
            )
        ]
        if spec.kind == "exists":
            keep = bool(candidates) is not spec.negate
        elif spec.kind == "in":
            outer_value = outer_eval(outer_row)
            verdicts = [
                compare(outer_value, value_eval(inner_row))
                for inner_row in candidates
            ]
            if spec.negate:
                keep = not any(v is True or v is None for v in verdicts)
            else:
                keep = any(v is True for v in verdicts)
        else:  # scalar aggregate
            assert spec.aggregate is not None
            accumulator = spec.aggregate.function().make_accumulator()
            arg_eval = (
                spec.aggregate.arg.bind(inner.schema)
                if spec.aggregate.arg is not None
                else None
            )
            for inner_row in candidates:
                accumulator.add(
                    arg_eval(inner_row) if arg_eval is not None else True
                )
            keep = compare(outer_eval(outer_row), accumulator.value()) is True
        if keep:
            rows.append(outer_row)
    return Result(schema=core.schema, rows=rows)


def _evaluate_over(
    sources: Sequence[Result],
    predicates,
    group_by,
    aggregates,
    having,
    select,
) -> Result:
    schema = sources[0].schema
    for source in sources[1:]:
        schema = schema.concat(source.schema)
    checks = [predicate.bind(schema) for predicate in predicates]

    joined: List[Tuple[Any, ...]] = []
    for combo in itertools.product(*(source.rows for source in sources)):
        row = tuple(itertools.chain.from_iterable(combo))
        if all(check(row) for check in checks):
            joined.append(row)

    if not group_by:
        evaluators = [source.bind(schema) for _, source in select]
        rows = [
            tuple(evaluate(row) for evaluate in evaluators) for row in joined
        ]
        out_schema = RowSchema(
            Field(None, name, source.dtype(schema))
            for name, source in select
        )
        return Result(schema=out_schema, rows=rows)

    key_positions = [
        schema.index_of(reference.alias, reference.name)
        for reference in group_by
    ]
    functions = [call.function() for _, call in aggregates]
    arg_evaluators = [
        call.arg.bind(schema) if call.arg is not None else None
        for _, call in aggregates
    ]
    groups: Dict[Tuple, List[Accumulator]] = {}
    order: List[Tuple] = []
    for row in joined:
        key = tuple(row[p] for p in key_positions)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [function.make_accumulator() for function in functions]
            groups[key] = accumulators
            order.append(key)
        for accumulator, evaluate in zip(accumulators, arg_evaluators):
            accumulator.add(evaluate(row) if evaluate is not None else True)

    internal_fields = [schema.fields[p] for p in key_positions]
    internal_fields += [
        Field(None, name, call.output_dtype(schema))
        for name, call in aggregates
    ]
    internal_schema = RowSchema(internal_fields)
    having_checks = [predicate.bind(internal_schema) for predicate in having]
    evaluators = [source.bind(internal_schema) for _, source in select]
    out_schema = RowSchema(
        Field(None, name, source.dtype(internal_schema))
        for name, source in select
    )
    rows = []
    for key in order:
        internal_row = key + tuple(acc.value() for acc in groups[key])
        if all(check(internal_row) for check in having_checks):
            rows.append(tuple(evaluate(internal_row) for evaluate in evaluators))
    return Result(schema=out_schema, rows=rows)


# ----------------------------------------------------------------------
# Bag comparison (for equivalence tests)
# ----------------------------------------------------------------------


def _normalize(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, 9)
    return value


def rows_equal_bag(
    left: Sequence[Tuple[Any, ...]],
    right: Sequence[Tuple[Any, ...]],
    rel_tol: float = 1e-9,
) -> bool:
    """Multiset equality of row collections, tolerant to float noise and
    row order (SQL results are bags)."""
    if len(left) != len(right):
        return False
    key = lambda row: tuple(  # noqa: E731 - local sort key
        (str(type(v)), _normalize(v)) for v in row
    )
    left_sorted = sorted(left, key=key)
    right_sorted = sorted(right, key=key)
    for row_a, row_b in zip(left_sorted, right_sorted):
        if len(row_a) != len(row_b):
            return False
        for a, b in zip(row_a, row_b):
            if a is None or b is None:
                if a is not b:
                    return False
            elif isinstance(a, float) or isinstance(b, float):
                if not math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True
