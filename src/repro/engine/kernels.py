"""Compiled columnar kernels: expressions → fused per-batch loops.

The row engine binds each :class:`~repro.algebra.expressions.Expression`
to a ``row -> value`` closure and pays one Python call per row per
expression. This module pushes that idiom up to whole operators: an
operator's predicate chain, projection list, or aggregate update loop is
translated to Python *source* for a single function over columns, then
``compile``/``exec``-ed once per operator. Per-row work becomes one
list-comprehension iteration — no closure calls, no tree walks.

Three program kinds:

- :class:`SelectionProgram` — a predicate conjunction compiled to a
  ``columns -> selection vector`` kernel (``None`` means "all rows
  pass", so the common no-match-needed case skips every gather).
- :class:`ComputeProgram` — a projection list compiled to a
  ``columns -> output columns`` kernel; plain column references become
  zero-copy column picks and never enter the generated loop.
- :func:`groupby_kernels` — a group-by's whole accumulate loop (key
  lookup + every aggregate's update) fused into one generated ``for``
  over zipped key/argument columns, plus a finalize kernel that turns
  the group table into output columns.

Semantics are the row engine's, reproduced exactly:

- Kleene 3VL compiles to truthiness tests via an emit-true/emit-false
  duality: ``is TRUE`` of ``AND`` is the ``and`` of is-trues, ``is
  FALSE`` of ``AND`` is the ``or`` of is-falses, and ``NOT`` swaps the
  two. Filters keep a row only when the predicate is TRUE, so UNKNOWN
  needs no runtime representation.
- Comparison/arithmetic operands are evaluated eagerly (walrus
  assignments joined with ``|``) before the NULL check, matching the
  closures, which call both operand evaluators before the guard. The
  one knowing divergence: a generated ``and``/``or`` chain
  short-circuits past an UNKNOWN conjunct where the closure loop would
  keep evaluating — observable only through exceptions raised by later
  conjuncts, never through values.
- Aggregate updates replicate each accumulator's state layout and
  float operation order (e.g. SUM's integer-zero start + seen flag),
  so results are bit-identical, not merely ``==``.

Generated source never embeds literal values — constants and scalar
functions enter as keyword-argument defaults (``_k0=_k0``) bound at
``def`` time. Source text therefore depends only on expression *shape*,
and a module-level source→code-object cache makes repeated shapes
(every scan filter ``col = const``, every SUM+COUNT group-by) compile
exactly once per process. Each instantiation still counts toward
``context.kernels_compiled`` — that counter tracks kernels built, which
is what ``repro --stats`` reports.
"""

from __future__ import annotations

import threading

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..algebra.aggregates import (
    AvgFunction,
    CountFunction,
    MaxFunction,
    MinFunction,
    StddevFunction,
    SumFunction,
)
from ..algebra.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Expression,
    FuncCall,
    IfNull,
    IsNull,
    Literal,
    Not,
    Or,
)
from ..catalog.schema import RowSchema
from .batch import take

_SOURCE_CACHE: Dict[str, Any] = {}
# Serving runs kernel compilation from concurrent reader threads; the
# lock makes check-compile-publish atomic so two threads never race a
# dict resize mid-read. Compiled code objects are immutable, so cache
# hits stay contention-free correctness-wise — the lock also covers
# them only because compile() is rare and the critical section is tiny.
_SOURCE_CACHE_LOCK = threading.Lock()

_COMPARE_SOURCE = {
    "=": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


class KernelUnsupported(Exception):
    """Raised while emitting when an expression has no source form;
    the caller falls back to the bound-closure row path."""


def _instantiate(source: str, namespace: Dict[str, Any], context) -> Callable:
    """Compile (cached by source) and exec a kernel definition."""
    with _SOURCE_CACHE_LOCK:
        code = _SOURCE_CACHE.get(source)
        if code is None:
            code = compile(source, "<repro-kernel>", "exec")
            _SOURCE_CACHE[source] = code
    scope = dict(namespace)
    exec(code, scope)
    if context is not None:
        context.kernels_compiled += 1
    return scope["_kernel"]


def _defaults(namespace: Dict[str, Any]) -> str:
    """Render namespace entries as keyword defaults for a def line."""
    return "".join(f", {name}={name}" for name in namespace)


class _Emitter:
    """Translates expressions to per-row source fragments.

    Column references become loop variables ``_v{position}``; constants
    and scalar functions get namespace names so source text is
    shape-only (see module docstring). ``used`` accumulates every
    column position any emitted fragment reads.
    """

    def __init__(self, schema: RowSchema):
        self.schema = schema
        self.namespace: Dict[str, Any] = {}
        self.used: set = set()
        self.current_used: set = set()
        self._counter = 0

    def begin(self) -> None:
        """Start tracking a new output's column usage."""
        self.current_used = set()

    def fresh(self, prefix: str) -> str:
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        return name

    def const(self, value: Any) -> str:
        name = self.fresh("k")
        self.namespace[name] = value
        return name

    def column(self, expression: ColumnRef) -> str:
        position = self.schema.index_of(expression.alias, expression.name)
        self.used.add(position)
        self.current_used.add(position)
        return f"_v{position}"

    # -- value emission: source for the (possibly NULL) SQL value -------

    def value(self, e: Expression) -> str:
        if isinstance(e, ColumnRef):
            return self.column(e)
        if isinstance(e, Literal):
            return self.const(e.value)
        if isinstance(e, Comparison):
            return self._binary_value(e.left, e.right, _COMPARE_SOURCE[e.op])
        if isinstance(e, Arith):
            return self._binary_value(e.left, e.right, e.op)
        if isinstance(e, IsNull):
            test = "is not None" if e.negate else "is None"
            return f"(({self.value(e.item)}) {test})"
        if isinstance(e, Not):
            inner = self.value(e.item)
            temp = self.fresh("t")
            return f"(None if ({temp} := {inner}) is None else (not {temp}))"
        if isinstance(e, FuncCall):
            return self._func_value(e)
        if isinstance(e, IfNull):
            temp = self.fresh("t")
            return (
                f"(({temp}) if (({temp} := {self.value(e.item)}) "
                f"is not None) else ({self.value(e.default)}))"
            )
        raise KernelUnsupported(type(e).__name__)

    def _binary_value(self, left: Expression, right: Expression, op: str) -> str:
        if isinstance(left, Literal) and left.value is None:
            self.value(right)  # keep column usage identical
            return "None"
        if isinstance(right, Literal) and right.value is None:
            self.value(left)
            return "None"
        if _simple(left) and _simple(right):
            a, b = self.value(left), self.value(right)
            guards = [f"{s} is None" for s in (a, b) if not s.startswith("_k")]
            body = f"({a} {op} {b})"
            if not guards:
                return body
            return f"(None if {' or '.join(guards)} else {body})"
        # complex operands: evaluate both eagerly (the closures do),
        # then NULL-check — `|` avoids short-circuiting the second eval
        a, b = self.value(left), self.value(right)
        ta, tb = self.fresh("t"), self.fresh("t")
        return (
            f"(None if ((({ta} := {a}) is None) | (({tb} := {b}) is None))"
            f" else ({ta} {op} {tb}))"
        )

    def _func_value(self, e: FuncCall) -> str:
        func = self.const(e.func)
        if not e.args:
            return f"{func}()"
        if all(_simple(arg) for arg in e.args):
            vals = [self.value(arg) for arg in e.args]
            guards = [f"{v} is None" for v in vals if not v.startswith("_k")]
            call = f"{func}({', '.join(vals)})"
            if not guards:
                return call
            return f"(None if {' or '.join(guards)} else {call})"
        temps = []
        checks = []
        for arg in e.args:
            temp = self.fresh("t")
            temps.append(temp)
            checks.append(f"(({temp} := {self.value(arg)}) is None)")
        call = f"{func}({', '.join(temps)})"
        return f"(None if ({' | '.join(checks)}) else {call})"

    # -- truth emission: source for "predicate is TRUE" ------------------

    def truth(self, e: Expression) -> str:
        if isinstance(e, Comparison):
            return self._compare_bool(e, negate=False)
        if isinstance(e, And):
            return "(" + " and ".join(self.truth(i) for i in e.items) + ")"
        if isinstance(e, Or):
            return "(" + " or ".join(self.truth(i) for i in e.items) + ")"
        if isinstance(e, Not):
            return self.untruth(e.item)
        if isinstance(e, Literal):
            return "True" if e.value else "False"
        # IsNull/ColumnRef/Arith/...: the value itself is the condition
        # (None and 0 are falsy — exactly SQL's not-TRUE)
        return self.value(e)

    def untruth(self, e: Expression) -> str:
        """Source for "predicate is FALSE" (Kleene dual of truth)."""
        if isinstance(e, Comparison):
            return self._compare_bool(e, negate=True)
        if isinstance(e, And):
            return "(" + " or ".join(self.untruth(i) for i in e.items) + ")"
        if isinstance(e, Or):
            return "(" + " and ".join(self.untruth(i) for i in e.items) + ")"
        if isinstance(e, Not):
            return self.truth(e.item)
        if isinstance(e, IsNull):
            return self.value(IsNull(e.item, not e.negate))
        if isinstance(e, Literal):
            if e.value is None:
                return "False"
            return "False" if e.value else "True"
        if isinstance(e, ColumnRef):
            name = self.column(e)
            return f"({name} is not None and not {name})"
        temp = self.fresh("t")
        return f"(({temp} := {self.value(e)}) is not None and not {temp})"

    def _compare_bool(self, e: Comparison, negate: bool) -> str:
        op = _COMPARE_SOURCE[e.op]
        prefix = "not " if negate else ""
        if (isinstance(e.left, Literal) and e.left.value is None) or (
            isinstance(e.right, Literal) and e.right.value is None
        ):
            self.value(e.left)
            self.value(e.right)
            return "False"  # NULL comparisons are UNKNOWN: never TRUE/FALSE
        if _simple(e.left) and _simple(e.right):
            a, b = self.value(e.left), self.value(e.right)
            guards = [
                f"{s} is not None" for s in (a, b) if not s.startswith("_k")
            ]
            return "(" + " and ".join(guards + [f"{prefix}({a} {op} {b})"]) + ")"
        a, b = self.value(e.left), self.value(e.right)
        ta, tb = self.fresh("t"), self.fresh("t")
        return (
            f"(((({ta} := {a}) is not None) & (({tb} := {b}) is not None))"
            f" and {prefix}({ta} {op} {tb}))"
        )


def _simple(e: Expression) -> bool:
    """Side-effect-free, non-raising leaf — safe to short-circuit."""
    return isinstance(e, (ColumnRef, Literal))


def _column_bindings(positions: Sequence[int]) -> str:
    return "".join(f"    _c{p} = _cols[{p}]\n" for p in positions)


def _loop_head(positions: Sequence[int]) -> Tuple[str, str]:
    """(loop variables, iterable) of a listcomp over the positions."""
    if len(positions) == 1:
        p = positions[0]
        return f"_v{p}", f"_c{p}"
    names = ", ".join(f"_v{p}" for p in positions)
    cols = ", ".join(f"_c{p}" for p in positions)
    return f"({names})", f"zip({cols})"


class SelectionProgram:
    """A predicate conjunction compiled to ``columns -> selection``.

    ``run`` returns a list of passing row indices, or ``None`` when
    every row passes — the hot all-pass case costs one length check and
    no gathers downstream. ``used`` is the set of column positions the
    program reads (what a caller must materialize when rows are
    virtual, i.e. behind a pending selection vector).
    """

    __slots__ = ("active", "used", "_kernel")

    def __init__(
        self,
        predicates: Sequence[Expression],
        schema: RowSchema,
        context=None,
    ):
        self.active = bool(predicates)
        self.used: Tuple[int, ...] = ()
        self._kernel: Optional[Callable] = None
        if not predicates:
            return
        emitter = _Emitter(schema)
        try:
            condition = " and ".join(emitter.truth(p) for p in predicates)
        except KernelUnsupported:
            self._build_fallback(predicates, schema)
            return
        positions = sorted(emitter.used)
        self.used = tuple(positions)
        if not positions:
            # constant predicate: decide once per batch, not per row
            source = (
                f"def _kernel(_cols, _n{_defaults(emitter.namespace)}):\n"
                f"    if not _n:\n"
                f"        return []\n"
                f"    return None if ({condition}) else []\n"
            )
        else:
            variables, iterable = _loop_head(positions)
            source = (
                f"def _kernel(_cols, _n{_defaults(emitter.namespace)}):\n"
                f"{_column_bindings(positions)}"
                f"    return [_i for _i, {variables} in "
                f"enumerate({iterable}) if {condition}]\n"
            )
        self._kernel = _instantiate(source, emitter.namespace, context)

    def _build_fallback(self, predicates, schema: RowSchema) -> None:
        checks = [predicate.bind(schema) for predicate in predicates]
        self.used = tuple(range(len(schema)))

        def kernel(columns, n):
            rows = zip(*columns) if columns else iter([()] * n)
            if len(checks) == 1:
                check = checks[0]
                return [i for i, row in enumerate(rows) if check(row)]
            return [
                i
                for i, row in enumerate(rows)
                if all(check(row) for check in checks)
            ]

        self._kernel = kernel

    def run(self, columns, n: int) -> Optional[List[int]]:
        if self._kernel is None:
            return None
        sel = self._kernel(columns, n)
        if sel is None or len(sel) == n:
            return None
        return sel


class ComputeProgram:
    """A projection list compiled to ``columns -> output columns``.

    Plain column references are zero-copy picks; every other output is
    computed by one generated listcomp over exactly the columns it
    reads. Expressions the emitter cannot translate (Kleene logic as a
    *value*) fall back to their bound closure over transposed rows —
    per output, so one exotic column never slows the rest.
    """

    __slots__ = ("width", "used", "_picks", "_kernel", "_kernel_outputs", "_fallbacks")

    def __init__(
        self,
        expressions: Sequence[Expression],
        schema: RowSchema,
        context=None,
    ):
        self.width = len(expressions)
        emitter = _Emitter(schema)
        self._picks: List[Tuple[int, int]] = []
        self._fallbacks: List[Tuple[int, Callable]] = []
        computed: List[Tuple[int, str, List[int]]] = []
        for index, expression in enumerate(expressions):
            if isinstance(expression, ColumnRef):
                position = schema.index_of(expression.alias, expression.name)
                self._picks.append((index, position))
                emitter.used.add(position)
                continue
            emitter.begin()
            try:
                fragment = emitter.value(expression)
            except KernelUnsupported:
                self._fallbacks.append((index, expression.bind(schema)))
                continue
            computed.append(
                (index, fragment, sorted(emitter.current_used))
            )
        self._kernel = None
        self._kernel_outputs: List[int] = []
        if computed:
            lines = [
                f"def _kernel(_cols, _n{_defaults(emitter.namespace)}):"
            ]
            bound = sorted({p for _, _, ps in computed for p in ps})
            lines.append(_column_bindings(bound).rstrip("\n"))
            if not bound:
                lines.pop()
            returns = []
            for index, fragment, positions in computed:
                name = f"_o{index}"
                self._kernel_outputs.append(index)
                returns.append(name)
                if positions:
                    variables, iterable = _loop_head(positions)
                    lines.append(
                        f"    {name} = [{fragment} for {variables} in {iterable}]"
                    )
                else:
                    # constant column; guard n=0 so it cannot evaluate
                    # when the closure path would see no rows at all
                    lines.append(
                        f"    {name} = ([{fragment}] * _n) if _n else []"
                    )
            lines.append(f"    return ({', '.join(returns)},)")
            source = "\n".join(lines) + "\n"
            self._kernel = _instantiate(source, emitter.namespace, context)
        if self._fallbacks:
            self.used = tuple(range(len(schema)))
        else:
            self.used = tuple(sorted(emitter.used))

    def run(self, columns, n: int) -> List[Any]:
        out: List[Any] = [None] * self.width
        for index, position in self._picks:
            out[index] = columns[position]
        if self._kernel is not None:
            for index, column in zip(
                self._kernel_outputs, self._kernel(columns, n)
            ):
                out[index] = column
        if self._fallbacks:
            rows = list(zip(*columns)) if columns else [()] * n
            for index, evaluate in self._fallbacks:
                out[index] = [evaluate(row) for row in rows]
        return out


# ----------------------------------------------------------------------
# Group-by kernels
# ----------------------------------------------------------------------

_AGG_SLOTS = {
    "count*": 1,
    "count": 1,
    "sum": 2,
    "min": 1,
    "max": 1,
    "avg": 2,
    "stddev": 3,
    "other": 1,
}


def aggregate_kind(call) -> str:
    """Specialization key of one aggregate call; ``"other"`` keeps the
    generic accumulator object inside the fused loop (exact-type checks
    so a re-registered or subclassed function never mis-specializes)."""
    function = call.function()
    t = type(function)
    if t is CountFunction:
        return "count*" if call.arg is None else "count"
    if t is SumFunction:
        return "sum"
    if t is MinFunction:
        return "min"
    if t is MaxFunction:
        return "max"
    if t is AvgFunction:
        return "avg"
    if t is StddevFunction:
        return "stddev"
    return "other"


def _slot_inits(kind: str, maker: str) -> List[str]:
    # each replicates the matching accumulator's initial state exactly
    # (SUM starts at integer 0 with a seen flag, AVG at float 0.0, ...)
    if kind in ("count*", "count"):
        return ["0"]
    if kind == "sum":
        return ["0", "False"]
    if kind in ("min", "max"):
        return ["None"]
    if kind == "avg":
        return ["0.0", "0"]
    if kind == "stddev":
        return ["0", "0.0", "0.0"]
    return [f"{maker}()"]


def _update_lines(kind: str, j: int, offset: int, has_arg: bool) -> List[str]:
    value = f"_av{j}"
    if kind == "count*":
        return [f"_st[{offset}] += 1"]
    if kind == "count":
        return [f"if {value} is not None:", f"    _st[{offset}] += 1"]
    if kind == "sum":
        return [
            f"if {value} is not None:",
            f"    _st[{offset}] += {value}",
            f"    _st[{offset + 1}] = True",
        ]
    if kind in ("min", "max"):
        op = "<" if kind == "min" else ">"
        return [
            f"if {value} is not None:",
            f"    _b{j} = _st[{offset}]",
            f"    if _b{j} is None or {value} {op} _b{j}:",
            f"        _st[{offset}] = {value}",
        ]
    if kind == "avg":
        return [
            f"if {value} is not None:",
            f"    _st[{offset}] += {value}",
            f"    _st[{offset + 1}] += 1",
        ]
    if kind == "stddev":
        return [
            f"if {value} is not None:",
            f"    _st[{offset}] += 1",
            f"    _st[{offset + 1}] += {value}",
            f"    _st[{offset + 2}] += {value} * {value}",
        ]
    fed = value if has_arg else "True"
    return [f"_st[{offset}].add({fed})"]


def _finalize_lines(kind: str, j: int, offset: int, append: str) -> List[str]:
    if kind in ("count*", "count"):
        return [f"{append}(_st[{offset}])"]
    if kind == "sum":
        return [f"{append}(_st[{offset}] if _st[{offset + 1}] else None)"]
    if kind in ("min", "max"):
        return [f"{append}(_st[{offset}])"]
    if kind == "avg":
        return [
            f"_n{j} = _st[{offset + 1}]",
            f"{append}((_st[{offset}] / _n{j}) if _n{j} else None)",
        ]
    if kind == "stddev":
        return [
            f"_n{j} = _st[{offset}]",
            f"if _n{j}:",
            f"    _m{j} = _st[{offset + 1}] / _n{j}",
            f"    _d{j} = _st[{offset + 2}] / _n{j} - _m{j} * _m{j}",
            f"    {append}(_sqrt(_d{j} if _d{j} > 0.0 else 0.0))",
            "else:",
            f"    {append}(None)",
        ]
    return [f"{append}(_st[{offset}].value())"]


def groupby_kernels(
    key_count: int,
    aggregates,
    context=None,
) -> Tuple[Callable, Callable]:
    """Compile the fused (update, finalize) kernel pair of a hash
    group-by.

    ``update(key_columns, arg_columns, table)`` accumulates one batch
    into ``table`` (insertion-ordered dict: scalar or tuple key → state
    list, specialized slots per aggregate kind with ``Accumulator``
    objects as the in-loop fallback).

    ``finalize(items)`` turns ``table.items()`` into the internal-schema
    output columns (key columns first, then one column per aggregate).
    """
    import math

    if key_count < 1:
        raise ValueError("group-by kernels require at least one key")
    specs = []
    offset = 0
    namespace: Dict[str, Any] = {}
    for j, (_, call) in enumerate(aggregates):
        kind = aggregate_kind(call)
        maker = f"_mk{j}"
        if kind == "other":
            namespace[maker] = call.function().make_accumulator
        specs.append((j, kind, offset, call.arg is not None, maker))
        offset += _AGG_SLOTS[kind]

    # ---- update kernel ----
    key_vars = [f"_kv{i}" for i in range(key_count)]
    loop_vars = list(key_vars)
    zip_cols = [f"_kc{i}" for i in range(key_count)]
    bindings = [
        f"    _kc{i} = _keys[{i}]" for i in range(key_count)
    ]
    for j, kind, _, has_arg, _ in specs:
        if kind != "count*" and has_arg:
            bindings.append(f"    _ac{j} = _args[{j}]")
            loop_vars.append(f"_av{j}")
            zip_cols.append(f"_ac{j}")
    inits = ", ".join(
        init
        for _, kind, _, _, maker in specs
        for init in _slot_inits(kind, maker)
    )
    if len(loop_vars) == 1:
        head = f"    for {loop_vars[0]} in {zip_cols[0]}:"
    else:
        head = (
            f"    for {', '.join(loop_vars)} in "
            f"zip({', '.join(zip_cols)}):"
        )
    key_expr = (
        key_vars[0] if key_count == 1 else f"({', '.join(key_vars)})"
    )
    lines = [f"def _kernel(_keys, _args, _table{_defaults(namespace)}):"]
    lines.append("    _get = _table.get")
    lines.extend(bindings)
    lines.append(head)
    if key_count == 1:
        lines.append(f"        _st = _get({key_expr})")
        lines.append("        if _st is None:")
        lines.append(f"            _st = _table[{key_expr}] = [{inits}]")
    else:
        lines.append(f"        _kt = {key_expr}")
        lines.append("        _st = _get(_kt)")
        lines.append("        if _st is None:")
        lines.append(f"            _st = _table[_kt] = [{inits}]")
    for j, kind, slot, has_arg, _ in specs:
        for line in _update_lines(kind, j, slot, has_arg):
            lines.append("        " + line)
    update_source = "\n".join(lines) + "\n"
    update = _instantiate(update_source, namespace, context)

    # ---- finalize kernel ----
    out_count = key_count + len(specs)
    fin_namespace: Dict[str, Any] = {"_sqrt": math.sqrt}
    lines = [f"def _kernel(_items{_defaults(fin_namespace)}):"]
    for k in range(out_count):
        lines.append(f"    _o{k} = []")
        lines.append(f"    _p{k} = _o{k}.append")
    lines.append("    for _key, _st in _items:")
    if key_count == 1:
        lines.append("        _p0(_key)")
    else:
        for i in range(key_count):
            lines.append(f"        _p{i}(_key[{i}])")
    for j, kind, slot, _, _ in specs:
        append = f"_p{key_count + j}"
        for line in _finalize_lines(kind, j, slot, append):
            lines.append("        " + line)
    outs = ", ".join(f"_o{k}" for k in range(out_count))
    lines.append(f"    return ({outs},)")
    finalize_source = "\n".join(lines) + "\n"
    finalize = _instantiate(finalize_source, fin_namespace, context)
    return update, finalize


def gather_virtual(
    columns, used: Sequence[int], sel: Sequence[int], width: int
) -> List[Any]:
    """Materialize only the *used* positions of *columns* through a
    pending selection vector, leaving holes elsewhere — what fused
    pipelines hand a program when rows are still virtual."""
    virtual: List[Any] = [None] * width
    for position in used:
        virtual[position] = take(columns[position], sel)
    return virtual
