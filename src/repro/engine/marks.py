"""Mark-join execution shared by all three engines.

A :class:`~repro.algebra.plan.SubqueryMarkNode` keeps or drops each
outer (child) row by consulting the materialized inner subplan under
the row's correlation values. The semantics live in one place —
:func:`mark_filter` — so the legacy interpreter, the row-batch engine
and the columnar engine cannot drift apart; each engine only differs in
how it feeds rows through the returned predicate.

The inner side is deliberately re-scanned per outer row (O(outer x
inner)): a mark join is the *unflattened* fallback, and its naivety is
exactly what the decorrelation benchmark measures flattening against.
Do not add per-key bucketing here.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Tuple

from ..algebra.expressions import _COMPARISON_OPS, Comparison
from ..algebra.plan import SubqueryMarkNode
from .batch import ColumnBatch, RowBatch
from .context import ExecutionContext
from .metrics import OperatorMetrics


def mark_filter(
    plan: SubqueryMarkNode, inner_rows: List[Tuple[Any, ...]]
) -> Callable[[Tuple[Any, ...]], bool]:
    """Compile the node's keep-or-drop decision over *inner_rows*.

    Mirrors the reference evaluator's ``_apply_mark`` exactly:
    correlation equalities must evaluate to TRUE (an UNKNOWN match is no
    match), membership uses SQL three-valued logic (NOT IN drops on any
    TRUE *or* UNKNOWN verdict), and a scalar aggregate over an empty
    correlation group compares against the accumulator's empty value
    (COUNT = 0, others NULL — so the comparison is UNKNOWN and drops).
    """
    child_schema = plan.child.schema
    inner_schema = plan.inner.schema
    combined = child_schema.concat(inner_schema)
    correlation_checks = [
        Comparison("=", inner_ref, outer_expr).bind(combined)
        for inner_ref, outer_expr in plan.correlations
    ]
    outer_eval = (
        plan.outer.bind(child_schema) if plan.outer is not None else None
    )
    value_eval = (
        plan.value.bind(inner_schema) if plan.value is not None else None
    )
    # IN's membership test is an implicit equality (op is None).
    compare = _COMPARISON_OPS[plan.op or "="]
    if plan.kind == "scalar":
        assert plan.aggregate is not None
        function = plan.aggregate.function()
        arg_eval = (
            plan.aggregate.arg.bind(inner_schema)
            if plan.aggregate.arg is not None
            else None
        )

    if correlation_checks:

        def candidates(row: Tuple[Any, ...]) -> List[Tuple[Any, ...]]:
            return [
                inner_row
                for inner_row in inner_rows
                if all(
                    check(row + inner_row) is True
                    for check in correlation_checks
                )
            ]

    else:

        def candidates(row: Tuple[Any, ...]) -> List[Tuple[Any, ...]]:
            return inner_rows

    def keep(row: Tuple[Any, ...]) -> bool:
        matches = candidates(row)
        if plan.kind == "exists":
            return bool(matches) is not plan.negate
        if plan.kind == "in":
            outer_value = outer_eval(row)
            verdicts = [
                compare(outer_value, value_eval(inner_row))
                for inner_row in matches
            ]
            if plan.negate:
                return not any(v is True or v is None for v in verdicts)
            return any(v is True for v in verdicts)
        accumulator = function.make_accumulator()
        for inner_row in matches:
            accumulator.add(
                arg_eval(inner_row) if arg_eval is not None else True
            )
        return compare(outer_eval(row), accumulator.value()) is True

    return keep


def collect_inner_rows(batches: Iterator) -> List[Tuple[Any, ...]]:
    """Materialize the inner pipeline once, row- or column-major."""
    rows: List[Tuple[Any, ...]] = []
    for batch in batches:
        if isinstance(batch, ColumnBatch):
            rows.extend(batch.to_rows())
        else:
            rows.extend(batch)
    return rows


def mark_batches(
    plan: SubqueryMarkNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Row-batch mark join: inner is a pipeline breaker, child streams."""
    child_batches = run(plan.child)
    inner_batches = run(plan.inner)

    def generate() -> Iterator[RowBatch]:
        keep = mark_filter(plan, collect_inner_rows(inner_batches))
        for batch in child_batches:
            metrics.rows_in += len(batch)
            out = [row for row in batch if keep(row)]
            if out:
                yield out

    return generate()


def mark_columns(
    plan: SubqueryMarkNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[ColumnBatch]:
    """Columnar mark join: the decision is inherently per-row, so each
    child batch transposes once, the keep flags become a selection
    vector, and surviving rows gather column-wise (a full-keep batch
    passes through with no copy)."""
    child_batches = run(plan.child)
    inner_batches = run(plan.inner)

    def generate() -> Iterator[ColumnBatch]:
        keep = mark_filter(plan, collect_inner_rows(inner_batches))
        for batch in child_batches:
            metrics.rows_in += batch.length
            sel = [
                i for i, row in enumerate(batch.to_rows()) if keep(row)
            ]
            if not sel:
                continue
            if len(sel) == batch.length:
                yield batch
            else:
                metrics.cells += len(sel) * len(batch.columns)
                yield batch.take(sel)

    return generate()
