"""Streaming execution of the four join methods.

IO discipline (mirrored by the cost model in ``repro.cost.model``):

- **Block NLJ**: the outer is streamed in blocks of ``memory_pages - 2``
  pages. An inner that fits in the remaining buffers is read once;
  otherwise a base-table inner is rescanned per block and any other
  inner is materialized (one write) and re-read per block.
- **Index NLJ**: per outer row, a probe into the inner table's index;
  the index itself charges traversal/leaf/data-page IO.
- **Sort-merge**: each input is sorted unless already ordered on the
  join keys; sorting charges :func:`external_sort_extra_io`.
- **Hash**: build on the right input; a build side larger than memory
  charges a Grace partitioning pass over both inputs.

Pipeline shape: the build side of a hash join, both sort-merge inputs,
and a block-NLJ inner are pipeline breakers (fully collected before
output flows); the probe/outer side always streams. Join output runs
through a fused residual-filter→project per-batch loop, and spill
charges whose formulas need the streamed side's total page count are
applied once that side is exhausted — page totals are identical to the
legacy executor's, only the charge's position in the run moves.
"""

from __future__ import annotations

from itertools import chain, count
from operator import mul
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..algebra.plan import JoinNode, ScanNode
from ..catalog.schema import RowSchema
from ..catalog.schema import table_row_schema
from ..errors import ExecutionError
from ..storage.page import pages_for
from ..storage.snapshot import TableSnapshot
from .batch import (
    BatchBuilder,
    ColumnBatch,
    RowBatch,
    concat_columns,
    filtered,
    keyer,
    projector,
    take,
    tuple_keyer,
)
from .context import ExecutionContext
from .kernels import SelectionProgram
from .metrics import OperatorMetrics, charge_spill
from .spill import external_sort_extra_io, hash_spill_extra_io, nlj_blocks


def _probe_lookup(context: ExecutionContext, inner: ScanNode, index):
    """The index-probe callable for an index NLJ inner: the snapshot's
    captured index when this execution pinned one, else the live index.
    Signature matches ``OrderedIndex.lookup_rows``."""
    storage = context.storage_for(inner.table_name)
    if isinstance(storage, TableSnapshot):
        snap_index = storage.index(index.name)
        if snap_index is None:
            raise ExecutionError(
                f"index {index.name!r} not found on {inner.table_name!r}"
            )

        def lookup(io, key, include_rid=False):
            return storage.index_lookup_rows(
                io, snap_index, key, include_rid=include_rid
            )

        return lookup
    return index.lookup_rows


def join_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Build the join pipeline: method core fused with the join's
    residual filter and projection in one per-batch loop."""
    if plan.kind != "inner":
        return _kind_join_batches(plan, context, metrics, run)
    combined = plan.left.schema.concat(plan.right.schema)
    residual_checks = [
        predicate.bind(combined) for predicate in plan.residuals
    ]
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]
    project = projector(positions, len(combined))

    if plan.method == "inlj":
        matched = _index_nlj_batches(plan, context, metrics, run)
    elif plan.method == "hj":
        matched = _hash_join_batches(plan, context, metrics, run)
    elif plan.method == "smj":
        matched = _sort_merge_join_batches(plan, context, metrics, run)
    else:
        matched = _block_nlj_batches(plan, context, metrics, run)

    def generate() -> Iterator[RowBatch]:
        for batch in matched:
            metrics.rows_in += len(batch)
            batch = filtered(batch, residual_checks)
            if project is not None:
                batch = [project(row) for row in batch]
            if batch:
                yield batch

    return generate()


def _key_positions(
    schema: RowSchema, keys: List[Tuple[Optional[str], str]]
) -> List[int]:
    return [schema.index_of(alias, name) for alias, name in keys]


def _null_key(key: Any) -> bool:
    """True when a join key (scalar or tuple) contains a SQL NULL.

    NULL = NULL is unknown, so a NULL-keyed row can never satisfy an
    equi-join; every join method drops such rows before matching (and
    before sorting — NULL has no place in a total order)."""
    if type(key) is tuple:
        return None in key
    return key is None


def _collect(batches: Iterator[RowBatch]) -> List[Tuple[Any, ...]]:
    rows: List[Tuple[Any, ...]] = []
    for batch in batches:
        rows.extend(batch)
    return rows


def _hash_join_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Hash join: build side right (pipeline breaker), probe streams."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    left_key = keyer(
        _key_positions(plan.left.schema, [pair[0] for pair in plan.equi_keys])
    )
    right_key = keyer(
        _key_positions(plan.right.schema, [pair[1] for pair in plan.equi_keys])
    )
    left_width = plan.left.schema.width
    right_width = plan.right.schema.width

    def generate() -> Iterator[RowBatch]:
        build_rows = _collect(right_batches)
        buckets: dict = {}
        setdefault = buckets.setdefault
        for row in build_rows:
            setdefault(right_key(row), []).append(row)

        probe_count = 0
        lookup = buckets.get
        for batch in left_batches:
            probe_count += len(batch)
            out: RowBatch = []
            append = out.append
            for left_row in batch:
                key = left_key(left_row)
                if _null_key(key):
                    continue
                matches = lookup(key)
                if matches is not None:
                    for right_row in matches:
                        append(left_row + right_row)
            if out:
                yield out

        # Grace partitioning charge; needs the probe side's total pages,
        # so it lands after the probe is exhausted (same totals as the
        # legacy up-front charge).
        charge_spill(
            context.io,
            metrics,
            hash_spill_extra_io(
                pages_for(len(build_rows), right_width),
                pages_for(probe_count, left_width),
                context.params.memory_pages,
            ),
        )

    return generate()


def _block_nlj_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Block nested-loop join; equi keys (if any) checked as predicates.

    The inner key list is computed once up front instead of re-deriving
    a key tuple per (outer, inner) pair."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    memory = context.params.memory_pages
    equi = bool(plan.equi_keys)
    left_key = (
        keyer(
            _key_positions(
                plan.left.schema, [pair[0] for pair in plan.equi_keys]
            )
        )
        if equi
        else None
    )
    right_key = (
        keyer(
            _key_positions(
                plan.right.schema, [pair[1] for pair in plan.equi_keys]
            )
        )
        if equi
        else None
    )
    left_width = plan.left.schema.width

    def generate() -> Iterator[RowBatch]:
        inner_rows = _collect(right_batches)
        inner_keyed = (
            [(right_key(row), row) for row in inner_rows] if equi else None
        )

        outer_count = 0
        for batch in left_batches:
            outer_count += len(batch)
            out: RowBatch = []
            append = out.append
            if inner_keyed is not None:
                for left_row in batch:
                    key = left_key(left_row)
                    if _null_key(key):
                        continue
                    for inner_key, inner_row in inner_keyed:
                        if key == inner_key:
                            append(left_row + inner_row)
            else:
                for left_row in batch:
                    out.extend(
                        left_row + inner_row for inner_row in inner_rows
                    )
            if out:
                yield out

        # Charge the inner side's rescans, block count taken from the
        # outer's total pages (exactly the legacy charges: the first
        # inner pass was charged when the right child executed, or is
        # free while the inner still fits in memory).
        blocks = nlj_blocks(pages_for(outer_count, left_width), memory)
        inner_is_scan = (
            isinstance(plan.right, ScanNode) and plan.right.index_name is None
        )
        if inner_is_scan:
            inner_pages = context.storage_for(
                plan.right.table_name
            ).num_pages
            if inner_pages > max(1, memory - 2) and blocks > 1:
                rescans = (blocks - 1) * inner_pages
                context.io.read_pages(rescans)
                metrics.spill(rescans, 0)
        else:
            inner_pages = pages_for(
                len(inner_rows), plan.right.schema.width
            )
            if inner_pages > max(1, memory - 2):
                context.io.write_pages(inner_pages)  # materialize the inner
                rereads = blocks * inner_pages
                context.io.read_pages(rereads)
                metrics.spill(rereads, inner_pages)

    return generate()


def _index_nlj_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Index nested-loop join: probe the inner table's index per outer
    row, applying the inner scan's filters to fetched rows."""
    inner = plan.right
    if not isinstance(inner, ScanNode):
        raise ExecutionError("index NLJ requires a base-table inner")
    info = context.catalog.info(inner.table_name)
    index = info.indexes.get(plan.index_name or "")
    if index is None:
        raise ExecutionError(
            f"index {plan.index_name!r} not found on {inner.table_name!r}"
        )

    # The index must be on the inner join columns, in equi-key order.
    inner_join_columns = [name for (_, (_, name)) in plan.equi_keys]
    if list(index.column_names[: len(inner_join_columns)]) != inner_join_columns:
        raise ExecutionError(
            f"index {index.name!r} does not cover join columns "
            f"{inner_join_columns}"
        )

    left_batches = run(plan.left)
    table = info.table
    inner_full = table_row_schema(inner.alias, table.columns, include_rid=True)
    checks = [predicate.bind(inner_full) for predicate in inner.filters]
    inner_positions = [
        inner_full.index_of(field.alias, field.name) for field in inner.schema
    ]
    project_inner = projector(inner_positions, len(inner_full))
    probe_key = tuple_keyer(
        _key_positions(plan.left.schema, [pair[0] for pair in plan.equi_keys])
    )

    # The probe side never goes through the ordinary scan pipeline, so
    # meter it here — and record its actuals explicitly (the legacy
    # executor left ``actual_rows`` stale under index NLJ).
    inner_metrics = OperatorMetrics(
        label=inner.describe() + " (index probe)", depth=metrics.depth + 1
    )
    if context.metrics is not None:
        context.metrics.register(inner_metrics)
    inner.op_metrics = inner_metrics
    metrics.children.append(inner_metrics)
    lookup = _probe_lookup(context, inner, index)
    io = context.io

    def generate() -> Iterator[RowBatch]:
        matched = 0
        probes = 0
        for batch in left_batches:
            out: RowBatch = []
            append = out.append
            for left_row in batch:
                probes += 1
                probe = probe_key(left_row)
                if None in probe:
                    continue
                for inner_row in lookup(io, probe, include_rid=True):
                    if checks and not all(
                        check(inner_row) for check in checks
                    ):
                        continue
                    matched += 1
                    append(
                        left_row + project_inner(inner_row)
                        if project_inner is not None
                        else left_row + inner_row
                    )
            if out:
                yield out
        inner.actual_rows = matched
        inner_metrics.rows_out = matched
        inner_metrics.rows_in = probes
        inner_metrics.batches = probes  # one probe per outer row

    return generate()


def _sort_merge_join_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Sort-merge join; charges sorts unless an input is pre-ordered.

    Both inputs are pipeline breakers. The collected row lists are
    owned by this operator, so sorting them cannot corrupt a child's
    materialized output (the legacy in-place-sort hazard)."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    memory = context.params.memory_pages
    left_keys = [pair[0] for pair in plan.equi_keys]
    right_keys = [pair[1] for pair in plan.equi_keys]
    left_key = keyer(_key_positions(plan.left.schema, left_keys))
    right_key = keyer(_key_positions(plan.right.schema, right_keys))

    def generate() -> Iterator[RowBatch]:
        left_rows = _collect(left_batches)
        right_rows = _collect(right_batches)

        for rows, child, keys, key_of in (
            (left_rows, plan.left, left_keys, left_key),
            (right_rows, plan.right, right_keys, right_key),
        ):
            order = getattr(child.props, "order", ()) if child.props else ()
            needs_sort = tuple(order[: len(keys)]) != tuple(keys)
            if needs_sort:
                # Charge by the collected (pre-filter) page count so IO
                # totals match the legacy executor's.
                charge_spill(
                    context.io,
                    metrics,
                    external_sort_extra_io(
                        pages_for(len(rows), child.schema.width), memory
                    ),
                )
            rows[:] = [row for row in rows if not _null_key(key_of(row))]
            if needs_sort:
                rows.sort(key=key_of)
            # pre-ordered inputs merge for free

        out = BatchBuilder(context.batch_size)
        i = 0
        j = 0
        left_count, right_count = len(left_rows), len(right_rows)
        while i < left_count and j < right_count:
            lkey = left_key(left_rows[i])
            rkey = right_key(right_rows[j])
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                # collect the equal-key run on each side, emit the product
                i_end = i
                while i_end < left_count and left_key(left_rows[i_end]) == lkey:
                    i_end += 1
                j_end = j
                while (
                    j_end < right_count
                    and right_key(right_rows[j_end]) == rkey
                ):
                    j_end += 1
                run_right = right_rows[j:j_end]
                for left_row in left_rows[i:i_end]:
                    out.extend(
                        [left_row + right_row for right_row in run_right]
                    )
                i, j = i_end, j_end
                if out.full:
                    yield out.drain()
        if out.rows:
            yield out.drain()

    return generate()


def _kind_join_charges(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    build_count: int,
    probe_count: int,
) -> None:
    """Spill/rescan charges for a semi/anti/left join, applied once the
    probe side is exhausted. Formulas are exactly the inner-join cores'
    (hash Grace partitioning, block-NLJ inner rescans), so page totals
    match the legacy executor's up-front charges."""
    memory = context.params.memory_pages
    left_width = plan.left.schema.width
    right_width = plan.right.schema.width
    if plan.method == "hj":
        charge_spill(
            context.io,
            metrics,
            hash_spill_extra_io(
                pages_for(build_count, right_width),
                pages_for(probe_count, left_width),
                memory,
            ),
        )
        return
    blocks = nlj_blocks(pages_for(probe_count, left_width), memory)
    inner_is_scan = (
        isinstance(plan.right, ScanNode) and plan.right.index_name is None
    )
    if inner_is_scan:
        inner_pages = context.storage_for(plan.right.table_name).num_pages
        if inner_pages > max(1, memory - 2) and blocks > 1:
            rescans = (blocks - 1) * inner_pages
            context.io.read_pages(rescans)
            metrics.spill(rescans, 0)
    else:
        inner_pages = pages_for(build_count, right_width)
        if inner_pages > max(1, memory - 2):
            context.io.write_pages(inner_pages)  # materialize the inner
            rereads = blocks * inner_pages
            context.io.read_pages(rereads)
            metrics.spill(rereads, inner_pages)


def _kind_join_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Semi / anti / LEFT OUTER joins over row batches.

    The build (right) side is a pipeline breaker, the probe side
    streams. The ON condition — equi keys plus residuals — decides
    matching; a failing residual means "no match", never a post-join
    filter, which is what makes LEFT padding and anti-join survival
    correct. Emit order is probe order (then build insertion order for
    LEFT matches), identical to the legacy interpreter's."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    combined = plan.left.schema.concat(plan.right.schema)
    residual_checks = [
        predicate.bind(combined) for predicate in plan.residuals
    ]
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]
    equi = bool(plan.equi_keys)
    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )
    padding = (None,) * len(plan.right.schema)

    def generate() -> Iterator[RowBatch]:
        build_rows = _collect(right_batches)

        if plan.null_aware:
            # NOT IN three-valued logic over the single key column.
            keys = [row[right_positions[0]] for row in build_rows]
            inner_nonempty = bool(keys)
            inner_has_null = any(key is None for key in keys)
            key_set = set(key for key in keys if key is not None)
            key_position = left_positions[0]
        buckets = None
        if equi and not plan.null_aware:
            buckets = {}
            setdefault = buckets.setdefault
            for row in build_rows:
                key = tuple(row[p] for p in right_positions)
                if None in key:
                    continue  # NULL keys never equi-match
                setdefault(key, []).append(row)

        def candidates(left_row):
            if buckets is None:
                return build_rows
            key = tuple(left_row[p] for p in left_positions)
            if None in key:
                return ()
            return buckets.get(key, ())

        probe_count = 0
        for batch in left_batches:
            probe_count += len(batch)
            metrics.rows_in += len(batch)
            out: RowBatch = []
            append = out.append
            if plan.null_aware:
                for left_row in batch:
                    key = left_row[key_position]
                    if inner_nonempty and (
                        key is None or inner_has_null or key in key_set
                    ):
                        continue
                    append(tuple(left_row[p] for p in positions))
            elif plan.kind == "left":
                for left_row in batch:
                    matched = False
                    for right_row in candidates(left_row):
                        row = left_row + right_row
                        if all(check(row) for check in residual_checks):
                            append(tuple(row[p] for p in positions))
                            matched = True
                    if not matched:
                        row = left_row + padding
                        append(tuple(row[p] for p in positions))
            else:
                # semi/anti project the left side only
                want = plan.kind == "semi"
                for left_row in batch:
                    hit = any(
                        all(
                            check(left_row + right_row)
                            for check in residual_checks
                        )
                        for right_row in candidates(left_row)
                    )
                    if hit is want:
                        append(tuple(left_row[p] for p in positions))
            if out:
                yield out

        _kind_join_charges(
            plan, context, metrics, len(build_rows), probe_count
        )

    return generate()


# ----------------------------------------------------------------------
# Columnar join path
# ----------------------------------------------------------------------
#
# Every method core produces (left_columns, right_columns, li, ri,
# counts) tuples: full-width column sets for each side plus parallel
# index vectors — one (li[k], ri[k]) pair per matched row. Matches stay
# *virtual* until the shared emitter has applied the residual filter
# (a compiled selection kernel over only the columns it reads) and the
# join's projection; only projected columns are ever gathered, so an
# unprojected build column is never copied per match.
#
# Index vectors carry shape hints that keep the gathers at C speed:
#
# - ``li is None`` with ``counts`` set means the left vector is
#   "probe row i, repeated counts[i] times" — left columns are then
#   produced directly with ``chain.from_iterable(map(repeat, col,
#   counts))`` (one C pass, no index vector ever materialized).
# - a ``range`` for ``li``/``ri`` means that side passes through whole
#   and in order (all-hit unique probe / index-NLJ match block) — its
#   columns are reused with no copy at all.


def _column_keys(columns, positions: List[int]):
    """Key sequence for a column set: the column itself for single-key
    joins (extraction is free), zipped tuples otherwise."""
    if len(positions) == 1:
        return columns[positions[0]]
    return list(zip(*(columns[p] for p in positions)))


def _build_buckets(keys, skip_tuple_nulls: bool) -> dict:
    """key → ascending list of row indices; NULL keys are skipped at
    build time (NULL never equi-matches), which is what lets the probe
    loop run without any null check — a missing key is just a dict miss."""
    buckets: dict = {}
    get = buckets.get
    if skip_tuple_nulls:
        for i, key in enumerate(keys):
            if None in key:
                continue
            hit = get(key)
            if hit is None:
                buckets[key] = [i]
            else:
                hit.append(i)
    else:
        for i, key in enumerate(keys):
            if key is None:
                continue
            hit = get(key)
            if hit is None:
                buckets[key] = [i]
            else:
                hit.append(i)
    return buckets


def _probe_multi(keys, buckets: dict):
    """One hash probe per row against multi-match buckets, entirely in
    C-level passes: ``map`` does the lookups, a listcomp counts the
    matches per probe row, and ``chain.from_iterable(filter(None, ...))``
    flattens the matched buckets into the build-index vector. Emit order
    is probe order then build-insertion order (= the row engine's nested
    emit order). Returns ``(counts, ri)`` — the left vector stays
    implicit (see the module comment above)."""
    hits = list(map(buckets.get, keys))
    counts = [0 if hit is None else len(hit) for hit in hits]
    ri = list(chain.from_iterable(filter(None, hits)))
    return counts, ri


def materialize_left(counts: List[int]) -> List[int]:
    """Expand a counts-encoded left vector into explicit indices
    (``(i,) * counts[i]`` concatenated — all C passes)."""
    return list(chain.from_iterable(map(mul, zip(count()), counts)))


def repeat_column(column, counts: List[int]):
    """Produce a left output column straight from the counts encoding:
    element i repeated counts[i] times, in one C pass. Tuple
    multiplication (``(v,) * c``) measures ~25% faster than
    ``itertools.repeat`` objects here: one allocation per probe row
    instead of one lazy iterator each."""
    return list(chain.from_iterable(map(mul, zip(column), counts)))


def _unique_index(buckets: dict) -> Optional[dict]:
    """``key -> index`` map when every bucket is a singleton (unique
    build keys — the common PK/FK case), else ``None``. Unlocks the
    C-speed probe path below."""
    for bucket in buckets.values():
        if len(bucket) != 1:
            return None
    return {key: bucket[0] for key, bucket in buckets.items()}


def _probe_unique(keys, index: dict):
    """Probe against a unique-key index with one C-level ``map`` pass.

    When every probe key matches (referential integrity — the dominant
    case in FK joins), ``li`` comes back as a ``range`` covering the
    whole batch in order, which the join emitter treats as "left columns
    pass through unchanged". Build indices are ints, so ``None`` in the
    hit list can only mean a miss."""
    ri = list(map(index.get, keys))
    if None in ri:
        li = [i for i, hit in enumerate(ri) if hit is not None]
        ri = [hit for hit in ri if hit is not None]
        return li, ri
    return range(len(ri)), ri


def join_columns(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[ColumnBatch]:
    """Columnar join: method core + fused residual/projection emitter."""
    if plan.kind != "inner":
        return _kind_join_columns(plan, context, metrics, run)
    combined = plan.left.schema.concat(plan.right.schema)
    left_width = len(plan.left.schema)
    residual = SelectionProgram(plan.residuals, combined, context)
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]

    if plan.method == "inlj":
        core = _inlj_core(plan, context, metrics, run)
    elif plan.method == "hj":
        core = _hash_core(plan, context, metrics, run)
    elif plan.method == "smj":
        core = _smj_core(plan, context, metrics, run)
    else:
        core = _nlj_core(plan, context, metrics, run)

    def emit(left_columns, right_columns, li, ri, counts):
        full_left = li is not None and type(li) is range
        full_right = type(ri) is range
        cached = None
        cells = 0
        if residual.active:
            if li is None:  # the residual needs explicit left indices
                li = materialize_left(counts)
                counts = None
            virtual: List = [None] * len(combined)
            gathered = len(ri)
            for p in residual.used:
                if p < left_width:
                    if full_left:
                        virtual[p] = left_columns[p]
                    else:
                        virtual[p] = take(left_columns[p], li)
                        cells += gathered
                else:
                    column = right_columns[p - left_width]
                    if full_right:
                        virtual[p] = column
                    else:
                        virtual[p] = take(column, ri)
                        cells += gathered
            sel = residual.run(virtual, len(ri))
            if sel is None:
                # every row passed: the gathered columns ARE the output
                cached = virtual
            else:
                if not sel:
                    metrics.cells += cells
                    return None
                li = take(li, sel)
                ri = take(ri, sel)
                full_left = full_right = False
        out = []
        out_len = len(ri)
        for p in positions:
            if cached is not None and cached[p] is not None:
                out.append(cached[p])
            elif p < left_width:
                column = left_columns[p]
                if counts is not None:
                    out.append(repeat_column(column, counts))
                    cells += out_len
                elif full_left:
                    out.append(column)
                else:
                    out.append(take(column, li))
                    cells += out_len
            else:
                column = right_columns[p - left_width]
                if full_right:
                    out.append(column)
                else:
                    out.append(take(column, ri))
                    cells += out_len
        metrics.cells += cells
        return ColumnBatch(out, out_len)

    def generate() -> Iterator[ColumnBatch]:
        for left_columns, right_columns, li, ri, counts in core:
            metrics.rows_in += len(ri)
            batch = emit(left_columns, right_columns, li, ri, counts)
            if batch is not None and batch.length:
                yield batch

    return generate()


def _collect_columns(batches: Iterator[ColumnBatch], width: int):
    collected: List[ColumnBatch] = list(batches)
    return concat_columns(collected, width)


def _hash_core(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
):
    """Hash join over columns: build an index-valued hash table on the
    right, probe each left batch's key column straight through it."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )
    multi_key = len(left_positions) > 1
    left_width = plan.left.schema.width
    right_width = plan.right.schema.width

    def core():
        build_columns, build_count = _collect_columns(
            right_batches, len(plan.right.schema)
        )
        buckets = _build_buckets(
            _column_keys(build_columns, right_positions), multi_key
        )
        unique = _unique_index(buckets)
        probe_count = 0
        for batch in left_batches:
            probe_count += batch.length
            keys = _column_keys(batch.columns, left_positions)
            if unique is not None:
                li, ri = _probe_unique(keys, unique)
                if ri:
                    yield batch.columns, build_columns, li, ri, None
            else:
                counts, ri = _probe_multi(keys, buckets)
                if ri:
                    yield batch.columns, build_columns, None, ri, counts
        charge_spill(
            context.io,
            metrics,
            hash_spill_extra_io(
                pages_for(build_count, right_width),
                pages_for(probe_count, left_width),
                context.params.memory_pages,
            ),
        )

    return core()


def _nlj_core(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
):
    """Block NLJ over columns. With equi keys the inner match lookup
    uses an insertion-ordered hash index — output rows and order are
    identical to the row engine's linear scan (buckets hold ascending
    inner indices), and the rescan/materialization charges are computed
    from the same row counts, so page IO is byte-identical; only the
    in-memory matching is cheaper. The pure cross product builds its
    index vectors with C-level list repetition."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    memory = context.params.memory_pages
    equi = bool(plan.equi_keys)
    left_positions = (
        _key_positions(plan.left.schema, [p[0] for p in plan.equi_keys])
        if equi
        else []
    )
    right_positions = (
        _key_positions(plan.right.schema, [p[1] for p in plan.equi_keys])
        if equi
        else []
    )
    left_width = plan.left.schema.width

    def core():
        inner_columns, inner_count = _collect_columns(
            right_batches, len(plan.right.schema)
        )
        buckets = (
            _build_buckets(
                _column_keys(inner_columns, right_positions),
                len(right_positions) > 1,
            )
            if equi
            else None
        )
        unique = _unique_index(buckets) if buckets is not None else None
        inner_indices = list(range(inner_count))

        outer_count = 0
        for batch in left_batches:
            n = batch.length
            outer_count += n
            if unique is not None:
                li, ri = _probe_unique(
                    _column_keys(batch.columns, left_positions), unique
                )
                if ri:
                    yield batch.columns, inner_columns, li, ri, None
            elif buckets is not None:
                counts, ri = _probe_multi(
                    _column_keys(batch.columns, left_positions), buckets
                )
                if ri:
                    yield batch.columns, inner_columns, None, ri, counts
            elif inner_count:
                # cross product: every outer row repeats inner_count
                # times against the whole tiled inner
                yield (
                    batch.columns,
                    inner_columns,
                    None,
                    inner_indices * n,
                    [inner_count] * n,
                )

        blocks = nlj_blocks(pages_for(outer_count, left_width), memory)
        inner_is_scan = (
            isinstance(plan.right, ScanNode) and plan.right.index_name is None
        )
        if inner_is_scan:
            inner_pages = context.storage_for(
                plan.right.table_name
            ).num_pages
            if inner_pages > max(1, memory - 2) and blocks > 1:
                rescans = (blocks - 1) * inner_pages
                context.io.read_pages(rescans)
                metrics.spill(rescans, 0)
        else:
            inner_pages = pages_for(inner_count, plan.right.schema.width)
            if inner_pages > max(1, memory - 2):
                context.io.write_pages(inner_pages)  # materialize the inner
                rereads = blocks * inner_pages
                context.io.read_pages(rereads)
                metrics.spill(rereads, inner_pages)

    return core()


def _smj_core(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
):
    """Sort-merge over columns: sort *index* vectors instead of rows
    (``sorted(key=keys.__getitem__)`` is the same stable permutation
    the row engine's ``rows.sort`` produced), merge the materialized
    sorted key lists, and emit original-position index pairs."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    memory = context.params.memory_pages
    left_keys = [pair[0] for pair in plan.equi_keys]
    right_keys = [pair[1] for pair in plan.equi_keys]
    left_positions = _key_positions(plan.left.schema, left_keys)
    right_positions = _key_positions(plan.right.schema, right_keys)
    multi_key = len(left_positions) > 1

    def side(columns, count, child, keys, positions):
        """Null-filter, charge the sort, and return (order, sorted_keys)
        where ``order`` maps merge position → original row index."""
        order = getattr(child.props, "order", ()) if child.props else ()
        needs_sort = tuple(order[: len(keys)]) != tuple(keys)
        if needs_sort:
            # charge by the collected (pre-filter) page count so IO
            # totals match the row engine's
            charge_spill(
                context.io,
                metrics,
                external_sort_extra_io(
                    pages_for(count, child.schema.width), memory
                ),
            )
        key_values = _column_keys(columns, positions)
        if multi_key:
            indices = [
                i for i, key in enumerate(key_values) if None not in key
            ]
        elif None in key_values:
            indices = [
                i for i, key in enumerate(key_values) if key is not None
            ]
        else:  # no NULL keys: skip the per-row filter entirely
            indices = list(range(count))
        if needs_sort:
            indices.sort(key=key_values.__getitem__)
        elif len(indices) == count:
            return indices, list(key_values)
        return indices, take(key_values, indices)

    def core():
        left_columns, left_count = _collect_columns(
            left_batches, len(plan.left.schema)
        )
        right_columns, right_count = _collect_columns(
            right_batches, len(plan.right.schema)
        )
        left_order, left_sorted = side(
            left_columns, left_count, plan.left, left_keys, left_positions
        )
        right_order, right_sorted = side(
            right_columns, right_count, plan.right, right_keys, right_positions
        )

        # The merge itself is a probe of the left side (in sorted order)
        # against the right side's equal-key runs — emit order is
        # left-run-major with right runs ascending, exactly the pairwise
        # merge's order. Unique right keys (the PK side of a FK join)
        # collapse the whole merge into C-level ``dict``/``map`` passes.
        if not left_sorted or not right_sorted:
            return
        index = dict(zip(right_sorted, right_order))
        if len(index) == len(right_sorted):  # right keys unique
            hits = list(map(index.get, left_sorted))
            if None in hits:
                li = [
                    left_order[i]
                    for i, hit in enumerate(hits)
                    if hit is not None
                ]
                ri = [hit for hit in hits if hit is not None]
            else:  # referential integrity: every left row matches
                li, ri = left_order, hits
            if ri:
                yield left_columns, right_columns, li, ri, None
            return

        buckets: dict = {}
        get = buckets.get
        for key, position in zip(right_sorted, right_order):
            hit = get(key)
            if hit is None:
                buckets[key] = [position]
            else:
                hit.append(position)
        hits = list(map(get, left_sorted))
        counts = [0 if hit is None else len(hit) for hit in hits]
        # the left vector repeats *original* indices (left_order), so it
        # cannot stay counts-encoded — expand it with the same C passes
        li = list(chain.from_iterable(map(mul, zip(left_order), counts)))
        ri = list(chain.from_iterable(filter(None, hits)))
        if ri:
            yield left_columns, right_columns, li, ri, None

    return core()


def _inlj_core(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
):
    """Index NLJ over columns: the probe loop stays per-row (each probe
    is an index traversal), but outer columns are gathered — never
    concatenated into wide tuples — and matched inner rows transpose
    once per batch."""
    inner = plan.right
    if not isinstance(inner, ScanNode):
        raise ExecutionError("index NLJ requires a base-table inner")
    info = context.catalog.info(inner.table_name)
    index = info.indexes.get(plan.index_name or "")
    if index is None:
        raise ExecutionError(
            f"index {plan.index_name!r} not found on {inner.table_name!r}"
        )

    inner_join_columns = [name for (_, (_, name)) in plan.equi_keys]
    if list(index.column_names[: len(inner_join_columns)]) != inner_join_columns:
        raise ExecutionError(
            f"index {index.name!r} does not cover join columns "
            f"{inner_join_columns}"
        )

    left_batches = run(plan.left)
    table = info.table
    inner_full = table_row_schema(inner.alias, table.columns, include_rid=True)
    checks = [predicate.bind(inner_full) for predicate in inner.filters]
    inner_positions = [
        inner_full.index_of(field.alias, field.name) for field in inner.schema
    ]
    project_inner = projector(inner_positions, len(inner_full))
    probe_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )

    inner_metrics = OperatorMetrics(
        label=inner.describe() + " (index probe)", depth=metrics.depth + 1
    )
    if context.metrics is not None:
        context.metrics.register(inner_metrics)
    inner.op_metrics = inner_metrics
    metrics.children.append(inner_metrics)
    lookup = _probe_lookup(context, inner, index)
    io = context.io
    inner_width = len(inner.schema)

    def core():
        matched = 0
        probes = 0
        for batch in left_batches:
            probe_columns = [batch.columns[p] for p in probe_positions]
            li: List[int] = []
            matched_rows: RowBatch = []
            lap = li.append
            rap = matched_rows.append
            for i, probe in enumerate(zip(*probe_columns)):
                probes += 1
                if None in probe:
                    continue
                for inner_row in lookup(io, probe, include_rid=True):
                    if checks and not all(
                        check(inner_row) for check in checks
                    ):
                        continue
                    matched += 1
                    lap(i)
                    rap(
                        project_inner(inner_row)
                        if project_inner is not None
                        else inner_row
                    )
            if li:
                right_columns = list(zip(*matched_rows))
                yield (
                    batch.columns,
                    right_columns,
                    li,
                    range(len(matched_rows)),
                    None,
                )
        inner.actual_rows = matched
        inner_metrics.rows_out = matched
        inner_metrics.rows_in = probes
        inner_metrics.batches = probes  # one probe per outer row

    return core()


def _kind_join_columns(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[ColumnBatch]:
    """Semi / anti / LEFT OUTER joins over columns.

    Candidate (probe, build) pairs come from the same bucket probe as
    the inner cores; the ON residuals then run as a selection kernel
    over the *pairs*, and only afterwards does the kind decide what
    survives: the distinct matched probes (semi), their complement
    (anti — a NULL-keyed probe has no pairs, so it survives, matching
    NOT EXISTS), or every probe with unmatched ones padded through a
    NULL sentinel row appended to the build columns (LEFT). Output rows
    and order are identical to the row engines'."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    combined = plan.left.schema.concat(plan.right.schema)
    left_width = len(plan.left.schema)
    right_width = len(plan.right.schema)
    residual = SelectionProgram(plan.residuals, combined, context)
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]
    equi = bool(plan.equi_keys)
    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )
    multi_key = len(left_positions) > 1

    def project_left(columns, sel):
        """Gather the (left-only) projection through a selection vector;
        ``sel is None`` keeps whole columns with no copy."""
        if sel is None:
            return [columns[p] for p in positions]
        metrics.cells += len(sel) * len(positions)
        return [take(columns[p], sel) for p in positions]

    def generate() -> Iterator[ColumnBatch]:
        build_columns, build_count = _collect_columns(
            right_batches, right_width
        )

        if plan.null_aware:
            # NOT IN three-valued logic over the single key column.
            key_column = build_columns[right_positions[0]]
            inner_nonempty = build_count > 0
            inner_has_null = any(value is None for value in key_column)
            key_set = set(
                value for value in key_column if value is not None
            )
        buckets = (
            _build_buckets(
                _column_keys(build_columns, right_positions), multi_key
            )
            if equi and not plan.null_aware
            else None
        )
        build_indices = list(range(build_count))
        padded_columns = (
            [list(column) + [None] for column in build_columns]
            if plan.kind == "left"
            else None
        )

        probe_count = 0
        for batch in left_batches:
            n = batch.length
            probe_count += n
            metrics.rows_in += n

            if plan.null_aware:
                keys = _column_keys(batch.columns, left_positions)
                if not inner_nonempty:
                    sel = None  # empty inner: every probe row survives
                elif inner_has_null:
                    continue  # every probe is UNKNOWN: all dropped
                else:
                    sel = [
                        i
                        for i, key in enumerate(keys)
                        if key is not None and key not in key_set
                    ]
                    if not sel:
                        continue
                yield ColumnBatch(
                    project_left(batch.columns, sel),
                    n if sel is None else len(sel),
                )
                continue

            # candidate (probe, build) pairs, probe-major ascending
            if buckets is not None:
                counts, ri = _probe_multi(
                    _column_keys(batch.columns, left_positions), buckets
                )
                li = materialize_left(counts)
            elif build_count:
                li = materialize_left([build_count] * n)
                ri = build_indices * n
            else:
                li = []
                ri = []

            # the ON residuals are part of the match condition
            if residual.active and ri:
                virtual: List = [None] * len(combined)
                gathered = len(ri)
                for p in residual.used:
                    if p < left_width:
                        virtual[p] = take(batch.columns[p], li)
                    else:
                        virtual[p] = take(
                            build_columns[p - left_width], ri
                        )
                    metrics.cells += gathered
                sel = residual.run(virtual, len(ri))
                if sel is not None:
                    li = take(li, sel)
                    ri = take(ri, sel)

            if plan.kind in ("semi", "anti"):
                matched = sorted(set(li))
                if plan.kind == "anti":
                    matched_set = set(matched)
                    matched = [
                        i for i in range(n) if i not in matched_set
                    ]
                if matched:
                    yield ColumnBatch(
                        project_left(batch.columns, matched), len(matched)
                    )
                continue

            # LEFT OUTER: walk probes in order; li is ascending, so the
            # surviving pairs of probe i are a contiguous run
            li_out: List[int] = []
            ri_out: List[int] = []
            pair_position = 0
            pair_total = len(li)
            for i in range(n):
                matched_any = False
                while (
                    pair_position < pair_total
                    and li[pair_position] == i
                ):
                    li_out.append(i)
                    ri_out.append(ri[pair_position])
                    pair_position += 1
                    matched_any = True
                if not matched_any:
                    li_out.append(i)
                    ri_out.append(build_count)  # the NULL sentinel row
            out = []
            for p in positions:
                if p < left_width:
                    out.append(take(batch.columns[p], li_out))
                else:
                    out.append(take(padded_columns[p - left_width], ri_out))
                metrics.cells += len(li_out)
            yield ColumnBatch(out, len(li_out))

        _kind_join_charges(plan, context, metrics, build_count, probe_count)

    return generate()
