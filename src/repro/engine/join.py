"""Streaming execution of the four join methods.

IO discipline (mirrored by the cost model in ``repro.cost.model``):

- **Block NLJ**: the outer is streamed in blocks of ``memory_pages - 2``
  pages. An inner that fits in the remaining buffers is read once;
  otherwise a base-table inner is rescanned per block and any other
  inner is materialized (one write) and re-read per block.
- **Index NLJ**: per outer row, a probe into the inner table's index;
  the index itself charges traversal/leaf/data-page IO.
- **Sort-merge**: each input is sorted unless already ordered on the
  join keys; sorting charges :func:`external_sort_extra_io`.
- **Hash**: build on the right input; a build side larger than memory
  charges a Grace partitioning pass over both inputs.

Pipeline shape: the build side of a hash join, both sort-merge inputs,
and a block-NLJ inner are pipeline breakers (fully collected before
output flows); the probe/outer side always streams. Join output runs
through a fused residual-filter→project per-batch loop, and spill
charges whose formulas need the streamed side's total page count are
applied once that side is exhausted — page totals are identical to the
legacy executor's, only the charge's position in the run moves.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..algebra.plan import JoinNode, ScanNode
from ..catalog.schema import RowSchema
from ..catalog.schema import table_row_schema
from ..errors import ExecutionError
from ..storage.page import pages_for
from .batch import (
    BatchBuilder,
    RowBatch,
    filtered,
    keyer,
    projector,
    tuple_keyer,
)
from .context import ExecutionContext
from .metrics import OperatorMetrics, charge_spill
from .spill import external_sort_extra_io, hash_spill_extra_io, nlj_blocks


def join_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Build the join pipeline: method core fused with the join's
    residual filter and projection in one per-batch loop."""
    combined = plan.left.schema.concat(plan.right.schema)
    residual_checks = [
        predicate.bind(combined) for predicate in plan.residuals
    ]
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]
    project = projector(positions, len(combined))

    if plan.method == "inlj":
        matched = _index_nlj_batches(plan, context, metrics, run)
    elif plan.method == "hj":
        matched = _hash_join_batches(plan, context, metrics, run)
    elif plan.method == "smj":
        matched = _sort_merge_join_batches(plan, context, metrics, run)
    else:
        matched = _block_nlj_batches(plan, context, metrics, run)

    def generate() -> Iterator[RowBatch]:
        for batch in matched:
            metrics.rows_in += len(batch)
            batch = filtered(batch, residual_checks)
            if project is not None:
                batch = [project(row) for row in batch]
            if batch:
                yield batch

    return generate()


def _key_positions(
    schema: RowSchema, keys: List[Tuple[Optional[str], str]]
) -> List[int]:
    return [schema.index_of(alias, name) for alias, name in keys]


def _null_key(key: Any) -> bool:
    """True when a join key (scalar or tuple) contains a SQL NULL.

    NULL = NULL is unknown, so a NULL-keyed row can never satisfy an
    equi-join; every join method drops such rows before matching (and
    before sorting — NULL has no place in a total order)."""
    if type(key) is tuple:
        return None in key
    return key is None


def _collect(batches: Iterator[RowBatch]) -> List[Tuple[Any, ...]]:
    rows: List[Tuple[Any, ...]] = []
    for batch in batches:
        rows.extend(batch)
    return rows


def _hash_join_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Hash join: build side right (pipeline breaker), probe streams."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    left_key = keyer(
        _key_positions(plan.left.schema, [pair[0] for pair in plan.equi_keys])
    )
    right_key = keyer(
        _key_positions(plan.right.schema, [pair[1] for pair in plan.equi_keys])
    )
    left_width = plan.left.schema.width
    right_width = plan.right.schema.width

    def generate() -> Iterator[RowBatch]:
        build_rows = _collect(right_batches)
        buckets: dict = {}
        setdefault = buckets.setdefault
        for row in build_rows:
            setdefault(right_key(row), []).append(row)

        probe_count = 0
        lookup = buckets.get
        for batch in left_batches:
            probe_count += len(batch)
            out: RowBatch = []
            append = out.append
            for left_row in batch:
                key = left_key(left_row)
                if _null_key(key):
                    continue
                matches = lookup(key)
                if matches is not None:
                    for right_row in matches:
                        append(left_row + right_row)
            if out:
                yield out

        # Grace partitioning charge; needs the probe side's total pages,
        # so it lands after the probe is exhausted (same totals as the
        # legacy up-front charge).
        charge_spill(
            context.io,
            metrics,
            hash_spill_extra_io(
                pages_for(len(build_rows), right_width),
                pages_for(probe_count, left_width),
                context.params.memory_pages,
            ),
        )

    return generate()


def _block_nlj_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Block nested-loop join; equi keys (if any) checked as predicates.

    The inner key list is computed once up front instead of re-deriving
    a key tuple per (outer, inner) pair."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    memory = context.params.memory_pages
    equi = bool(plan.equi_keys)
    left_key = (
        keyer(
            _key_positions(
                plan.left.schema, [pair[0] for pair in plan.equi_keys]
            )
        )
        if equi
        else None
    )
    right_key = (
        keyer(
            _key_positions(
                plan.right.schema, [pair[1] for pair in plan.equi_keys]
            )
        )
        if equi
        else None
    )
    left_width = plan.left.schema.width

    def generate() -> Iterator[RowBatch]:
        inner_rows = _collect(right_batches)
        inner_keyed = (
            [(right_key(row), row) for row in inner_rows] if equi else None
        )

        outer_count = 0
        for batch in left_batches:
            outer_count += len(batch)
            out: RowBatch = []
            append = out.append
            if inner_keyed is not None:
                for left_row in batch:
                    key = left_key(left_row)
                    if _null_key(key):
                        continue
                    for inner_key, inner_row in inner_keyed:
                        if key == inner_key:
                            append(left_row + inner_row)
            else:
                for left_row in batch:
                    out.extend(
                        left_row + inner_row for inner_row in inner_rows
                    )
            if out:
                yield out

        # Charge the inner side's rescans, block count taken from the
        # outer's total pages (exactly the legacy charges: the first
        # inner pass was charged when the right child executed, or is
        # free while the inner still fits in memory).
        blocks = nlj_blocks(pages_for(outer_count, left_width), memory)
        inner_is_scan = (
            isinstance(plan.right, ScanNode) and plan.right.index_name is None
        )
        if inner_is_scan:
            inner_pages = context.catalog.table(
                plan.right.table_name
            ).num_pages
            if inner_pages > max(1, memory - 2) and blocks > 1:
                rescans = (blocks - 1) * inner_pages
                context.io.read_pages(rescans)
                metrics.spill(rescans, 0)
        else:
            inner_pages = pages_for(
                len(inner_rows), plan.right.schema.width
            )
            if inner_pages > max(1, memory - 2):
                context.io.write_pages(inner_pages)  # materialize the inner
                rereads = blocks * inner_pages
                context.io.read_pages(rereads)
                metrics.spill(rereads, inner_pages)

    return generate()


def _index_nlj_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Index nested-loop join: probe the inner table's index per outer
    row, applying the inner scan's filters to fetched rows."""
    inner = plan.right
    if not isinstance(inner, ScanNode):
        raise ExecutionError("index NLJ requires a base-table inner")
    info = context.catalog.info(inner.table_name)
    index = info.indexes.get(plan.index_name or "")
    if index is None:
        raise ExecutionError(
            f"index {plan.index_name!r} not found on {inner.table_name!r}"
        )

    # The index must be on the inner join columns, in equi-key order.
    inner_join_columns = [name for (_, (_, name)) in plan.equi_keys]
    if list(index.column_names[: len(inner_join_columns)]) != inner_join_columns:
        raise ExecutionError(
            f"index {index.name!r} does not cover join columns "
            f"{inner_join_columns}"
        )

    left_batches = run(plan.left)
    table = info.table
    inner_full = table_row_schema(inner.alias, table.columns, include_rid=True)
    checks = [predicate.bind(inner_full) for predicate in inner.filters]
    inner_positions = [
        inner_full.index_of(field.alias, field.name) for field in inner.schema
    ]
    project_inner = projector(inner_positions, len(inner_full))
    probe_key = tuple_keyer(
        _key_positions(plan.left.schema, [pair[0] for pair in plan.equi_keys])
    )

    # The probe side never goes through the ordinary scan pipeline, so
    # meter it here — and record its actuals explicitly (the legacy
    # executor left ``actual_rows`` stale under index NLJ).
    inner_metrics = OperatorMetrics(
        label=inner.describe() + " (index probe)", depth=metrics.depth + 1
    )
    if context.metrics is not None:
        context.metrics.register(inner_metrics)
    inner.op_metrics = inner_metrics
    metrics.children.append(inner_metrics)
    lookup = index.lookup_rows
    io = context.io

    def generate() -> Iterator[RowBatch]:
        matched = 0
        probes = 0
        for batch in left_batches:
            out: RowBatch = []
            append = out.append
            for left_row in batch:
                probes += 1
                probe = probe_key(left_row)
                if None in probe:
                    continue
                for inner_row in lookup(io, probe, include_rid=True):
                    if checks and not all(
                        check(inner_row) for check in checks
                    ):
                        continue
                    matched += 1
                    append(
                        left_row + project_inner(inner_row)
                        if project_inner is not None
                        else left_row + inner_row
                    )
            if out:
                yield out
        inner.actual_rows = matched
        inner_metrics.rows_out = matched
        inner_metrics.rows_in = probes
        inner_metrics.batches = probes  # one probe per outer row

    return generate()


def _sort_merge_join_batches(
    plan: JoinNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run: Callable,
) -> Iterator[RowBatch]:
    """Sort-merge join; charges sorts unless an input is pre-ordered.

    Both inputs are pipeline breakers. The collected row lists are
    owned by this operator, so sorting them cannot corrupt a child's
    materialized output (the legacy in-place-sort hazard)."""
    left_batches = run(plan.left)
    right_batches = run(plan.right)
    memory = context.params.memory_pages
    left_keys = [pair[0] for pair in plan.equi_keys]
    right_keys = [pair[1] for pair in plan.equi_keys]
    left_key = keyer(_key_positions(plan.left.schema, left_keys))
    right_key = keyer(_key_positions(plan.right.schema, right_keys))

    def generate() -> Iterator[RowBatch]:
        left_rows = _collect(left_batches)
        right_rows = _collect(right_batches)

        for rows, child, keys, key_of in (
            (left_rows, plan.left, left_keys, left_key),
            (right_rows, plan.right, right_keys, right_key),
        ):
            order = getattr(child.props, "order", ()) if child.props else ()
            needs_sort = tuple(order[: len(keys)]) != tuple(keys)
            if needs_sort:
                # Charge by the collected (pre-filter) page count so IO
                # totals match the legacy executor's.
                charge_spill(
                    context.io,
                    metrics,
                    external_sort_extra_io(
                        pages_for(len(rows), child.schema.width), memory
                    ),
                )
            rows[:] = [row for row in rows if not _null_key(key_of(row))]
            if needs_sort:
                rows.sort(key=key_of)
            # pre-ordered inputs merge for free

        out = BatchBuilder(context.batch_size)
        i = 0
        j = 0
        left_count, right_count = len(left_rows), len(right_rows)
        while i < left_count and j < right_count:
            lkey = left_key(left_rows[i])
            rkey = right_key(right_rows[j])
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                # collect the equal-key run on each side, emit the product
                i_end = i
                while i_end < left_count and left_key(left_rows[i_end]) == lkey:
                    i_end += 1
                j_end = j
                while (
                    j_end < right_count
                    and right_key(right_rows[j_end]) == rkey
                ):
                    j_end += 1
                run_right = right_rows[j:j_end]
                for left_row in left_rows[i:i_end]:
                    out.extend(
                        [left_row + right_row for right_row in run_right]
                    )
                i, j = i_end, j_end
                if out.full:
                    yield out.drain()
        if out.rows:
            yield out.drain()

    return generate()
