"""Execution of the four join methods.

IO discipline (mirrored by the cost model in ``repro.cost.model``):

- **Block NLJ**: the outer is streamed in blocks of ``memory_pages - 2``
  pages. An inner that fits in the remaining buffers is read once;
  otherwise a base-table inner is rescanned per block and any other
  inner is materialized (one write) and re-read per block.
- **Index NLJ**: per outer row, a probe into the inner table's index;
  the index itself charges traversal/leaf/data-page IO.
- **Sort-merge**: each input is sorted unless already ordered on the
  join keys; sorting charges :func:`external_sort_extra_io`.
- **Hash**: build on the right input; a build side larger than memory
  charges a Grace partitioning pass over both inputs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..algebra.plan import JoinNode, ScanNode
from ..catalog.schema import RowSchema, table_row_schema
from ..errors import ExecutionError
from .context import ExecutionContext, Result
from .spill import external_sort_extra_io, hash_spill_extra_io, nlj_blocks


def execute_join(
    plan: JoinNode,
    context: ExecutionContext,
    run: Callable[..., Result],
) -> Result:
    """Execute *plan*; *run* recursively executes child plans."""
    left = run(plan.left, context)
    combined = plan.left.schema.concat(plan.right.schema)
    residual_checks = [
        predicate.bind(combined) for predicate in plan.residuals
    ]
    positions = [
        combined.index_of(alias, name) for alias, name in plan.projection
    ]

    if plan.method == "inlj":
        joined = _index_nlj(plan, context, left)
    else:
        right = run(plan.right, context)
        if plan.method == "hj":
            joined = _hash_join(plan, context, left, right)
        elif plan.method == "smj":
            joined = _sort_merge_join(plan, context, left, right)
        else:
            joined = _block_nlj(plan, context, left, right)

    rows: List[Tuple] = []
    for row in joined:
        if all(check(row) for check in residual_checks):
            rows.append(tuple(row[position] for position in positions))
    return Result(schema=plan.schema, rows=rows)


def _key_positions(
    schema: RowSchema, keys: List[Tuple[Optional[str], str]]
) -> List[int]:
    return [schema.index_of(alias, name) for alias, name in keys]


def _block_nlj(
    plan: JoinNode, context: ExecutionContext, left: Result, right: Result
) -> List[Tuple]:
    """Block nested-loop join; equi keys (if any) checked as predicates."""
    memory = context.params.memory_pages
    blocks = nlj_blocks(left.pages, memory)

    # Charge the inner side's rescans. The first pass was charged when
    # the right child executed (base scan) or is free (still in memory).
    inner_is_scan = (
        isinstance(plan.right, ScanNode) and plan.right.index_name is None
    )
    if inner_is_scan:
        inner_pages = context.catalog.table(plan.right.table_name).num_pages
        if inner_pages > max(1, memory - 2) and blocks > 1:
            context.io.read_pages((blocks - 1) * inner_pages)
    else:
        inner_pages = right.pages
        if inner_pages > max(1, memory - 2):
            context.io.write_pages(inner_pages)  # materialize the inner
            context.io.read_pages(blocks * inner_pages)

    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )
    rows: List[Tuple] = []
    for left_row in left.rows:
        left_key = tuple(left_row[p] for p in left_positions)
        for right_row in right.rows:
            if left_key == tuple(right_row[p] for p in right_positions):
                rows.append(left_row + right_row)
    return rows


def _index_nlj(
    plan: JoinNode, context: ExecutionContext, left: Result
) -> List[Tuple]:
    """Index nested-loop join: probe the inner table's index per outer
    row, applying the inner scan's filters to fetched rows."""
    inner = plan.right
    if not isinstance(inner, ScanNode):
        raise ExecutionError("index NLJ requires a base-table inner")
    info = context.catalog.info(inner.table_name)
    index = info.indexes.get(plan.index_name or "")
    if index is None:
        raise ExecutionError(
            f"index {plan.index_name!r} not found on {inner.table_name!r}"
        )

    # The index must be on the inner join columns, in equi-key order.
    inner_join_columns = [name for (_, (_, name)) in plan.equi_keys]
    if list(index.column_names[: len(inner_join_columns)]) != inner_join_columns:
        raise ExecutionError(
            f"index {index.name!r} does not cover join columns "
            f"{inner_join_columns}"
        )

    table = info.table
    inner_full = table_row_schema(inner.alias, table.columns, include_rid=True)
    checks = [predicate.bind(inner_full) for predicate in inner.filters]
    inner_positions = [
        inner_full.index_of(field.alias, field.name) for field in inner.schema
    ]
    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )

    rows: List[Tuple] = []
    for left_row in left.rows:
        probe = tuple(left_row[p] for p in left_positions)
        for inner_row in index.lookup_rows(context.io, probe, include_rid=True):
            if all(check(inner_row) for check in checks):
                projected = tuple(inner_row[p] for p in inner_positions)
                rows.append(left_row + projected)
    return rows


def _hash_join(
    plan: JoinNode, context: ExecutionContext, left: Result, right: Result
) -> List[Tuple]:
    """Hash join, build side right, probe side left."""
    extra = hash_spill_extra_io(
        right.pages, left.pages, context.params.memory_pages
    )
    if extra:
        context.io.write_pages(extra // 2)
        context.io.read_pages(extra - extra // 2)

    left_positions = _key_positions(
        plan.left.schema, [pair[0] for pair in plan.equi_keys]
    )
    right_positions = _key_positions(
        plan.right.schema, [pair[1] for pair in plan.equi_keys]
    )
    buckets: dict = {}
    for right_row in right.rows:
        key = tuple(right_row[p] for p in right_positions)
        buckets.setdefault(key, []).append(right_row)
    rows: List[Tuple] = []
    for left_row in left.rows:
        key = tuple(left_row[p] for p in left_positions)
        for right_row in buckets.get(key, ()):
            rows.append(left_row + right_row)
    return rows


def _sort_merge_join(
    plan: JoinNode, context: ExecutionContext, left: Result, right: Result
) -> List[Tuple]:
    """Sort-merge join; charges sorts unless an input is pre-ordered."""
    memory = context.params.memory_pages
    left_keys = [pair[0] for pair in plan.equi_keys]
    right_keys = [pair[1] for pair in plan.equi_keys]
    left_positions = _key_positions(plan.left.schema, left_keys)
    right_positions = _key_positions(plan.right.schema, right_keys)

    for result, child, positions in (
        (left, plan.left, left_positions),
        (right, plan.right, right_positions),
    ):
        order = getattr(child.props, "order", ()) if child.props else ()
        keys = left_keys if result is left else right_keys
        if tuple(order[: len(keys)]) != tuple(keys):
            extra = external_sort_extra_io(result.pages, memory)
            if extra:
                context.io.write_pages(extra // 2)
                context.io.read_pages(extra - extra // 2)
            result.rows.sort(key=lambda row: _sort_key(row, positions))
        # pre-ordered inputs merge for free

    rows: List[Tuple] = []
    i = 0
    j = 0
    left_rows, right_rows = left.rows, right.rows
    while i < len(left_rows) and j < len(right_rows):
        left_key = _sort_key(left_rows[i], left_positions)
        right_key = _sort_key(right_rows[j], right_positions)
        if left_key < right_key:
            i += 1
        elif left_key > right_key:
            j += 1
        else:
            # collect the equal-key run on each side, emit the product
            i_end = i
            while (
                i_end < len(left_rows)
                and _sort_key(left_rows[i_end], left_positions) == left_key
            ):
                i_end += 1
            j_end = j
            while (
                j_end < len(right_rows)
                and _sort_key(right_rows[j_end], right_positions) == right_key
            ):
                j_end += 1
            for left_row in left_rows[i:i_end]:
                for right_row in right_rows[j:j_end]:
                    rows.append(left_row + right_row)
            i, j = i_end, j_end
    return rows


def _sort_key(row: Tuple, positions: List[int]) -> Tuple[Any, ...]:
    return tuple(row[p] for p in positions)
