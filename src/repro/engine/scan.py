"""Streaming execution of table scans (heap and index access paths).

The scan is the canonical fused pipeline stage: one per-batch loop
applies selection (while scanning, before projection — so a filter may
reference columns the scan does not output) and projection through
precompiled accessors, emitting fixed-size row batches. Page IO is
charged by the storage layer exactly as the legacy row-at-a-time path
charged it.
"""

from __future__ import annotations

from typing import Iterator

from ..algebra.plan import ScanNode
from ..catalog.schema import table_row_schema
from ..errors import ExecutionError
from .batch import (
    BatchBuilder,
    ColumnBatch,
    ColumnBatchBuilder,
    RowBatch,
    projector,
    take,
)
from ..storage.snapshot import TableSnapshot
from .context import ExecutionContext
from .kernels import SelectionProgram
from .metrics import OperatorMetrics


def _index_source(plan: ScanNode, context: ExecutionContext):
    """Resolve the scan's index and return its (rows → one chunk)
    column source; charges are made by ``lookup_rows`` itself."""
    info = context.catalog.info(plan.table_name)
    index = info.indexes.get(plan.index_name)
    if index is None:
        raise ExecutionError(
            f"index {plan.index_name!r} not found on {plan.table_name!r}"
        )
    return index


def _index_rows(plan: ScanNode, context: ExecutionContext, storage):
    """Matching rows (with rid) via the scan's index — probing the
    pinned snapshot's captured index when one is in effect, the live
    index otherwise. Charging is identical either way."""
    if isinstance(storage, TableSnapshot):
        index = storage.index(plan.index_name)
        if index is None:
            raise ExecutionError(
                f"index {plan.index_name!r} not found on {plan.table_name!r}"
            )
        return storage.index_lookup_rows(
            context.io, index, plan.index_values, include_rid=True
        )
    index = _index_source(plan, context)
    return index.lookup_rows(context.io, plan.index_values, include_rid=True)


def scan_columns(
    plan: ScanNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run,
) -> Iterator[ColumnBatch]:
    """The fused columnar scan→filter→project loop.

    Per page: one compiled selection kernel pass over the filter's
    columns, then a gather of only the *output* columns through the
    selection vector. No row tuples exist at any point; when no filter
    matches, page columns flow into the batch builder untouched.
    """
    table = context.catalog.table(plan.table_name)
    storage = context.storage_for(plan.table_name)
    full_schema = table_row_schema(plan.alias, table.columns, include_rid=True)
    selection = SelectionProgram(plan.filters, full_schema, context)
    positions = [
        full_schema.index_of(field.alias, field.name) for field in plan.schema
    ]

    if plan.index_name is not None:

        def pages():
            rows = list(_index_rows(plan, context, storage))
            if rows:
                yield list(zip(*rows)), len(rows)

        source = pages()
    else:
        source = storage.scan_page_columns(context.io, include_rid=True)

    def generate() -> Iterator[ColumnBatch]:
        width = len(positions)
        out = ColumnBatchBuilder(context.batch_size, width)
        for columns, count in source:
            metrics.rows_in += count
            sel = selection.run(columns, count)
            if sel is None:
                out.extend([columns[p] for p in positions], count)
                metrics.cells += count * width
            elif sel:
                out.extend(
                    [take(columns[p], sel) for p in positions], len(sel)
                )
                metrics.cells += len(sel) * width
            else:
                continue
            if out.full:
                yield out.drain()
        if out.length:
            yield out.drain()

    return generate()


def scan_batches(
    plan: ScanNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run,
) -> Iterator[RowBatch]:
    """Build the fused scan→filter→project batch generator."""
    table = context.catalog.table(plan.table_name)
    storage = context.storage_for(plan.table_name)
    full_schema = table_row_schema(plan.alias, table.columns, include_rid=True)
    checks = [predicate.bind(full_schema) for predicate in plan.filters]
    positions = [
        full_schema.index_of(field.alias, field.name) for field in plan.schema
    ]
    project = projector(positions, len(full_schema))
    single_check = checks[0] if len(checks) == 1 else None

    if plan.index_name is not None:

        def pages():
            yield list(_index_rows(plan, context, storage))

        source = pages()
    else:
        source = storage.scan_pages(context.io, include_rid=True)

    def generate() -> Iterator[RowBatch]:
        out = BatchBuilder(context.batch_size)
        for chunk in source:
            metrics.rows_in += len(chunk)
            if single_check is not None:
                chunk = [row for row in chunk if single_check(row)]
            elif checks:
                chunk = [
                    row
                    for row in chunk
                    if all(check(row) for check in checks)
                ]
            if project is not None:
                chunk = [project(row) for row in chunk]
            out.extend(chunk)
            if out.full:
                yield out.drain()
        if out.rows:
            yield out.drain()

    return generate()
