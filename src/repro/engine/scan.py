"""Execution of table scans (heap and index access paths)."""

from __future__ import annotations

from typing import List, Tuple

from ..algebra.plan import ScanNode
from ..catalog.schema import table_row_schema
from ..errors import ExecutionError
from .context import ExecutionContext, Result


def execute_scan(plan: ScanNode, context: ExecutionContext) -> Result:
    """Scan a stored table, apply the scan's filters, project.

    Filters are evaluated against the full table row (selection happens
    while scanning, before projection), so a filter may reference columns
    the scan does not output.
    """
    table = context.catalog.table(plan.table_name)
    full_schema = table_row_schema(plan.alias, table.columns, include_rid=True)
    checks = [predicate.bind(full_schema) for predicate in plan.filters]
    positions = [
        full_schema.index_of(field.alias, field.name) for field in plan.schema
    ]

    if plan.index_name is not None:
        info = context.catalog.info(plan.table_name)
        index = info.indexes.get(plan.index_name)
        if index is None:
            raise ExecutionError(
                f"index {plan.index_name!r} not found on {plan.table_name!r}"
            )
        source = index.lookup_rows(
            context.io, plan.index_values, include_rid=True
        )
    else:
        source = table.scan(context.io, include_rid=True)

    rows: List[Tuple] = []
    for row in source:
        if all(check(row) for check in checks):
            rows.append(tuple(row[position] for position in positions))
    return Result(schema=plan.schema, rows=rows)
