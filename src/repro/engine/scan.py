"""Streaming execution of table scans (heap and index access paths).

The scan is the canonical fused pipeline stage: one per-batch loop
applies selection (while scanning, before projection — so a filter may
reference columns the scan does not output) and projection through
precompiled accessors, emitting fixed-size row batches. Page IO is
charged by the storage layer exactly as the legacy row-at-a-time path
charged it.
"""

from __future__ import annotations

from typing import Iterator

from ..algebra.plan import ScanNode
from ..catalog.schema import table_row_schema
from ..errors import ExecutionError
from .batch import BatchBuilder, RowBatch, projector
from .context import ExecutionContext
from .metrics import OperatorMetrics


def scan_batches(
    plan: ScanNode,
    context: ExecutionContext,
    metrics: OperatorMetrics,
    run,
) -> Iterator[RowBatch]:
    """Build the fused scan→filter→project batch generator."""
    table = context.catalog.table(plan.table_name)
    full_schema = table_row_schema(plan.alias, table.columns, include_rid=True)
    checks = [predicate.bind(full_schema) for predicate in plan.filters]
    positions = [
        full_schema.index_of(field.alias, field.name) for field in plan.schema
    ]
    project = projector(positions, len(full_schema))
    single_check = checks[0] if len(checks) == 1 else None

    if plan.index_name is not None:
        info = context.catalog.info(plan.table_name)
        index = info.indexes.get(plan.index_name)
        if index is None:
            raise ExecutionError(
                f"index {plan.index_name!r} not found on {plan.table_name!r}"
            )

        def pages():
            yield list(
                index.lookup_rows(
                    context.io, plan.index_values, include_rid=True
                )
            )

        source = pages()
    else:
        source = table.scan_pages(context.io, include_rid=True)

    def generate() -> Iterator[RowBatch]:
        out = BatchBuilder(context.batch_size)
        for chunk in source:
            metrics.rows_in += len(chunk)
            if single_check is not None:
                chunk = [row for row in chunk if single_check(row)]
            elif checks:
                chunk = [
                    row
                    for row in chunk
                    if all(check(row) for check in checks)
                ]
            if project is not None:
                chunk = [project(row) for row in chunk]
            out.extend(chunk)
            if out.full:
                yield out.drain()
        if out.rows:
            yield out.drain()

    return generate()
