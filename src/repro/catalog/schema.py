"""Schemas for stored tables and intermediate results.

Two related notions:

- :class:`Column` — a column of a *stored* table (name + type).
- :class:`RowSchema` — the shape of rows flowing between operators. Each
  :class:`Field` carries the alias of the table reference it came from
  (``e.sal`` and ``e2.sal`` are distinct fields even though both come from
  ``emp.sal``), or ``None`` for computed columns such as aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..datatypes import DataType
from ..errors import SchemaError

RID_COLUMN = "_rid"
"""Name of the hidden row-id pseudo-column exposed by scans on request.

The pull-up transformation needs a key of the pulled-through relation; in
the absence of a declared primary key "the query engine can use the
internal tuple id as a key" (Section 3). This is that tuple id.
"""


@dataclass(frozen=True)
class Column:
    """A column of a stored table.

    ``nullable`` is opt-in (``CREATE TABLE t (x int null)``): the paper
    assumes a NULL-free database, so only explicitly nullable columns
    accept NULL values.
    """

    name: str
    dtype: DataType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass(frozen=True)
class Field:
    """One slot of an intermediate row.

    ``alias`` is the table reference that produced the value (``e`` in
    ``emp e``), or ``None`` for computed values (aggregate outputs).
    """

    alias: Optional[str]
    name: str
    dtype: DataType

    @property
    def key(self) -> Tuple[Optional[str], str]:
        return (self.alias, self.name)

    def display(self) -> str:
        return f"{self.alias}.{self.name}" if self.alias else self.name


class RowSchema:
    """An ordered, immutable collection of :class:`Field`s.

    Provides positional resolution of (possibly unqualified) column
    references, width computation for the cost model, and the standard
    schema algebra (concatenation for joins, projection).
    """

    __slots__ = ("fields", "_index", "_width")

    def __init__(self, fields: Iterable[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        index: dict = {}
        for position, field in enumerate(self.fields):
            if field.key in index:
                raise SchemaError(f"duplicate field {field.display()}")
            index[field.key] = position
        self._index = index
        self._width = sum(field.dtype.width for field in self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowSchema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        names = ", ".join(f.display() for f in self.fields)
        return f"RowSchema({names})"

    @property
    def width(self) -> int:
        """Payload width in bytes of one row with this schema."""
        return self._width

    def index_of(self, alias: Optional[str], name: str) -> int:
        """Resolve a column reference to its position.

        A qualified reference (alias given) must match exactly. An
        unqualified reference matches any alias but must be unambiguous.
        """
        if alias is not None:
            position = self._index.get((alias, name))
            if position is None:
                raise SchemaError(f"unknown column {alias}.{name}")
            return position
        matches = [
            position
            for position, field in enumerate(self.fields)
            if field.name == name
        ]
        if not matches:
            raise SchemaError(f"unknown column {name}")
        if len(matches) > 1:
            raise SchemaError(f"ambiguous column {name}")
        return matches[0]

    def field_of(self, alias: Optional[str], name: str) -> Field:
        return self.fields[self.index_of(alias, name)]

    def has(self, alias: Optional[str], name: str) -> bool:
        if alias is not None:
            # fast path: qualified lookups are plain dict membership
            return (alias, name) in self._index
        try:
            self.index_of(alias, name)
        except SchemaError:
            return False
        return True

    def concat(self, other: "RowSchema") -> "RowSchema":
        """Schema of the concatenation of rows (join output)."""
        return RowSchema(self.fields + other.fields)

    def project(self, keys: Sequence[Tuple[Optional[str], str]]) -> "RowSchema":
        """Schema restricted (and reordered) to the given field keys."""
        return RowSchema(
            self.fields[self.index_of(alias, name)] for alias, name in keys
        )

    def aliases(self) -> set:
        """The set of table aliases contributing fields (None excluded)."""
        return {f.alias for f in self.fields if f.alias is not None}


def table_row_schema(
    alias: str, columns: Sequence[Column], include_rid: bool = False
) -> RowSchema:
    """The :class:`RowSchema` of a base-table scan under *alias*."""
    fields = [Field(alias, column.name, column.dtype) for column in columns]
    if include_rid:
        fields.append(Field(alias, RID_COLUMN, DataType.INT))
    return RowSchema(fields)
