"""The catalog: tables, keys, indexes, statistics, and view definitions."""

from __future__ import annotations

from dataclasses import (
    dataclass,
    field as dataclass_field,
    replace as dataclass_replace,
)
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import CatalogError
from ..storage.index import OrderedIndex
from ..storage.table import HeapTable
from .schema import Column
from .statistics import DEFAULT_CONFIG, StatsConfig, TableStats, analyze_table

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..storage.snapshot import DatabaseSnapshot


@dataclass(frozen=True)
class ForeignKey:
    """A declared foreign key: ``table.columns -> ref_table.ref_columns``.

    Used in two places: pull-up omits the referenced table's key from the
    new grouping columns when the join is a foreign-key join into its
    primary key (Section 3), and the cardinality estimator treats FK
    joins as non-expanding on the referencing side.
    """

    table: str
    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]


@dataclass
class TableInfo:
    """Everything the catalog knows about one stored table.

    Statistics staleness mirrors the materialized-view epoch protocol:
    inserts bump ``stats_epoch`` (an O(1) counter, like a matview delta
    log entry) instead of triggering a rescan; column statistics are
    re-collected lazily, and only once the table has grown past the
    config's ``stale_growth_fraction`` since the last ANALYZE. Row and
    page counts are *never* stale — :meth:`stats` refreshes them from
    the heap in O(1) on every call.
    """

    table: HeapTable
    primary_key: Optional[Tuple[str, ...]] = None
    foreign_keys: List[ForeignKey] = dataclass_field(default_factory=list)
    indexes: Dict[str, OrderedIndex] = dataclass_field(default_factory=dict)
    _stats: Optional[TableStats] = None
    _analyzed_rows: int = -1
    stats_epoch: int = 0
    analyze_count: int = 0
    pages_scanned_total: int = 0

    def stats(self, config: StatsConfig = DEFAULT_CONFIG) -> TableStats:
        """Current statistics: exact row/page counts, column statistics
        no staler than the config's growth threshold."""
        if self._needs_analyze(config):
            self.analyze(config)
        stats = self._stats
        assert stats is not None
        current_rows = self.table.num_rows
        current_pages = self.table.num_pages
        if (
            stats.row_count != current_rows
            or stats.page_count != current_pages
        ):
            stats = dataclass_replace(
                stats, row_count=current_rows, page_count=current_pages
            )
            self._stats = stats
        return stats

    def _needs_analyze(self, config: StatsConfig) -> bool:
        if self._stats is None:
            return True
        current = self.table.num_rows
        if current < self._analyzed_rows:
            return True  # rows vanished (truncate/reload); start over
        growth = current - self._analyzed_rows
        return growth > config.stale_growth_fraction * max(
            self._analyzed_rows, 1
        )

    def analyze(self, config: StatsConfig = DEFAULT_CONFIG) -> TableStats:
        """Force one statistics collection pass now."""
        self._stats = analyze_table(self.table, config)
        self._analyzed_rows = self.table.num_rows
        self.analyze_count += 1
        self.pages_scanned_total += self._stats.pages_scanned
        return self._stats

    def invalidate_stats(self) -> None:
        """Drop cached statistics; the next :meth:`stats` re-collects.
        Used when rows changed in place (e.g. a matview refresh rewrote
        the backing table without changing its row count)."""
        self._stats = None
        self._analyzed_rows = -1
        self.stats_epoch += 1

    def index_on(self, column_names: Sequence[str]) -> Optional[OrderedIndex]:
        """An index whose leading columns are exactly *column_names*."""
        wanted = tuple(column_names)
        for index in self.indexes.values():
            if index.column_names[: len(wanted)] == wanted:
                return index
        return None


class Catalog:
    """Registry of tables, indexes, keys, statistics, and named views."""

    def __init__(self, stats_config: Optional[StatsConfig] = None) -> None:
        self.stats_config = stats_config or DEFAULT_CONFIG
        self._tables: Dict[str, TableInfo] = {}
        self._views: Dict[str, Any] = {}
        # Monotonic counter bumped by anything that could change what a
        # previously built plan would answer or how it should be costed:
        # DDL, inserts, ANALYZE, matview create/refresh/drop. The plan
        # cache (repro.server.plancache) stores the epoch at plan-build
        # time and treats a mismatch as an invalidation; snapshots carry
        # it as a version stamp.
        self.change_epoch: int = 0
        # Materialized views (records are opaque here, like view
        # definitions; src/repro/views owns their structure). Backing
        # tables are kept in a side map so info()/table()/stats()
        # resolve them for scans and costing without the backing ever
        # appearing in table_names().
        self._matviews: Dict[str, Any] = {}
        self._matview_backings: Dict[str, TableInfo] = {}

    # ------------------------------------------------------------------
    # Change tracking and snapshots
    # ------------------------------------------------------------------

    def bump_epoch(self) -> int:
        """Advance the catalog change epoch (see ``change_epoch``)."""
        self.change_epoch += 1
        return self.change_epoch

    def capture_snapshot(self) -> "DatabaseSnapshot":
        """Capture a :class:`DatabaseSnapshot` of every table (user
        tables and matview backings) at the current epoch. O(tables):
        no rows are copied, only published list objects are pinned.
        Callers serialize this against the single writer (the Database
        write lock)."""
        from ..storage.snapshot import DatabaseSnapshot, TableSnapshot

        tables: Dict[str, TableSnapshot] = {}
        for mapping in (self._tables, self._matview_backings):
            for name, info in mapping.items():
                tables[name] = TableSnapshot.capture(
                    info.table, info.indexes
                )
        return DatabaseSnapshot(tables, self.change_epoch)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> HeapTable:
        if name in self._tables or name in self._views:
            raise CatalogError(f"table or view {name!r} already exists")
        table = HeapTable(name, columns)
        pk: Optional[Tuple[str, ...]] = None
        if primary_key:
            for column in primary_key:
                table.column_position(column)  # validates existence
            pk = tuple(primary_key)
        self._tables[name] = TableInfo(table=table, primary_key=pk)
        self.bump_epoch()
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        dependents = sorted(
            view_name
            for view_name, view in self._matviews.items()
            if name in view.deps
        )
        if dependents:
            raise CatalogError(
                f"cannot drop table {name!r}: materialized view"
                f"{'s' if len(dependents) > 1 else ''} "
                f"{', '.join(dependents)} depend"
                f"{'' if len(dependents) > 1 else 's'} on it"
            )
        del self._tables[name]
        self.bump_epoch()

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> HeapTable:
        return self.info(name).table

    def info(self, name: str) -> TableInfo:
        info = self._tables.get(name)
        if info is None:
            info = self._matview_backings.get(name)
        if info is None:
            raise CatalogError(f"unknown table {name!r}")
        return info

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Keys and indexes
    # ------------------------------------------------------------------

    def primary_key(self, name: str) -> Optional[Tuple[str, ...]]:
        return self.info(name).primary_key

    def add_foreign_key(
        self,
        table: str,
        columns: Sequence[str],
        ref_table: str,
        ref_columns: Sequence[str],
    ) -> ForeignKey:
        info = self.info(table)
        ref_info = self.info(ref_table)
        for column in columns:
            info.table.column_position(column)
        for column in ref_columns:
            ref_info.table.column_position(column)
        if len(columns) != len(ref_columns):
            raise CatalogError("foreign key column lists differ in length")
        fk = ForeignKey(table, tuple(columns), ref_table, tuple(ref_columns))
        info.foreign_keys.append(fk)
        self.bump_epoch()
        return fk

    def foreign_keys(self, table: str) -> List[ForeignKey]:
        return list(self.info(table).foreign_keys)

    def create_index(
        self, index_name: str, table: str, columns: Sequence[str]
    ) -> OrderedIndex:
        info = self.info(table)
        if index_name in info.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        index = OrderedIndex(index_name, info.table, columns)
        info.indexes[index_name] = index
        self.bump_epoch()
        return index

    def rebuild_indexes(self, table: str) -> None:
        """Refresh all indexes of *table* after bulk loading."""
        for index in self.info(table).indexes.values():
            index.build()

    def drop_index(self, index_name: str) -> None:
        for info in self._tables.values():
            if index_name in info.indexes:
                del info.indexes[index_name]
                self.bump_epoch()
                return
        raise CatalogError(f"unknown index {index_name!r}")

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self, name: str) -> TableStats:
        return self.info(name).stats(self.stats_config)

    def analyze(self, name: Optional[str] = None) -> List[str]:
        """Force statistics collection now (the ANALYZE statement).

        With a name, analyzes that table (a materialized view name
        resolves to its backing table); without one, every user table.
        Returns the analyzed names.
        """
        if name is not None:
            if name in self._matviews:
                backing = self._matviews[name].backing_name
                self.info(backing).analyze(self.stats_config)
            else:
                self.info(name).analyze(self.stats_config)
            self.bump_epoch()
            return [name]
        names = self.table_names()
        for table_name in names:
            self.info(table_name).analyze(self.stats_config)
        self.bump_epoch()
        return names

    def analyze_all(self) -> None:
        """Ensure every table has (possibly cached) statistics."""
        for info in self._tables.values():
            info.stats(self.stats_config)

    # ------------------------------------------------------------------
    # Views (definitions are opaque to the catalog; the SQL binder owns
    # their interpretation)
    # ------------------------------------------------------------------

    def register_view(self, name: str, definition: Any) -> None:
        if name in self._tables or name in self._views:
            raise CatalogError(f"table or view {name!r} already exists")
        self._views[name] = definition
        self.bump_epoch()

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise CatalogError(f"unknown view {name!r}")
        del self._views[name]
        self.bump_epoch()

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> Any:
        if name not in self._views:
            raise CatalogError(f"unknown view {name!r}")
        return self._views[name]

    def view_names(self) -> List[str]:
        return sorted(self._views)

    # ------------------------------------------------------------------
    # Materialized views (records built by src/repro/views; the catalog
    # stores them, routes insert notifications, and serves the backing
    # tables through info()/table()/stats())
    # ------------------------------------------------------------------

    def register_materialized_view(
        self, view: Any, backing_info: TableInfo
    ) -> None:
        name = view.name
        if name in self._matviews or name in self._tables:
            raise CatalogError(f"table or view {name!r} already exists")
        self._matviews[name] = view
        self._matview_backings[view.backing_name] = backing_info
        self.bump_epoch()

    def drop_materialized_view(self, name: str) -> None:
        view = self._matviews.pop(name, None)
        if view is None:
            raise CatalogError(f"unknown materialized view {name!r}")
        self._matview_backings.pop(view.backing_name, None)
        self.bump_epoch()

    def has_materialized_view(self, name: str) -> bool:
        return name in self._matviews

    def materialized_view(self, name: str) -> Any:
        view = self._matviews.get(name)
        if view is None:
            raise CatalogError(f"unknown materialized view {name!r}")
        return view

    def materialized_views(self) -> List[Any]:
        return [self._matviews[name] for name in sorted(self._matviews)]

    def materialized_view_names(self) -> List[str]:
        return sorted(self._matviews)

    def record_insert(
        self, table: str, rows: Sequence[Tuple[Any, ...]]
    ) -> None:
        """Tell every dependent materialized view about new base rows
        (stale flag + delta log); called by the INSERT path. Also bumps
        the table's statistics epoch — an O(1) mark, never a rescan."""
        info = self._tables.get(table)
        if info is not None:
            info.stats_epoch += 1
        for view in self._matviews.values():
            view.notify_insert(table, rows)
        self.bump_epoch()
