"""Catalog: table schemas, keys, statistics, and name resolution.

The catalog is the optimizer's source of truth: cardinalities, page
counts, per-column distinct values and ranges (Selinger-style statistics),
and declared primary/foreign keys. Keys matter beyond uniqueness here —
the pull-up transformation (Section 3, Definition 1) grows the grouping
columns by a key of the pulled-through relation, and skips that when the
join is a foreign-key join into the relation's primary key.
"""

from .schema import Column, Field, RowSchema
from .statistics import ColumnStats, TableStats, analyze_table
from .catalog import Catalog, ForeignKey, TableInfo

__all__ = [
    "Column",
    "Field",
    "RowSchema",
    "ColumnStats",
    "TableStats",
    "analyze_table",
    "Catalog",
    "ForeignKey",
    "TableInfo",
]
