"""Compatibility shim: statistics now live in :mod:`repro.stats`.

The statistics subsystem grew out of this module — NULL-aware
collection, MCV lists, equi-depth histograms, and sampled ANALYZE are
in ``repro.stats.collect``; this module re-exports the core types so
existing imports (``from repro.catalog.statistics import ColumnStats``)
keep working. Imports go straight to ``repro.stats.collect`` rather
than the package root to keep the catalog package import-cycle free
(the stats package root pulls in plan-feedback helpers that depend on
the algebra layer).
"""

from __future__ import annotations

from ..stats.collect import (
    DEFAULT_CONFIG,
    ColumnStats,
    TableStats,
    analyze_table,
)
from ..stats.config import StatsConfig

__all__ = [
    "ColumnStats",
    "DEFAULT_CONFIG",
    "StatsConfig",
    "TableStats",
    "analyze_table",
]
