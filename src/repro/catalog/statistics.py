"""Selinger-style table and column statistics.

The cardinality estimator (``repro.cost.cardinality``) consumes these:
row counts and page counts drive scan/join costs, per-column distinct
counts drive equi-join and group-by output estimates, and min/max ranges
drive inequality selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..storage.table import HeapTable


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column: distinct count and value range."""

    n_distinct: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None

    @property
    def spread(self) -> Optional[float]:
        """Numeric range width, or ``None`` for non-numeric columns."""
        if isinstance(self.min_value, (int, float)) and isinstance(
            self.max_value, (int, float)
        ):
            return float(self.max_value) - float(self.min_value)
        return None


@dataclass(frozen=True)
class TableStats:
    """Statistics of one stored table."""

    row_count: int
    page_count: int
    row_width: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def analyze_table(table: HeapTable) -> TableStats:
    """Compute exact statistics by scanning the table's rows.

    Exact (rather than sampled) statistics keep the reproduction's
    cost-model errors attributable to the *formulas*, matching the
    paper's setting where the cost model is taken as given.
    """
    column_stats: Dict[str, ColumnStats] = {}
    for position, column in enumerate(table.columns):
        values = {row[position] for row in table.rows}
        if values:
            try:
                low, high = min(values), max(values)
            except TypeError:  # mixed un-orderable values; range unknown
                low = high = None
            column_stats[column.name] = ColumnStats(
                n_distinct=len(values), min_value=low, max_value=high
            )
        else:
            column_stats[column.name] = ColumnStats(n_distinct=0)
    return TableStats(
        row_count=table.num_rows,
        page_count=table.num_pages,
        row_width=table.row_width,
        columns=column_stats,
    )
