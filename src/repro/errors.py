"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class. Subclasses mirror the layers of the system: catalog,
SQL frontend, planning/legality, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """A catalog operation failed (unknown table, duplicate name, ...)."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference cannot be resolved."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """A parsed query refers to unknown tables/columns or violates SQL
    semantics (e.g. a selected column is not in the GROUP BY list)."""


class PlanError(ReproError):
    """An operator tree is illegal or cannot be constructed."""


class TransformError(ReproError):
    """A transformation's applicability conditions are not met."""


class ExecutionError(ReproError):
    """A physical operator failed while producing rows."""


class UnsupportedFeatureError(ReproError):
    """The query uses a feature outside the paper's stated scope
    (e.g. outer joins or NULLs, excluded in Section 2)."""
