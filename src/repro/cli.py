"""Interactive SQL shell over an in-memory repro database.

Run with ``python -m repro`` (add ``--demo`` to preload the paper's
emp/dept example data, ``--stats`` to print the optimizer's search
counters after every statement, ``--no-view-rewrite`` to stop the
optimizer answering queries from materialized views). Statements end
with ``;``. Besides SQL, the shell understands a few backslash
commands:

=============== ====================================================
``\\d``          list tables and views
``\\d name``     describe one table (columns, keys, stats)
``\\dv``         list materialized views (state, groups, deps)
``\\e [level]``  set the optimizer level (traditional/greedy/full)
``\\explain sql`` show the chosen plan without executing
``\\analyze sql`` run and show the plan with actual row counts
``\\q``          quit
=============== ====================================================
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Optional, TextIO

from .db import OPTIMIZERS, Database
from .errors import ReproError
from .optimizer.options import OptimizerOptions
from .workloads import EmpDeptConfig, build_empdept

PROMPT = "repro> "
CONTINUATION = "...... "


def make_demo_database() -> Database:
    """The paper's emp/dept schema with a small seeded instance."""
    return build_empdept(EmpDeptConfig(employees=1000, departments=40))


def format_rows(columns: List[str], rows: Iterable[tuple]) -> List[str]:
    """Psql-ish table rendering."""
    materialized = [
        [_show(value) for value in row] for row in rows
    ]
    widths = [len(name) for name in columns]
    for row in materialized:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    header = " | ".join(
        name.ljust(width) for name, width in zip(columns, widths)
    )
    rule = "-+-".join("-" * width for width in widths)
    lines = [header, rule]
    lines.extend(
        " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in materialized
    )
    lines.append(f"({len(materialized)} row"
                 f"{'s' if len(materialized) != 1 else ''})")
    return lines


def _show(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


class Shell:
    """One interactive session."""

    def __init__(
        self,
        database: Optional[Database] = None,
        out: TextIO = sys.stdout,
        show_stats: bool = False,
        view_rewrite: bool = True,
    ):
        self.db = database or Database()
        self.out = out
        self.optimizer = "full"
        self.show_stats = show_stats
        self.options: Optional[OptimizerOptions] = (
            None
            if view_rewrite
            else OptimizerOptions(enable_view_rewrite=False)
        )
        # The shell is one session on the database: statements go
        # through the plan cache and PREPARE/EXECUTE/DEALLOCATE work.
        self.session = self.db.session()

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    # ------------------------------------------------------------------
    # Command handling
    # ------------------------------------------------------------------

    def handle(self, statement: str) -> bool:
        """Process one complete statement. Returns False to quit."""
        statement = statement.strip().rstrip(";").strip()
        if not statement:
            return True
        try:
            if statement.startswith("\\"):
                return self._handle_meta(statement)
            self._run_sql(statement)
        except ReproError as error:
            self.write(f"error: {error}")
        return True

    def _handle_meta(self, statement: str) -> bool:
        command, _, argument = statement.partition(" ")
        argument = argument.strip()
        if command == "\\q":
            return False
        if command == "\\d":
            if argument:
                self._describe_table(argument)
            else:
                self._list_relations()
            return True
        if command == "\\dv":
            self._list_materialized_views()
            return True
        if command == "\\e":
            if argument:
                if argument not in OPTIMIZERS:
                    self.write(
                        f"unknown level {argument!r}; "
                        f"choose from {', '.join(OPTIMIZERS)}"
                    )
                else:
                    self.optimizer = argument
            self.write(f"optimizer level: {self.optimizer}")
            return True
        if command == "\\i":
            self._run_script(argument)
            return True
        if command == "\\explain":
            result = self.db.query(
                argument,
                optimizer=self.optimizer,
                options=self.options,
                execute=False,
            )
            self.write(result.explain())
            self.write(f"estimated cost: {result.estimated_cost:.0f} page IOs")
            self._write_stats(result)
            return True
        if command == "\\analyze":
            result = self.db.query(
                argument, optimizer=self.optimizer, options=self.options
            )
            self.write(result.explain(analyze=True))
            self.write(
                f"estimated {result.estimated_cost:.0f} / executed "
                f"{result.executed_io.total} page IOs"
            )
            return True
        self.write(
            f"unknown command {command!r} (try \\d, \\dv, \\e, \\i, \\q)"
        )
        return True

    def _run_script(self, path: str) -> None:
        """Execute a file of ';'-terminated statements (\\i file.sql)."""
        if not path:
            self.write("usage: \\i <file.sql>")
            return
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as error:
            self.write(f"cannot read {path!r}: {error}")
            return
        for statement in text.split(";"):
            if statement.strip():
                self.handle(statement)

    def _run_sql(self, sql: str) -> None:
        self.session.optimizer = self.optimizer
        self.session.options = self.options
        session_result = self.session.execute(sql)
        if session_result.kind == "ddl":
            self.write("ok")
            self._write_cache_stats()
            return
        if session_result.kind in ("prepare", "deallocate"):
            self.write(
                f"{session_result.kind} {session_result.statement_name}"
            )
            return
        result = session_result.query_result
        for line in format_rows(result.columns, result.rows):
            self.write(line)
        hit = " [plan cache hit]" if session_result.cache_hit else ""
        self.write(
            f"[{self.optimizer}] estimated {result.estimated_cost:.0f} / "
            f"executed {result.executed_io.total} page IOs{hit}"
        )
        self._write_stats(result)
        self._write_cache_stats()

    def _write_cache_stats(self) -> None:
        """The --stats serving panel: plan-cache counters and sessions."""
        if not self.show_stats:
            return
        cache = self.db.plan_cache.as_dict()
        parts = " ".join(f"{name}={value}" for name, value in cache.items())
        self.write(
            f"plan-cache: {parts} sessions_open={self.db.active_sessions} "
            f"sessions_total={self.db.sessions_opened}"
        )

    def _write_stats(self, result) -> None:
        """Print every search counter plus per-operator executor
        metrics (``--stats``). The search field list comes from
        ``SearchStats.as_dict()``, so new counters show up here without
        touching the shell; the executor section comes from
        ``ExecutionMetrics`` (rows, batches, wall-clock, spill IO per
        operator); the estimates section reports per-operator
        estimate-vs-actual q-error (1.0 = exact) after execution."""
        if not self.show_stats:
            return
        parts = []
        for name, value in result.optimization.stats.as_dict().items():
            if isinstance(value, float):
                parts.append(f"{name}={value:.6f}")
            else:
                parts.append(f"{name}={value}")
        self.write("stats: " + " ".join(parts))
        metrics = getattr(result, "exec_metrics", None)
        if metrics is not None and metrics.operators:
            self.write(
                f"exec: kernels_compiled={metrics.kernels_compiled}"
                f" cells={metrics.total_cells}"
            )
            for line in metrics.lines():
                self.write("  " + line)
        records = result.q_errors() if hasattr(result, "q_errors") else []
        if records:
            from .stats.feedback import median

            worst = max(record.q_error for record in records)
            mid = median([record.q_error for record in records])
            self.write(
                f"estimates: median q-error {mid:.2f}, worst {worst:.2f}"
            )
            for record in records:
                self.write(
                    "  " + "  " * record.depth
                    + f"est={record.estimated_rows:.0f} "
                    f"act={record.actual_rows} q={record.q_error:.2f}  "
                    + record.operator
                )

    def _list_relations(self) -> None:
        tables = self.db.catalog.table_names()
        views = self.db.catalog.view_names()
        materialized = set(self.db.catalog.materialized_view_names())
        if not tables and not views:
            self.write("no tables (start with --demo for sample data)")
        for name in tables:
            table = self.db.catalog.table(name)
            self.write(
                f"table {name} ({table.num_rows} rows, "
                f"{table.num_pages} pages)"
            )
        for name in views:
            if name in materialized:
                self.write(f"materialized view {name}")
            else:
                self.write(f"view {name}")

    def _list_materialized_views(self) -> None:
        views = self.db.catalog.materialized_views()
        if not views:
            self.write("no materialized views")
            return
        for view in views:
            self.write(view.describe())

    def _describe_table(self, name: str) -> None:
        if not self.db.catalog.has_table(name):
            self.write(f"no table named {name!r}")
            return
        table = self.db.catalog.table(name)
        stats = self.db.catalog.stats(name)
        primary_key = self.db.catalog.primary_key(name)
        self.write(f"table {name}:")
        if stats.sampled:
            self.write(
                f"  (statistics sampled: {stats.pages_scanned} of "
                f"{stats.page_count} pages)"
            )
        for column in table.columns:
            column_stats = stats.column(column.name)
            extra = ""
            if column_stats and column_stats.n_distinct:
                extra = f"  ndv={column_stats.n_distinct}"
                if column_stats.min_value is not None:
                    extra += (
                        f" range=[{column_stats.min_value}, "
                        f"{column_stats.max_value}]"
                    )
                if column_stats.null_count:
                    extra += f" nulls={column_stats.null_count}"
                if column_stats.mcvs:
                    extra += f" mcvs={len(column_stats.mcvs)}"
                if column_stats.histogram is not None:
                    extra += (
                        f" hist={column_stats.histogram.num_buckets}"
                    )
            marker = (
                " (pk)" if primary_key and column.name in primary_key else ""
            )
            self.write(f"  {column.name} {column.dtype.value}{marker}{extra}")
        for fk in self.db.catalog.foreign_keys(name):
            self.write(
                f"  fk ({', '.join(fk.columns)}) -> "
                f"{fk.ref_table}({', '.join(fk.ref_columns)})"
            )

    # ------------------------------------------------------------------
    # REPL loop
    # ------------------------------------------------------------------

    def run(self, source: TextIO) -> None:
        self.write(
            "repro shell — Chaudhuri & Shim, 'Optimizing Queries with "
            "Aggregate Views' (EDBT 1996)"
        )
        self.write("terminate statements with ';'  —  \\q quits, \\d lists")
        buffer: List[str] = []
        interactive = source is sys.stdin and sys.stdin.isatty()
        while True:
            if interactive:
                prompt = CONTINUATION if buffer else PROMPT
                try:
                    line = input(prompt)
                except EOFError:
                    break
            else:
                line = source.readline()
                if not line:
                    break
                line = line.rstrip("\n")
            buffer.append(line)
            text = "\n".join(buffer)
            if text.strip().startswith("\\") or text.rstrip().endswith(";"):
                buffer = []
                if not self.handle(text):
                    break
        self.write("bye")


def fuzz_main(argv: List[str]) -> int:
    """``python -m repro fuzz`` — run the differential fuzz loop.

    Exit codes: 0 clean, 1 divergences found, 2 bad arguments."""
    import argparse
    from pathlib import Path

    from .testing import PROFILES, FuzzConfigError, run_fuzz

    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description=(
            "Differential fuzzing: generate seeded SQL scripts, replay "
            "them across the plan-space config matrix, and compare every "
            "query against the SQLite / reference oracles."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=20,
        help="number of consecutive seeds to run (default 20)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed (default 0)",
    )
    parser.add_argument(
        "--profile", default="default",
        help=f"generation profile: {', '.join(sorted(PROFILES))}",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="wall-clock cap; stop starting new seeds after this long",
    )
    parser.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="write the JSON run report to PATH",
    )
    parser.add_argument(
        "--corpus", type=Path, default=None, metavar="DIR",
        help="write shrunk repros for any divergence into DIR",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="keep full diverging scripts instead of delta-debugging",
    )
    parser.add_argument(
        "--max-shrink-checks", type=int, default=200,
        help="budget of re-checks per shrink session (default 200)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-seed progress output",
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as stop:
        return int(stop.code or 0)

    def progress(seed, check):
        if options.quiet:
            return
        status = "ok" if check.ok else f"{len(check.divergences)} DIVERGENCES"
        print(
            f"seed {seed}: {check.queries_checked} queries "
            f"x {check.configs_run} configs: {status}"
        )

    try:
        report = run_fuzz(
            seeds=options.seeds,
            seed_base=options.seed_base,
            profile=options.profile,
            duration=options.duration,
            corpus_dir=options.corpus,
            shrink=not options.no_shrink,
            max_shrink_checks=options.max_shrink_checks,
            progress=progress,
        )
    except FuzzConfigError as error:
        print(f"fuzz: {error}", file=sys.stderr)
        return 2

    if options.report is not None:
        options.report.parent.mkdir(parents=True, exist_ok=True)
        options.report.write_text(report.to_json() + "\n")
    stopped = " (stopped by --duration)" if report.stopped_by_duration else ""
    print(
        f"fuzz[{report.profile}]: {report.seeds_run}/{report.seeds_planned} "
        f"seeds, {report.queries_checked} queries across {report.configs} "
        f"configs in {report.duration_seconds:.1f}s{stopped}"
    )
    if report.ok:
        print("no divergences")
        return 0
    for record in report.divergences:
        where = f" -> {record.corpus_path}" if record.corpus_path else ""
        print(
            f"DIVERGENCE seed={record.seed} kind={record.kind} "
            f"config={record.config}: {record.detail} "
            f"(shrunk {record.original_statements} -> "
            f"{record.shrunk_statements} statements){where}"
        )
    return 1


def serve_main(argv: List[str]) -> int:
    """``python -m repro serve`` — serve a database over the line
    protocol (see ``repro.server.net`` for the protocol)."""
    import argparse

    from .server.net import DEFAULT_HOST, DEFAULT_PORT, serve

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve an in-memory repro database over TCP.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--demo", action="store_true",
        help="preload the paper's emp/dept example data",
    )
    parser.add_argument(
        "--no-plan-cache", action="store_true",
        help="sessions bypass the shared plan cache",
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as stop:
        return int(stop.code or 0)
    database = make_demo_database() if options.demo else Database()
    serve(
        database,
        host=options.host,
        port=options.port,
        use_plan_cache=not options.no_plan_cache,
    )
    return 0


def connect_main(argv: List[str]) -> int:
    """``python -m repro connect`` — interactive line-protocol client."""
    import argparse

    from .server.net import DEFAULT_HOST, DEFAULT_PORT, connect

    parser = argparse.ArgumentParser(
        prog="python -m repro connect",
        description="Connect to a running repro server.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    try:
        options = parser.parse_args(argv)
    except SystemExit as stop:
        return int(stop.code or 0)
    return connect(options.host, options.port)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``; ``--demo`` preloads emp/dept."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "connect":
        return connect_main(argv[1:])
    database = None
    show_stats = False
    view_rewrite = True
    if "--demo" in argv:
        argv.remove("--demo")
        database = make_demo_database()
    if "--stats" in argv:
        argv.remove("--stats")
        show_stats = True
    if "--no-view-rewrite" in argv:
        argv.remove("--no-view-rewrite")
        view_rewrite = False
    if argv:
        print(f"unknown arguments: {argv}", file=sys.stderr)
        print(
            "usage: python -m repro [--demo] [--stats] [--no-view-rewrite]",
            file=sys.stderr,
        )
        return 2
    Shell(database, show_stats=show_stats, view_rewrite=view_rewrite).run(
        sys.stdin
    )
    return 0
