"""The end-to-end facade: a small in-process database with a cost-based
optimizer for queries over aggregate views.

Typical use::

    db = Database()
    db.create_table("emp", [("eno", "int"), ("dno", "int"),
                            ("sal", "float"), ("age", "int")],
                    primary_key=["eno"])
    db.insert("emp", rows)
    result = db.query('''
        with a1(dno, asal) as (select e2.dno, avg(e2.sal)
                               from emp e2 group by e2.dno)
        select e1.sal from emp e1, a1 b
        where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
    ''')
    print(result.rows, result.estimated_cost, result.executed_io)
    print(result.explain())
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .algebra.plan import PlanNode, explain as explain_plan
from .algebra.query import CanonicalQuery
from .catalog.catalog import Catalog, ForeignKey
from .catalog.schema import Column
from .cost.params import CostParams
from .datatypes import DataType
from .engine.context import ExecutionContext, Result
from .engine.executor import execute_plan
from .engine.metrics import ExecutionMetrics
from .engine.reference import evaluate_canonical
from .errors import CatalogError, ReproError
from .optimizer.canonical import (
    OptimizationResult,
    optimize_query,
    optimize_traditional,
)
from .optimizer.options import OptimizerOptions
from .server.plancache import PlanCache
from .sql.ast import ViewDefAst
from .sql.binder import bind_sql
from .stats import StatsConfig
from .sql.parser import parse_select
from .storage.iocounter import IOCounter, IOSnapshot

_TYPE_NAMES = {
    "int": DataType.INT,
    "integer": DataType.INT,
    "float": DataType.FLOAT,
    "double": DataType.FLOAT,
    "str": DataType.STR,
    "string": DataType.STR,
    "text": DataType.STR,
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
    "date": DataType.DATE,
}

def _derive_view_columns(view_name: str, body) -> List[str]:
    """Output column names for CREATE MATERIALIZED VIEW: the AS alias,
    else the bare column name, else ``func_arg`` for aggregates."""
    from .algebra.expressions import ColumnRef
    from .sql.ast import AggregateExpr

    names: List[str] = []
    for position, item in enumerate(body.select_items):
        name = item.output_name
        expression = item.expression
        if name is None and isinstance(expression, ColumnRef):
            name = expression.name
        if name is None and isinstance(expression, AggregateExpr):
            if isinstance(expression.arg, ColumnRef):
                name = f"{expression.func_name}_{expression.arg.name}"
            else:
                name = expression.func_name
        if name is None:
            name = f"column_{position}"
        if name in names:
            raise CatalogError(
                f"materialized view {view_name!r} has duplicate output "
                f"column {name!r}; disambiguate with AS aliases"
            )
        names.append(name)
    return names


OPTIMIZERS = ("full", "greedy", "traditional")
"""Available optimizer levels.

- ``"traditional"`` — Section 5.1 two-phase baseline.
- ``"greedy"`` — traditional phases but each block uses the greedy
  conservative heuristic (push-down only, no pull-up).
- ``"full"`` — the complete Section 5.3/5.4 algorithm (default).
"""


@dataclass
class QueryResult:
    """Everything one query run produced."""

    rows: List[Tuple[Any, ...]]
    columns: List[str]
    plan: PlanNode
    estimated_cost: float
    executed_io: Optional[IOSnapshot]
    optimization: OptimizationResult
    sql: str = ""
    exec_metrics: Optional[ExecutionMetrics] = None

    def explain(self, analyze: bool = False) -> str:
        """The plan as text; ``analyze=True`` adds executed row counts
        and per-operator q-error (available after the query ran)."""
        return explain_plan(self.plan, analyze=analyze)

    def q_errors(self):
        """Per-operator estimate-vs-actual records
        (:class:`repro.stats.feedback.EstimateRecord`), pre-order.
        Empty until the query has executed."""
        from .stats.feedback import plan_estimates

        return plan_estimates(self.plan)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """An in-memory relational database with IO-accounted storage and
    the paper's aggregate-view optimizer."""

    def __init__(
        self,
        params: Optional[CostParams] = None,
        stats_config: Optional[StatsConfig] = None,
    ):
        self.catalog = Catalog(stats_config)
        self.params = params or CostParams()
        self.io = IOCounter()
        # Serving state (repro.server): one writer at a time holds the
        # write lock; reader sessions take it only briefly to plan and
        # capture a snapshot, then execute lock-free. The plan cache is
        # shared by every session on this database.
        self.write_lock = threading.RLock()
        self.plan_cache = PlanCache()
        self.sessions_opened = 0
        self._active_sessions = 0

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def session(self, **kwargs) -> "Any":
        """Open a :class:`repro.server.session.Session` on this database
        (keyword arguments pass through: optimizer, options, engine,
        use_plan_cache)."""
        from .server.session import Session

        return Session(self, **kwargs)

    def register_session(self, session: Any) -> None:
        with self.write_lock:
            self.sessions_opened += 1
            self._active_sessions += 1

    def unregister_session(self, session: Any) -> None:
        with self.write_lock:
            self._active_sessions = max(0, self._active_sessions - 1)

    @property
    def active_sessions(self) -> int:
        return self._active_sessions

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Union[Column, Tuple[str, str]]],
        primary_key: Optional[Sequence[str]] = None,
        nullable: Optional[Sequence[str]] = None,
    ) -> None:
        """Create a table. Columns are ``Column`` objects or
        ``(name, type_name)`` pairs with types int/float/str/bool/date.
        Columns named in *nullable* accept NULL values (columns are
        NOT NULL by default, matching the paper's NULL-free setting)."""
        nullable_set = set(nullable or ())
        resolved: List[Column] = []
        for column in columns:
            if isinstance(column, Column):
                if column.name in nullable_set and not column.nullable:
                    column = Column(column.name, column.dtype, nullable=True)
                resolved.append(column)
            else:
                column_name, type_name = column
                dtype = _TYPE_NAMES.get(type_name.lower())
                if dtype is None:
                    raise CatalogError(
                        f"unknown column type {type_name!r} "
                        f"(known: {sorted(_TYPE_NAMES)})"
                    )
                resolved.append(
                    Column(
                        column_name,
                        dtype,
                        nullable=column_name in nullable_set,
                    )
                )
        self.catalog.create_table(name, resolved, primary_key=primary_key)

    def insert(self, table: str, rows: Sequence[Sequence[Any]]) -> None:
        heap = self.catalog.table(table)
        before = heap.num_rows
        heap.insert_many(rows)
        self.catalog.rebuild_indexes(table)
        # Dependent materialized views go stale and log the delta; the
        # canonical (validated) row forms are what the table stored.
        self.catalog.record_insert(table, heap.rows[before:])

    def create_index(
        self, index_name: str, table: str, columns: Sequence[str]
    ) -> None:
        self.catalog.create_index(index_name, table, columns)

    def add_foreign_key(
        self,
        table: str,
        columns: Sequence[str],
        ref_table: str,
        ref_columns: Sequence[str],
    ) -> ForeignKey:
        return self.catalog.add_foreign_key(
            table, columns, ref_table, ref_columns
        )

    def create_view(
        self, name: str, column_names: Sequence[str], body_sql: str
    ) -> None:
        """Register a named view usable in any query's FROM list."""
        body = parse_select(body_sql)
        self.catalog.register_view(
            name,
            ViewDefAst(
                name=name, column_names=tuple(column_names), body=body
            ),
        )

    def create_materialized_view(self, name: str, body_sql: str):
        """Create and populate a materialized aggregate view; it is also
        registered as a logical view, so queries reference it by name.
        Returns the populate's :class:`~repro.views.maintain.MaintenanceReport`."""
        from .views.maintain import create_materialized_view

        if (
            self.catalog.has_table(name)
            or self.catalog.has_view(name)
            or self.catalog.has_materialized_view(name)
        ):
            raise CatalogError(f"table or view {name!r} already exists")
        body = parse_select(body_sql)
        definition = ViewDefAst(
            name=name,
            column_names=tuple(_derive_view_columns(name, body)),
            body=body,
        )
        view, report = create_materialized_view(
            self.catalog, self.io, self.params, definition
        )
        self.catalog.register_view(name, definition)
        self.catalog.register_materialized_view(view, view.backing_info)
        return report

    def refresh_materialized_view(self, name: str, mode: str = "auto"):
        """Freshen one view: incremental merge when legal, full
        recompute otherwise (``mode="full"`` forces the latter)."""
        from .views.maintain import refresh_materialized_view

        return refresh_materialized_view(
            self.catalog, self.io, self.params, name, mode=mode
        )

    def drop_materialized_view(self, name: str) -> None:
        self.catalog.drop_materialized_view(name)
        self.catalog.drop_view(name)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def drop_index(self, name: str) -> None:
        self.catalog.drop_index(name)

    def analyze(self, table: Optional[str] = None) -> List[str]:
        """Collect statistics now — for one table, or all of them.

        The SQL form is ``ANALYZE [table]``. Returns the analyzed table
        names (a materialized view name analyzes its backing table).
        """
        return self.catalog.analyze(table)

    def execute(
        self,
        sql: str,
        optimizer: str = "full",
        options: Optional[OptimizerOptions] = None,
        engine: str = "batch",
    ) -> Optional[QueryResult]:
        """Run any supported statement.

        CREATE TABLE / CREATE INDEX / INSERT return ``None``; queries
        return a :class:`QueryResult` (the same as :meth:`query`).
        """
        from .sql.ddl import (
            AnalyzeStmt,
            CreateIndexStmt,
            CreateMaterializedViewStmt,
            CreateTableStmt,
            DropIndexStmt,
            DropMaterializedViewStmt,
            DropTableStmt,
            InsertStmt,
            RefreshMaterializedViewStmt,
            maybe_parse_ddl,
        )

        statement = maybe_parse_ddl(sql)
        if statement is None:
            return self.query(
                sql, optimizer=optimizer, options=options, engine=engine
            )
        if isinstance(statement, CreateTableStmt):
            self.create_table(
                statement.name,
                list(statement.columns),
                primary_key=list(statement.primary_key) or None,
                nullable=list(statement.nullable) or None,
            )
            return None
        if isinstance(statement, CreateIndexStmt):
            self.create_index(
                statement.name, statement.table, list(statement.columns)
            )
            return None
        if isinstance(statement, CreateMaterializedViewStmt):
            self.create_materialized_view(statement.name, statement.body_sql)
            return None
        if isinstance(statement, RefreshMaterializedViewStmt):
            self.refresh_materialized_view(statement.name)
            return None
        if isinstance(statement, DropMaterializedViewStmt):
            self.drop_materialized_view(statement.name)
            return None
        if isinstance(statement, DropTableStmt):
            self.drop_table(statement.name)
            return None
        if isinstance(statement, DropIndexStmt):
            self.drop_index(statement.name)
            return None
        if isinstance(statement, AnalyzeStmt):
            self.analyze(statement.table)
            return None
        assert isinstance(statement, InsertStmt)
        self.insert(statement.table, list(statement.rows))
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def bind(self, sql: str) -> CanonicalQuery:
        """Parse and bind SQL to the canonical form without optimizing."""
        return bind_sql(sql, self.catalog)

    def optimize(
        self,
        sql: str,
        optimizer: str = "full",
        options: Optional[OptimizerOptions] = None,
    ) -> OptimizationResult:
        """Optimize without executing."""
        query = self.bind(sql)
        return self.optimize_bound(query, optimizer, options)

    def optimize_bound(
        self,
        query: CanonicalQuery,
        optimizer: str = "full",
        options: Optional[OptimizerOptions] = None,
    ) -> OptimizationResult:
        self._refresh_relevant_views(query, options)
        if optimizer == "traditional":
            return optimize_traditional(
                query, self.catalog, self.params, options=options
            )
        if optimizer == "greedy":
            greedy_options = OptimizerOptions(
                enable_pullup=False,
                enable_invariant_split=False,
                enable_pushdown=True,
                enable_view_rewrite=(
                    options.enable_view_rewrite
                    if options is not None
                    else True
                ),
                enable_projection_pruning=(
                    options.enable_projection_pruning
                    if options is not None
                    else True
                ),
                enable_eager_aggregation=(
                    options.enable_eager_aggregation
                    if options is not None
                    else True
                ),
                enable_decorrelation=(
                    options.enable_decorrelation
                    if options is not None
                    else True
                ),
            )
            return optimize_query(
                query, self.catalog, self.params, greedy_options
            )
        if optimizer == "full":
            return optimize_query(query, self.catalog, self.params, options)
        raise ReproError(
            f"unknown optimizer {optimizer!r} (choose from {OPTIMIZERS})"
        )

    def _refresh_relevant_views(
        self,
        query: CanonicalQuery,
        options: Optional[OptimizerOptions],
    ) -> None:
        """Lazy refresh on first stale read: before optimizing, freshen
        stale decomposable views whose base tables the query touches, so
        the matcher sees (and costs) up-to-date backing tables."""
        if options is not None and not options.enable_view_rewrite:
            return
        if not self.catalog.materialized_view_names():
            return
        from .views.maintain import refresh_stale_views

        tables = {ref.table for ref in query.base_tables}
        for view in query.views:
            tables.update(ref.table for ref in view.block.relations)
        for unit in query.joins:
            if unit.table is not None:
                tables.add(unit.table.table)
        for spec in query.subqueries:
            tables.update(ref.table for ref in spec.relations)
        refresh_stale_views(self.catalog, self.io, self.params, tables)

    def execute_plan(self, plan: PlanNode) -> Tuple[Result, IOSnapshot]:
        """Execute an annotated plan, returning rows and its IO delta."""
        result, delta, _ = self._execute_with_metrics(plan)
        return result, delta

    def _execute_with_metrics(
        self, plan: PlanNode, engine: str = "batch"
    ) -> Tuple[Result, IOSnapshot, Optional[ExecutionMetrics]]:
        if engine in ("batch", "columnar"):
            context = ExecutionContext(self.catalog, self.io, self.params)
        elif engine == "batch-rows":
            context = ExecutionContext(
                self.catalog, self.io, self.params, engine="rows"
            )
        elif engine == "rowexec":
            from .engine.rowexec import execute_plan_rows

            context = ExecutionContext(self.catalog, self.io, self.params)
            with self.io.measure() as span:
                result = execute_plan_rows(plan, context)
            return result, span.delta, context.metrics
        else:
            raise ReproError(
                f"unknown engine {engine!r} (choose from 'batch', "
                "'batch-rows', 'rowexec')"
            )
        with self.io.measure() as span:
            result = execute_plan(plan, context)
        assert context.metrics is not None  # created by execute_plan
        return result, span.delta, context.metrics

    def query(
        self,
        sql: str,
        optimizer: str = "full",
        options: Optional[OptimizerOptions] = None,
        execute: bool = True,
        engine: str = "batch",
    ) -> QueryResult:
        """Bind, optimize, and (by default) execute one SQL query.

        ``engine`` selects the executor: the streaming batch pipeline
        (default) or the legacy row-at-a-time interpreter
        (``"rowexec"``), which the differential tests cross-check.
        """
        bound = self.bind(sql)
        optimization = self.optimize_bound(bound, optimizer, options)
        plan = optimization.plan
        columns = [field.display() for field in plan.schema]
        exec_metrics: Optional[ExecutionMetrics] = None
        if execute:
            result, delta, exec_metrics = self._execute_with_metrics(
                plan, engine=engine
            )
            rows = result.rows
            executed: Optional[IOSnapshot] = delta
        else:
            rows = []
            executed = None
        return QueryResult(
            rows=rows,
            columns=columns,
            plan=plan,
            estimated_cost=optimization.cost,
            executed_io=executed,
            optimization=optimization,
            sql=sql,
            exec_metrics=exec_metrics,
        )

    def explain(self, sql: str, optimizer: str = "full") -> str:
        return explain_plan(self.optimize(sql, optimizer).plan)

    def reference(self, sql: str) -> Result:
        """Evaluate by brute force (ground truth; no optimizer)."""
        return evaluate_canonical(self.bind(sql), self.catalog)
