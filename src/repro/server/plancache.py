"""A thread-safe LRU plan cache with epoch-based invalidation.

Entries are keyed on the canonical block signature of the bound query
(plus optimizer level and options fingerprint — see ``signature.py``)
and stamped with the catalog ``change_epoch`` current when the plan was
built. Any catalog mutation — DDL, INSERT, ANALYZE, matview
create/refresh/drop, stats-staleness bumps — advances the epoch, so a
stale entry is detected on its next lookup and dropped (counted as an
invalidation, not a miss-with-prejudice: the counters distinguish
"never seen" from "seen but outdated").

The lock makes every operation atomic; the critical sections are
dict/OrderedDict operations only — optimization itself always happens
outside the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

DEFAULT_CAPACITY = 128


@dataclass
class CacheEntry:
    """One cached optimization result and its validity stamp."""

    value: Any
    epoch: int


class PlanCache:
    """LRU cache of optimized plans, validated by catalog epoch."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def get(self, key: Hashable, epoch: int) -> Optional[Any]:
        """The cached value for *key* if present and built at *epoch*;
        else ``None`` (recording a miss or an invalidation)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.epoch != epoch:
                del self._entries[key]
                self.invalidations += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def put(self, key: Hashable, epoch: int, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = CacheEntry(value=value, epoch=epoch)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }
