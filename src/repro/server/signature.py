"""Canonical block signatures — the plan cache's key.

Two SQL texts that bind to the same :class:`CanonicalQuery` structure
(same relations under the same aliases, same predicate/grouping/select
structure) produce the same signature, so the cache serves either text
with one stored plan. The rendering is purely structural and fully
deterministic: every component comes out of the bound query's tuples in
order, expressions through their ``display()`` form (parameters render
as ``$n``, so a prepared statement's template keys one entry shared by
all its executions).

Aliases are kept verbatim rather than normalized away: a plan's output
schema and its internal field keys embed the query's aliases, so a plan
cached under aliases ``(e, d)`` cannot answer the alias-renamed query
``(x, y)`` without a rewrite pass. Alias-insensitive matching is a
possible future refinement; correctness first.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import Expression
from ..algebra.query import AggregateView, CanonicalQuery, QueryBlock
from ..optimizer.options import OptimizerOptions


def _expressions(label: str, items: Iterable[Expression]) -> str:
    return f"{label}[" + ";".join(e.display() for e in items) + "]"


def _aggregates(items: Iterable[Tuple[str, AggregateCall]]) -> str:
    return (
        "aggs["
        + ";".join(f"{name}={call.display()}" for name, call in items)
        + "]"
    )


def _block(block: QueryBlock) -> str:
    parts: List[str] = [
        "rels["
        + ";".join(f"{ref.table} {ref.alias}" for ref in block.relations)
        + "]",
        _expressions("where", block.predicates),
        "group[" + ";".join(c.display() for c in block.group_by) + "]",
        _aggregates(block.aggregates),
        _expressions("having", block.having),
        "select["
        + ";".join(f"{name}={src.display()}" for name, src in block.select)
        + "]",
    ]
    return "{" + "|".join(parts) + "}"


def _join_units(query: CanonicalQuery) -> str:
    """Join-kind structure: two queries differing only in a unit's kind
    (LEFT vs semi vs anti, null-aware or not) must never share a plan."""
    rendered = []
    for unit in query.joins:
        target = (
            f"{unit.table.table} {unit.table.alias}"
            if unit.table is not None
            else f"view {unit.alias}"
        )
        kind = unit.kind + ("+null_aware" if unit.null_aware else "")
        on = ";".join(e.display() for e in unit.on)
        filters = ";".join(e.display() for e in unit.filters)
        rendered.append(f"{kind}:{target}:on({on}):filters({filters})")
    return "joins[" + ";;".join(rendered) + "]"


def _subqueries(query: CanonicalQuery) -> str:
    """Unflattened subquery structure: kind/negation/operator and every
    inner component participate, so e.g. IN vs NOT IN, or two scalar
    subqueries differing only in their aggregate, key distinct plans."""
    rendered = []
    for spec in query.subqueries:
        head = spec.kind
        if spec.negate:
            head += "-not"
        if spec.op is not None:
            head += f"-{spec.op}"
        relations = ";".join(
            f"{ref.table} {ref.alias}" for ref in spec.relations
        )
        outer = spec.outer.display() if spec.outer is not None else ""
        value = spec.value.display() if spec.value is not None else ""
        aggregate = (
            spec.aggregate.display() if spec.aggregate is not None else ""
        )
        correlations = ";".join(
            f"{inner.display()}={outer_expr.display()}"
            for inner, outer_expr in spec.correlations
        )
        local = ";".join(e.display() for e in spec.local_predicates)
        rendered.append(
            f"{head}:{outer}:{value}:{aggregate}:rels({relations})"
            f":corr({correlations}):local({local})"
        )
    return "subqueries[" + ";;".join(rendered) + "]"


def query_signature(query: CanonicalQuery) -> str:
    """Deterministic structural key of a bound query."""
    views = ";".join(
        f"{view.alias}:{_block(view.block)}" for view in query.views
    )
    order = ";".join(
        f"{name}{' desc' if desc else ''}" for name, desc in query.order_by
    )
    parts = [
        "tables["
        + ";".join(f"{ref.table} {ref.alias}" for ref in query.base_tables)
        + "]",
        f"views[{views}]",
        _join_units(query),
        _subqueries(query),
        _expressions("where", query.predicates),
        "group[" + ";".join(c.display() for c in query.group_by) + "]",
        _aggregates(query.aggregates),
        _expressions("having", query.having),
        "select["
        + ";".join(f"{name}={src.display()}" for name, src in query.select)
        + "]",
        f"order[{order}]",
        f"limit[{query.limit}]",
    ]
    return "|".join(parts)


def options_fingerprint(options: OptimizerOptions) -> str:
    """Deterministic key component for the optimizer knobs in effect.

    ``OptimizerOptions`` is a frozen dataclass, so its repr lists every
    field with its value in declaration order — plans built under
    different knob settings never collide."""
    return repr(options) if options is not None else "default"


def cache_key(
    query: CanonicalQuery,
    optimizer: str,
    options: OptimizerOptions = None,
) -> Tuple[str, str, str]:
    """The full plan-cache key: structural signature + optimizer level
    + options fingerprint."""
    return (query_signature(query), optimizer, options_fingerprint(options))
