"""Plan cloning and parameter binding for cached/prepared plans.

A cached plan is a *template*: the executor records per-run state onto
plan nodes (``op_metrics``, ``actual_rows``), so handing the same tree
to two concurrent executions would interleave their counters — every
execution therefore runs against its own structural clone. Cloning
rebuilds nodes through their constructors (schemas recompute, which
doubles as a consistency check) and shares the immutable parts: bound
expressions, cost-annotator ``props``, field tuples.

Parameter binding is the same walk with a substitution applied to every
predicate expression: ``$n`` placeholders become the EXECUTE call's
literal values, producing a fully concrete plan the engine can bind and
run. The engine never sees a ``Parameter``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from ..algebra.expressions import (
    Expression,
    Literal,
    collect_parameters,
    replace_parameters,
)
from ..algebra.aggregates import AggregateCall
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
    SubqueryMarkNode,
)
from ..errors import PlanError


def plan_parameters(plan: PlanNode) -> FrozenSet[int]:
    """Every ``$n`` index appearing in the plan's predicates."""
    found = set()
    for expression in _plan_expressions(plan):
        found |= collect_parameters(expression)
    return frozenset(found)


def _plan_expressions(plan: PlanNode):
    if isinstance(plan, ScanNode):
        yield from plan.filters
    elif isinstance(plan, JoinNode):
        yield from plan.residuals
    elif isinstance(plan, SubqueryMarkNode):
        if plan.outer is not None:
            yield plan.outer
        if plan.value is not None:
            yield plan.value
        for inner_ref, outer_expr in plan.correlations:
            yield inner_ref
            yield outer_expr
        if plan.aggregate is not None and plan.aggregate.arg is not None:
            yield plan.aggregate.arg
    elif isinstance(plan, GroupByNode):
        yield from plan.having
    elif isinstance(plan, FilterNode):
        yield from plan.predicates
    elif isinstance(plan, ProjectNode):
        for _, _, expression in plan.outputs:
            yield expression
    for child in plan.children:
        yield from _plan_expressions(child)


def clone_plan(
    plan: PlanNode,
    substitution: Optional[Dict[int, Expression]] = None,
) -> PlanNode:
    """A fresh tree sharing immutable parts with *plan*; with a
    *substitution*, ``$n`` parameters in predicates are replaced by the
    given expressions along the way."""

    def rewrite(expression: Expression) -> Expression:
        if substitution is None:
            return expression
        return replace_parameters(expression, substitution)

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, ScanNode):
            clone: PlanNode = ScanNode(
                node.table_name,
                node.alias,
                list(node.schema),
                filters=[rewrite(f) for f in node.filters],
                include_rid=node.include_rid,
                index_name=node.index_name,
                index_values=node.index_values,
            )
        elif isinstance(node, JoinNode):
            clone = JoinNode(
                walk(node.left),
                walk(node.right),
                node.method,
                equi_keys=node.equi_keys,
                residuals=[rewrite(r) for r in node.residuals],
                projection=node.projection,
                index_name=node.index_name,
                kind=node.kind,
                null_aware=node.null_aware,
            )
        elif isinstance(node, SubqueryMarkNode):
            aggregate = node.aggregate
            if aggregate is not None and aggregate.arg is not None:
                aggregate = AggregateCall(
                    aggregate.func_name, rewrite(aggregate.arg)
                )
            clone = SubqueryMarkNode(
                walk(node.child),
                walk(node.inner),
                node.kind,
                negate=node.negate,
                op=node.op,
                outer=(
                    rewrite(node.outer) if node.outer is not None else None
                ),
                correlations=[
                    (rewrite(inner_ref), rewrite(outer_expr))
                    for inner_ref, outer_expr in node.correlations
                ],
                value=(
                    rewrite(node.value) if node.value is not None else None
                ),
                aggregate=aggregate,
            )
        elif isinstance(node, GroupByNode):
            clone = GroupByNode(
                walk(node.child),
                node.group_keys,
                node.aggregates,
                having=[rewrite(h) for h in node.having],
                method=node.method,
                projection=node.projection,
                eager=node.eager,
            )
        elif isinstance(node, FilterNode):
            clone = FilterNode(
                walk(node.child),
                [rewrite(p) for p in node.predicates],
            )
        elif isinstance(node, ProjectNode):
            clone = ProjectNode(
                walk(node.child),
                [
                    (alias, name, rewrite(expression))
                    for alias, name, expression in node.outputs
                ],
            )
        elif isinstance(node, SortNode):
            clone = SortNode(
                walk(node.child), node.keys, descending=node.descending
            )
        elif isinstance(node, LimitNode):
            clone = LimitNode(walk(node.child), node.count)
        elif isinstance(node, RenameNode):
            clone = RenameNode(walk(node.child), node.mapping)
        else:
            raise PlanError(
                f"cannot clone plan node type {type(node).__name__}"
            )
        clone.props = node.props
        return clone

    return walk(plan)


def bind_parameters(plan: PlanNode, values: Dict[int, Literal]) -> PlanNode:
    """A clone of *plan* with every ``$n`` replaced by ``values[n]``.

    Raises :class:`PlanError` when a placeholder has no value or a value
    has no placeholder (arity mismatches surface at EXECUTE, like a real
    server's protocol error)."""
    wanted = plan_parameters(plan)
    missing = sorted(wanted - set(values))
    extra = sorted(set(values) - wanted)
    if missing:
        raise PlanError(
            "EXECUTE is missing values for parameter"
            + ("s " if len(missing) > 1 else " ")
            + ", ".join(f"${i}" for i in missing)
        )
    if extra:
        raise PlanError(
            "EXECUTE passes values for unknown parameter"
            + ("s " if len(extra) > 1 else " ")
            + ", ".join(f"${i}" for i in extra)
        )
    return clone_plan(plan, substitution=dict(values))
