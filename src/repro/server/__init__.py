"""The serving subsystem: sessions, plan cache, prepared statements,
and the line-protocol server/client.

Attributes resolve lazily (PEP 562): ``repro.db`` constructs the shared
:class:`PlanCache` at ``Database`` init, while :mod:`.session` imports
``repro.db`` for result types — eager imports here would close that
cycle at import time.
"""

from __future__ import annotations

_EXPORTS = {
    "PlanCache": ".plancache",
    "CacheEntry": ".plancache",
    "Session": ".session",
    "SessionResult": ".session",
    "PreparedStatement": ".session",
    "query_signature": ".signature",
    "cache_key": ".signature",
    "clone_plan": ".planrewrite",
    "parameterize_query": ".parameterize",
    "bind_parameters": ".planrewrite",
    "plan_parameters": ".planrewrite",
    "serve": ".net",
    "ServerThread": ".net",
    "connect": ".net",
    "LineClient": ".net",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
