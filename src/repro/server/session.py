"""Sessions: the connection layer over :class:`~repro.db.Database`.

A session is one client's conversation with a shared database. It adds
three things the bare ``Database`` facade does not have:

- **Plan caching.** Queries are bound to canonical form, keyed on their
  structural signature (``signature.py``), and looked up in the
  database's shared :class:`~repro.server.plancache.PlanCache` before
  the optimizer runs. A hit skips optimization entirely; entries are
  invalidated by the catalog change epoch.

- **Prepared statements.** ``PREPARE name AS SELECT ... $1 ...`` binds
  and optimizes once; ``EXECUTE name(values...)`` substitutes the
  literal values into a clone of the stored plan and runs it; precisely
  the parse-and-optimize-once contract. *v1 tradeoff:* the plan is
  chosen with parameters costed at default selectivity (a ``$n`` is
  never a ``Literal``, so MCV/histogram lookups don't apply) and is
  **not** re-optimized per value vector — a value hitting a heavy MCV
  runs the generic plan, trading peak plan quality for zero per-execute
  optimizer cost. Epoch invalidation still replans after DDL/ANALYZE/
  refresh.

- **Concurrency discipline.** All catalog mutation happens under the
  database's single write lock; queries capture a COW snapshot
  (``storage/snapshot.py``) under that lock and then execute *outside*
  it against the snapshot with a per-execution ``IOCounter``,
  ``ExecutionContext`` and plan clone — readers never block the writer
  or each other during execution, and never observe half-applied
  inserts or matview refreshes.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Tuple

from ..algebra.expressions import Literal
from ..algebra.query import CanonicalQuery
from ..engine.context import ExecutionContext
from ..engine.executor import execute_plan
from ..errors import PlanError, ReproError, SqlSyntaxError
from ..optimizer.options import OptimizerOptions
from ..storage.iocounter import IOCounter
from .planrewrite import bind_parameters, clone_plan, plan_parameters
from .signature import cache_key

_PREPARE_RE = re.compile(
    r"^\s*prepare\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s+as\s+(?P<body>.+)$",
    re.IGNORECASE | re.DOTALL,
)
_EXECUTE_RE = re.compile(
    r"^\s*execute\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*"
    r"(?:\(\s*(?P<args>.*?)\s*\))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_DEALLOCATE_RE = re.compile(
    r"^\s*deallocate\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*;?\s*$",
    re.IGNORECASE,
)


def parse_execute_args(text: Optional[str]) -> List[Literal]:
    """EXECUTE's literal argument vector: numbers, ``'strings'`` (with
    ``''`` escapes), TRUE/FALSE, NULL."""
    if not text or not text.strip():
        return []
    values: List[Literal] = []
    for raw in _split_args(text):
        token = raw.strip()
        lowered = token.lower()
        if not token:
            raise SqlSyntaxError("empty EXECUTE argument")
        if token.startswith("'"):
            if not token.endswith("'") or len(token) < 2:
                raise SqlSyntaxError(f"unterminated string in {raw!r}")
            values.append(
                Literal(token[1:-1].replace("''", "'"))
            )
        elif lowered == "null":
            values.append(Literal(None))
        elif lowered == "true":
            values.append(Literal(True))
        elif lowered == "false":
            values.append(Literal(False))
        else:
            try:
                if any(c in token for c in ".eE"):
                    values.append(Literal(float(token)))
                else:
                    values.append(Literal(int(token)))
            except ValueError:
                raise SqlSyntaxError(
                    f"EXECUTE argument {raw!r} is not a literal"
                ) from None
    return values


def _split_args(text: str) -> List[str]:
    """Split on commas outside single-quoted strings."""
    parts: List[str] = []
    current: List[str] = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "'":
                if i + 1 < len(text) and text[i + 1] == "'":
                    current.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts


@dataclass
class PreparedStatement:
    """One PREPAREd query: the bound form, its optimized plan template,
    and the epoch the plan was built at."""

    name: str
    sql: str
    query: CanonicalQuery
    optimization: Any  # OptimizationResult
    parameters: Tuple[int, ...]
    epoch: int
    executions: int = 0
    replans: int = 0


@dataclass
class SessionResult:
    """What one session statement produced, with its phase timings.

    ``plan_seconds`` covers parse+bind+optimize (near zero on a plan
    cache hit or prepared execution — the number the serving benchmark's
    ≥5x gate compares); ``exec_seconds`` covers execution proper.
    """

    kind: str  # "query" | "ddl" | "prepare" | "execute" | "deallocate"
    rows: List[Tuple[Any, ...]] = dataclass_field(default_factory=list)
    columns: List[str] = dataclass_field(default_factory=list)
    cache_hit: bool = False
    plan_seconds: float = 0.0
    exec_seconds: float = 0.0
    statement_name: Optional[str] = None
    query_result: Any = None  # QueryResult for query/execute kinds


class Session:
    """One client connection to a shared :class:`~repro.db.Database`."""

    def __init__(
        self,
        db,
        optimizer: str = "full",
        options: Optional[OptimizerOptions] = None,
        engine: str = "batch",
        use_plan_cache: bool = True,
    ):
        self.db = db
        self.optimizer = optimizer
        self.options = options
        self.engine = engine
        self.use_plan_cache = use_plan_cache
        self.prepared: Dict[str, PreparedStatement] = {}
        self.statements = 0
        db.register_session(self)

    def close(self) -> None:
        self.db.unregister_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> SessionResult:
        """Run one statement: a query, DDL/INSERT, or the PREPARE /
        EXECUTE / DEALLOCATE session commands."""
        self.statements += 1
        match = _PREPARE_RE.match(sql)
        if match is not None:
            return self.prepare(match.group("name"), match.group("body"))
        match = _EXECUTE_RE.match(sql)
        if match is not None:
            return self.execute_prepared(
                match.group("name"),
                parse_execute_args(match.group("args")),
            )
        match = _DEALLOCATE_RE.match(sql)
        if match is not None:
            return self.deallocate(match.group("name"))
        from ..sql.ddl import maybe_parse_ddl

        if maybe_parse_ddl(sql) is not None:
            return self._execute_ddl(sql)
        return self._execute_query(sql)

    # ------------------------------------------------------------------
    # DDL / writes — single writer, under the lock
    # ------------------------------------------------------------------

    def _execute_ddl(self, sql: str) -> SessionResult:
        start = time.perf_counter()
        with self.db.write_lock:
            self.db.execute(sql)
        return SessionResult(
            kind="ddl", exec_seconds=time.perf_counter() - start
        )

    # ------------------------------------------------------------------
    # Queries — plan cache + snapshot execution
    # ------------------------------------------------------------------

    def _plan_query(
        self, sql: str
    ) -> Tuple[Any, "Any", bool]:
        """Bind and optimize (or fetch the cached plan) under the write
        lock; returns ``(optimization, snapshot, cache_hit)``.

        The lock covers three things that must see a settled catalog:
        binding (schema lookups), optimization (which may trigger lazy
        matview refresh — a write), and snapshot capture (which must
        pair row lists with the epoch that described them)."""
        cache = self.db.plan_cache if self.use_plan_cache else None
        with self.db.write_lock:
            bound = self.db.bind(sql)
            key = cache_key(bound, self.optimizer, self.options)
            epoch = self.db.catalog.change_epoch
            optimization = (
                cache.get(key, epoch) if cache is not None else None
            )
            hit = optimization is not None
            if optimization is None:
                optimization = self.db.optimize_bound(
                    bound, self.optimizer, self.options
                )
                # Lazy matview refresh during optimization bumps the
                # epoch; re-read it so the entry is valid *now*.
                epoch = self.db.catalog.change_epoch
                if cache is not None:
                    cache.put(key, epoch, optimization)
            snapshot = self.db.catalog.capture_snapshot()
        return optimization, snapshot, hit

    def _run_plan(self, plan, snapshot) -> Tuple[Any, "ExecutionContext"]:
        """Execute a (cloned, fully concrete) plan against *snapshot*
        with per-execution state; no locks held."""
        io = IOCounter()
        context = ExecutionContext(
            self.db.catalog,
            io,
            self.db.params,
            engine="rows" if self.engine == "batch-rows" else "columnar",
            snapshot=snapshot,
        )
        if self.engine == "rowexec":
            from ..engine.rowexec import execute_plan_rows

            return execute_plan_rows(plan, context), context
        return execute_plan(plan, context), context

    def _execute_query(self, sql: str) -> SessionResult:
        from ..db import QueryResult

        start = time.perf_counter()
        optimization, snapshot, hit = self._plan_query(sql)
        planned = time.perf_counter()
        if plan_parameters(optimization.plan):
            raise PlanError(
                "query contains $n parameters; use PREPARE ... / EXECUTE"
            )
        plan = clone_plan(optimization.plan)
        result, context = self._run_plan(plan, snapshot)
        finished = time.perf_counter()
        columns = [field.display() for field in plan.schema]
        query_result = QueryResult(
            rows=result.rows,
            columns=columns,
            plan=plan,
            estimated_cost=optimization.cost,
            executed_io=context.io.snapshot(),
            optimization=optimization,
            sql=sql,
            exec_metrics=context.metrics,
        )
        return SessionResult(
            kind="query",
            rows=result.rows,
            columns=columns,
            cache_hit=hit,
            plan_seconds=planned - start,
            exec_seconds=finished - planned,
            query_result=query_result,
        )

    # ------------------------------------------------------------------
    # PREPARE / EXECUTE / DEALLOCATE
    # ------------------------------------------------------------------

    def prepare(self, name: str, body_sql: str) -> SessionResult:
        with self.db.write_lock:
            bound = self.db.bind(body_sql)
            return self.prepare_bound(name, bound, sql=body_sql)

    def prepare_bound(
        self, name: str, query: CanonicalQuery, sql: str = ""
    ) -> SessionResult:
        """PREPARE from an already-bound query — the entry point for
        callers that build parameterized forms programmatically (the
        metamorphic fuzzer lifts literals to ``$n`` this way)."""
        if name in self.prepared:
            raise ReproError(f"prepared statement {name!r} already exists")
        start = time.perf_counter()
        with self.db.write_lock:
            optimization = self.db.optimize_bound(
                query, self.optimizer, self.options
            )
            epoch = self.db.catalog.change_epoch
        parameters = tuple(sorted(plan_parameters(optimization.plan)))
        expected = tuple(range(1, len(parameters) + 1))
        if parameters != expected:
            raise PlanError(
                f"prepared statement {name!r} uses parameters "
                f"{['$%d' % i for i in parameters]}; they must be "
                f"numbered contiguously from $1"
            )
        self.prepared[name] = PreparedStatement(
            name=name,
            sql=sql,
            query=query,
            optimization=optimization,
            parameters=parameters,
            epoch=epoch,
        )
        return SessionResult(
            kind="prepare",
            statement_name=name,
            plan_seconds=time.perf_counter() - start,
        )

    def execute_prepared(
        self, name: str, values: List[Literal]
    ) -> SessionResult:
        from ..db import QueryResult

        statement = self.prepared.get(name)
        if statement is None:
            raise ReproError(f"unknown prepared statement {name!r}")
        if len(values) != len(statement.parameters):
            raise PlanError(
                f"prepared statement {name!r} expects "
                f"{len(statement.parameters)} values, got {len(values)}"
            )
        start = time.perf_counter()
        with self.db.write_lock:
            if statement.epoch != self.db.catalog.change_epoch:
                # The catalog moved on (DDL/insert/refresh/ANALYZE):
                # replan once at the new epoch. Parameter *values* never
                # trigger this — see the module docstring's v1 tradeoff.
                statement.optimization = self.db.optimize_bound(
                    statement.query, self.optimizer, self.options
                )
                statement.epoch = self.db.catalog.change_epoch
                statement.replans += 1
            snapshot = self.db.catalog.capture_snapshot()
        planned = time.perf_counter()
        substitution = {
            index: value
            for index, value in zip(statement.parameters, values)
        }
        plan = bind_parameters(statement.optimization.plan, substitution)
        result, context = self._run_plan(plan, snapshot)
        finished = time.perf_counter()
        statement.executions += 1
        columns = [field.display() for field in plan.schema]
        query_result = QueryResult(
            rows=result.rows,
            columns=columns,
            plan=plan,
            estimated_cost=statement.optimization.cost,
            executed_io=context.io.snapshot(),
            optimization=statement.optimization,
            sql=statement.sql,
            exec_metrics=context.metrics,
        )
        return SessionResult(
            kind="execute",
            rows=result.rows,
            columns=columns,
            cache_hit=True,
            plan_seconds=planned - start,
            exec_seconds=finished - planned,
            statement_name=name,
            query_result=query_result,
        )

    def deallocate(self, name: str) -> SessionResult:
        if name not in self.prepared:
            raise ReproError(f"unknown prepared statement {name!r}")
        del self.prepared[name]
        return SessionResult(kind="deallocate", statement_name=name)
