"""A small asyncio server and line-protocol client.

Protocol (text, newline-delimited, UTF-8):

- The client sends one statement per line (``;`` optional). Newlines
  inside a statement are not supported — the shell collapses multi-line
  input before sending.
- The server answers with a header line, zero or more TSV rows, and a
  lone ``.`` sentinel line:

  - ``ok <nrows>`` then a TSV column-name line and ``<nrows>`` TSV value
    rows (queries), or no further lines before the sentinel
    (DDL/PREPARE/DEALLOCATE acknowledgements);
  - ``error <message>`` (single line) on failure.

  NULL encodes as ``\\N``; tab/newline/backslash in string values are
  escaped C-style, so a row is always exactly one line.

Each connection gets its own :class:`~repro.server.session.Session`.
Statement execution runs in a thread pool (``run_in_executor``), so the
event loop keeps accepting connections while readers execute
concurrently against COW snapshots; writes serialize on the database
write lock like any other session.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any, List, Optional, Tuple

from ..errors import ReproError
from .session import Session

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 5433

_NULL = "\\N"
_ESCAPES = [("\\", "\\\\"), ("\t", "\\t"), ("\n", "\\n"), ("\r", "\\r")]


def encode_value(value: Any) -> str:
    if value is None:
        return _NULL
    text = str(value)
    for raw, escaped in _ESCAPES:
        text = text.replace(raw, escaped)
    return text


def decode_value(text: str) -> Optional[str]:
    if text == _NULL:
        return None
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append({"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}.get(
                nxt, "\\" + nxt
            ))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class ReproServer:
    """Serve a shared :class:`~repro.db.Database` over the line protocol."""

    def __init__(
        self,
        db,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        use_plan_cache: bool = True,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.use_plan_cache = use_plan_cache
        self.connections = 0
        self._server: Optional[asyncio.AbstractServer] = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        loop = asyncio.get_running_loop()
        session = Session(self.db, use_plan_cache=self.use_plan_cache)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                statement = line.decode("utf-8").strip()
                if not statement:
                    continue
                if statement in ("\\q", "quit", "exit"):
                    break
                try:
                    result = await loop.run_in_executor(
                        None, session.execute, statement.rstrip(";")
                    )
                    payload = self._render(result)
                except ReproError as error:
                    message = str(error).replace("\n", " ")
                    payload = [f"error {message}"]
                except Exception as error:  # surface, never kill the loop
                    message = (
                        f"{type(error).__name__}: {error}".replace("\n", " ")
                    )
                    payload = [f"error {message}"]
                payload.append(".")
                writer.write(("\n".join(payload) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            session.close()
            writer.close()

    @staticmethod
    def _render(result) -> List[str]:
        if result.kind in ("query", "execute"):
            lines = [f"ok {len(result.rows)}"]
            lines.append("\t".join(result.columns))
            for row in result.rows:
                lines.append("\t".join(encode_value(v) for v in row))
            return lines
        return ["ok 0"]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        address = self._server.sockets[0].getsockname()
        self.port = address[1]  # resolve port 0 to the bound port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class ServerThread:
    """A :class:`ReproServer` on a background event loop.

    ``asyncio.start_server`` accepts connections as soon as it returns,
    so no ``serve_forever`` task is needed — the loop just runs forever
    on a daemon thread until :meth:`stop`. Used by the serving tests and
    ``benchmarks/bench_serving.py``; pass ``port=0`` to bind an
    ephemeral port and read it back from :attr:`port`.
    """

    def __init__(
        self,
        db,
        host: str = DEFAULT_HOST,
        port: int = 0,
        use_plan_cache: bool = True,
    ):
        self.server = ReproServer(db, host, port, use_plan_cache=use_plan_cache)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(timeout=10)
        return self

    def client(self) -> "LineClient":
        return LineClient(self.host, self.port)

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    db,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    use_plan_cache: bool = True,
) -> None:
    """Blocking entry point: serve *db* until interrupted."""
    server = ReproServer(db, host, port, use_plan_cache=use_plan_cache)

    async def run() -> None:
        await server.start()
        print(f"repro server listening on {server.host}:{server.port}")
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro server stopped")


class LineClient:
    """Synchronous line-protocol client (the ``repro connect`` side and
    the serving benchmark's workhorse)."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT):
        self._sock = socket.create_connection((host, port))
        self._file = self._sock.makefile("rwb")

    def execute(
        self, sql: str
    ) -> Tuple[List[str], List[Tuple[Optional[str], ...]]]:
        """Send one statement; returns ``(columns, rows)`` with every
        value as its text form (``None`` for NULL). Raises
        :class:`ReproError` on a server-reported error."""
        self._file.write((sql.replace("\n", " ").strip() + "\n").encode())
        self._file.flush()
        status = self._readline()
        if status.startswith("error "):
            self._drain()
            raise ReproError(status[len("error "):])
        if not status.startswith("ok "):
            raise ReproError(f"malformed server response: {status!r}")
        nrows = int(status[len("ok "):])
        columns: List[str] = []
        rows: List[Tuple[Optional[str], ...]] = []
        # "ok 0" is followed either directly by "." (an acknowledgement)
        # or by a header line then "." (an empty result set).
        header = self._readline()
        if header == ".":
            return columns, rows
        columns = header.split("\t")
        for _ in range(nrows):
            rows.append(
                tuple(
                    decode_value(cell)
                    for cell in self._readline().split("\t")
                )
            )
        sentinel = self._readline()
        if sentinel != ".":
            raise ReproError(f"missing response sentinel, got {sentinel!r}")
        return columns, rows

    def _readline(self) -> str:
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection")
        return line.decode("utf-8").rstrip("\n")

    def _drain(self) -> None:
        while True:
            if self._readline() == ".":
                return

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT) -> int:
    """Interactive client REPL (``repro connect``)."""
    try:
        client = LineClient(host, port)
    except OSError as error:
        print(f"cannot connect to {host}:{port}: {error}")
        return 1
    print(f"connected to repro server at {host}:{port} — \\q quits")
    try:
        while True:
            try:
                line = input("repro=> ")
            except EOFError:
                break
            statement = line.strip()
            if not statement:
                continue
            if statement in ("\\q", "quit", "exit"):
                break
            try:
                columns, rows = client.execute(statement)
            except ReproError as error:
                print(f"error: {error}")
                continue
            if columns:
                print("\t".join(columns))
                for row in rows:
                    print(
                        "\t".join("NULL" if v is None else v for v in row)
                    )
                print(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
            else:
                print("ok")
    finally:
        client.close()
    print("bye")
    return 0
