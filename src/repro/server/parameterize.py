"""Lift a bound query's outer literals into ``$n`` parameters.

This is the bridge between ad-hoc SQL and the prepared-statement path:
given a bound :class:`~repro.algebra.query.CanonicalQuery`, every
:class:`Literal` in the *outer* WHERE and HAVING clauses is replaced by
a positional :class:`Parameter` (numbered left-to-right from ``$1``)
and collected into a value vector. The pair feeds
``Session.prepare_bound`` + ``execute_prepared``, which must produce
the same answer as running the original query directly — the identity
the metamorphic fuzzer's plan-cache configuration asserts.

View-body literals are left alone on purpose: a view block's constants
are part of its definition (and of the plan-cache signature), not
per-execution inputs. LIMIT is structural, not an expression, so it
never parameterizes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..algebra.expressions import (
    And,
    Arith,
    Comparison,
    Expression,
    FuncCall,
    IsNull,
    Literal,
    Not,
    Or,
    Parameter,
)
from ..algebra.query import CanonicalQuery


def _lift(expression: Expression, values: List[Literal]) -> Expression:
    """Copy of *expression* with each literal replaced by the next
    parameter index; the literal is appended to *values*."""
    if isinstance(expression, Literal):
        values.append(expression)
        return Parameter(len(values))
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            _lift(expression.left, values),
            _lift(expression.right, values),
        )
    if isinstance(expression, Arith):
        return Arith(
            expression.op,
            _lift(expression.left, values),
            _lift(expression.right, values),
        )
    if isinstance(expression, And):
        return And([_lift(item, values) for item in expression.items])
    if isinstance(expression, Or):
        return Or([_lift(item, values) for item in expression.items])
    if isinstance(expression, Not):
        return Not(_lift(expression.item, values))
    if isinstance(expression, IsNull):
        return IsNull(_lift(expression.item, values), expression.negate)
    if isinstance(expression, FuncCall):
        return FuncCall(
            expression.func_name,
            expression.func,
            [_lift(arg, values) for arg in expression.args],
        )
    return expression


def parameterize_query(
    query: CanonicalQuery,
) -> Optional[Tuple[CanonicalQuery, List[Literal]]]:
    """Replace outer WHERE/HAVING literals with ``$1..$n``.

    Returns ``(parameterized_query, values)``, or ``None`` when the
    query has no outer literal to lift (nothing to PREPARE over).
    """
    values: List[Literal] = []
    predicates = tuple(_lift(p, values) for p in query.predicates)
    having = tuple(_lift(h, values) for h in query.having)
    if not values:
        return None
    parameterized = replace(query, predicates=predicates, having=having)
    return parameterized, values
