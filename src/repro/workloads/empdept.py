"""The emp/dept schema of the paper's running examples.

Example 1 (Section 3): employees under an age threshold earning more
than their department's average — the pull-up crossover depends on how
many employees pass the age filter and how many departments exist.
Example 2 (Section 4.1): average salary per department with a budget
filter — the invariant-grouping example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..cost.params import CostParams
from ..db import Database


@dataclass(frozen=True)
class EmpDeptConfig:
    """Shape of the generated emp/dept instance.

    - ``employees`` / ``departments``: table sizes.
    - ``young_fraction``: fraction of employees under the Example 1 age
      threshold (22) — the join selectivity knob of the crossover.
    - ``low_budget_fraction``: fraction of departments under the
      Example 2 budget threshold (1,000,000).
    """

    employees: int = 2000
    departments: int = 50
    young_fraction: float = 0.1
    low_budget_fraction: float = 0.5
    seed: int = 42
    memory_pages: int = 32
    with_indexes: bool = True
    uniform_ages: bool = False
    """When True, ages are uniform over [18, 65] (so the optimizer's
    uniformity assumption holds exactly) and ``young_fraction`` is
    ignored; selectivity is then controlled by the query's threshold."""

    @property
    def age_threshold(self) -> int:
        return 22

    @property
    def budget_threshold(self) -> float:
        return 1_000_000.0


def build_empdept(config: Optional[EmpDeptConfig] = None) -> Database:
    """Build a database holding the configured emp/dept instance."""
    config = config or EmpDeptConfig()
    rng = random.Random(config.seed)
    db = Database(CostParams(memory_pages=config.memory_pages))

    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept",
        [("dno", "int"), ("budget", "float"), ("loc", "int")],
        primary_key=["dno"],
    )

    employees = []
    for eno in range(config.employees):
        dno = rng.randrange(config.departments)
        salary = float(rng.randint(20_000, 120_000))
        if config.uniform_ages:
            age = rng.randint(18, 65)
        elif rng.random() < config.young_fraction:
            age = rng.randint(18, config.age_threshold - 1)
        else:
            age = rng.randint(config.age_threshold, 65)
        employees.append((eno, dno, salary, age))
    db.insert("emp", employees)

    departments = []
    for dno in range(config.departments):
        if rng.random() < config.low_budget_fraction:
            budget = float(rng.randint(100_000, 999_999))
        else:
            budget = float(rng.randint(1_000_000, 5_000_000))
        departments.append((dno, budget, rng.randrange(10)))
    db.insert("dept", departments)

    if config.with_indexes:
        db.create_index("emp_dno_idx", "emp", ["dno"])
        db.create_index("dept_dno_idx", "dept", ["dno"])
    db.add_foreign_key("emp", ["dno"], "dept", ["dno"])
    db.analyze()
    return db


EXAMPLE1_SQL = """
with a1(dno, asal) as (
    select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
)
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
"""
"""Example 1 in its aggregate-view form (queries A1/A2 of Section 3)."""

EXAMPLE1_NESTED_SQL = """
select e1.sal from emp e1
where e1.age < 22
  and e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)
"""
"""Example 1 as the correlated nested subquery it flattens from."""

EXAMPLE2_SQL = """
select e.dno, avg(e.sal) as asal from emp e, dept d
where e.dno = d.dno and d.budget < 1000000
group by e.dno
"""
"""Example 2 (Section 4.1), query C: the invariant-grouping example."""
