"""A TPC-D-flavoured decision-support schema at laptop scale.

The paper motivates its query class with decision-support workloads
("e.g., see TPC-D benchmark", Section 1). The real TPC-D data generator
and scale factors are not reproducible here, so this module builds a
seeded synthetic instance with the same *shape*: a large fact table
(lineitem), medium orders, and small dimensions (customer, supplier),
with the skews that make aggregate views interesting — many lineitems
per order, many orders per customer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..cost.params import CostParams
from ..db import Database


@dataclass(frozen=True)
class TpcdConfig:
    """Scale knobs (defaults keep full runs under a few seconds)."""

    customers: int = 150
    suppliers: int = 20
    orders: int = 1500
    lineitems_per_order: int = 4
    seed: int = 7
    memory_pages: int = 32

    @property
    def lineitems(self) -> int:
        return self.orders * self.lineitems_per_order


def build_tpcd_like(config: Optional[TpcdConfig] = None) -> Database:
    """Build the synthetic decision-support database."""
    config = config or TpcdConfig()
    rng = random.Random(config.seed)
    db = Database(CostParams(memory_pages=config.memory_pages))

    db.create_table(
        "customer",
        [("custkey", "int"), ("nation", "int"), ("acctbal", "float"),
         ("segment", "int")],
        primary_key=["custkey"],
    )
    db.create_table(
        "supplier",
        [("suppkey", "int"), ("nation", "int"), ("acctbal", "float")],
        primary_key=["suppkey"],
    )
    db.create_table(
        "orders",
        [("orderkey", "int"), ("custkey", "int"), ("orderdate", "int"),
         ("totalprice", "float")],
        primary_key=["orderkey"],
    )
    db.create_table(
        "lineitem",
        [("orderkey", "int"), ("linenumber", "int"), ("suppkey", "int"),
         ("quantity", "float"), ("price", "float"), ("discount", "float")],
        primary_key=["orderkey", "linenumber"],
    )

    db.insert(
        "customer",
        [
            (c, rng.randrange(25), float(rng.randint(-999, 40_000)),
             rng.randrange(5))
            for c in range(config.customers)
        ],
    )
    db.insert(
        "supplier",
        [
            (s, rng.randrange(25), float(rng.randint(-999, 9999)))
            for s in range(config.suppliers)
        ],
    )
    orders = []
    lineitems = []
    for o in range(config.orders):
        custkey = rng.randrange(config.customers)
        orderdate = rng.randint(0, 2556)  # days over ~7 years
        lines = max(1, rng.randint(1, 2 * config.lineitems_per_order - 1))
        total = 0.0
        for line in range(lines):
            quantity = float(rng.randint(1, 50))
            price = float(rng.randint(100, 10_000))
            discount = rng.randint(0, 10) / 100.0
            total += price * (1.0 - discount)
            lineitems.append(
                (o, line, rng.randrange(config.suppliers), quantity, price,
                 discount)
            )
        orders.append((o, custkey, orderdate, total))
    db.insert("orders", orders)
    db.insert("lineitem", lineitems)

    db.create_index("orders_custkey_idx", "orders", ["custkey"])
    db.create_index("lineitem_orderkey_idx", "lineitem", ["orderkey"])
    db.add_foreign_key("orders", ["custkey"], "customer", ["custkey"])
    db.add_foreign_key("lineitem", ["suppkey"], "supplier", ["suppkey"])
    db.analyze()
    return db


REVENUE_PER_CUSTOMER_SQL = """
with rev(orderkey, revenue) as (
    select l.orderkey, sum(l.price * (1 - l.discount))
    from lineitem l
    group by l.orderkey
)
select o.custkey, sum(r.revenue) as total
from orders o, rev r
where o.orderkey = r.orderkey and o.orderdate < 700
group by o.custkey
"""
"""An aggregate view over the fact table joined with a filtered orders
table then re-aggregated — the canonical decision-support shape."""

BIG_SPENDERS_SQL = """
select c.custkey, c.acctbal
from customer c
where c.acctbal > (
    select avg(o.totalprice) from orders o where o.custkey = c.custkey
)
"""
"""Customers whose balance exceeds their average order price —
a correlated nested subquery flattened via Kim's transformation."""

SUPPLIER_SHARE_SQL = """
with srev(suppkey, srevenue) as (
    select l.suppkey, sum(l.price * (1 - l.discount))
    from lineitem l
    group by l.suppkey
)
select s.nation, max(v.srevenue) as best
from supplier s, srev v
where s.suppkey = v.suppkey and s.acctbal > 0
group by s.nation
"""
"""Supplier revenue view rolled up by nation (outer group-by G0)."""
