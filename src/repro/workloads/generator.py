"""Seeded random canonical-form queries (Figure 3) over a star schema.

Used by the no-worse-guarantee experiment (E6), the search-space
experiment (E7), and the randomized correctness tests: every generated
query is well-formed by construction, small enough for the brute-force
reference evaluator, and exercises views, outer group-bys, HAVING
clauses, and multi-view joins in seed-controlled proportions.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import ColumnRef, Comparison, Expression, col, lit
from ..algebra.query import AggregateView, CanonicalQuery, QueryBlock, TableRef
from ..cost.params import CostParams
from ..db import Database


@dataclass(frozen=True)
class JoinWorkloadConfig:
    """Shape of a synthetic single-block join workload."""

    topology: str = "chain"  # chain | star | clique | disconnected
    leaves: int = 6
    seed: int = 0
    rows_base: int = 600
    # A large key domain makes the equijoins selective, so connected
    # join orders strictly dominate cross products and equal-cost plan
    # ties are rare.
    jk_domain: int = 1000
    # Smaller than most tables, so hash builds spill and sorts go
    # external: plan costs then depend on the join order.
    memory_pages: int = 4


@dataclass(frozen=True)
class JoinWorkload:
    """A single-block join workload for the DP enumerators.

    Everything :meth:`BlockOptimizer.optimize_block` needs, without
    this module importing the optimizer: callers build the
    ``GroupingSpec`` from ``group_keys``/``aggregates`` themselves.
    """

    db: Database
    relations: Tuple[TableRef, ...]
    predicates: Tuple[Expression, ...]
    group_keys: Tuple[Tuple[str, str], ...]
    aggregates: Tuple[Tuple[str, AggregateCall], ...]
    select: Tuple[Tuple[str, Expression], ...]


def _topology_edges(topology: str, leaves: int) -> List[Tuple[int, int]]:
    if topology == "chain":
        return [(i, i + 1) for i in range(leaves - 1)]
    if topology == "star":
        return [(0, i) for i in range(1, leaves)]
    if topology == "clique":
        return [
            (i, j) for i in range(leaves) for j in range(i + 1, leaves)
        ]
    if topology == "disconnected":
        # two independent chains (an optimizer must cross-product them)
        half = max(1, leaves // 2)
        edges = [(i, i + 1) for i in range(half - 1)]
        edges += [(i, i + 1) for i in range(half, leaves - 1)]
        return edges
    raise ValueError(f"unknown topology {topology!r}")


def build_join_workload(
    config: Optional[JoinWorkloadConfig] = None,
) -> JoinWorkload:
    """A fresh database of *leaves* relations wired as a chain, star,
    clique, or disconnected pair of chains, plus the single-block query
    joining them (grouped on the first relation's join key).

    Relation sizes grow with the position index so plan costs are
    non-degenerate: distinct join orders get distinct costs, which
    keeps the enumerator parity tests meaningful (ties would let two
    correct enumerators pick different equal-cost shapes).
    """
    config = config or JoinWorkloadConfig()
    if config.leaves < 2:
        raise ValueError("a join workload needs at least two relations")
    rng = random.Random(config.seed)
    db = Database(CostParams(memory_pages=config.memory_pages))
    aliases = [f"r{i}" for i in range(config.leaves)]
    for i in range(config.leaves):
        table = f"t{i}_{config.seed}"
        db.create_table(
            table,
            [("id", "int"), ("jk", "int"), ("v", "float")],
            primary_key=["id"],
        )
        rows = config.rows_base * (i + 1) + rng.randrange(config.rows_base)
        db.insert(
            table,
            [
                (
                    row,
                    rng.randrange(config.jk_domain),
                    float(rng.randint(0, 100)),
                )
                for row in range(rows)
            ],
        )
    db.analyze()

    relations = tuple(
        TableRef(f"t{i}_{config.seed}", aliases[i])
        for i in range(config.leaves)
    )
    predicates: List[Expression] = [
        Comparison(
            "=",
            ColumnRef(aliases[i], "jk"),
            ColumnRef(aliases[j], "jk"),
        )
        for i, j in _topology_edges(config.topology, config.leaves)
    ]
    # one local predicate so leaf access paths differ from bare scans
    predicates.append(
        Comparison(
            "<", ColumnRef(aliases[-1], "v"), lit(float(rng.randint(40, 80)))
        )
    )
    first = aliases[0]
    return JoinWorkload(
        db=db,
        relations=relations,
        predicates=tuple(predicates),
        group_keys=((first, "jk"),),
        aggregates=(
            ("total", AggregateCall("sum", ColumnRef(first, "v"))),
        ),
        select=(
            ("jk", ColumnRef(first, "jk")),
            ("total", ColumnRef(None, "total")),
        ),
    )


@dataclass(frozen=True)
class RandomQueryConfig:
    """Workload shape for the random generator."""

    seed: int = 0
    queries: int = 20
    fact_rows: int = 300
    dim_rows: int = 30
    categories: int = 6
    max_views: int = 2
    memory_pages: int = 16
    # NULL / empty-group shapes (0.0 / 0 keeps the paper's NULL-free
    # setting that the optimizer experiments assume).
    null_fraction: float = 0.0
    """Probability that a measure (``val``/``qty``/``price``) or a
    dim ``cat`` key is NULL. Any value > 0 also forces every fact row
    with ``flag = 2`` to carry a NULL ``qty``, so grouping by ``flag``
    always contains an all-NULL aggregate input group."""
    empty_categories: int = 0
    """Reserve the highest N ``cat`` values: no row ever lands there,
    so group-bys over ``cat`` see absent groups."""
    zipf_skew: float = 0.0
    """Zipf exponent for the fact table's foreign keys: ``d1_id`` and
    ``d2_id`` are drawn with P(k) ∝ 1/(k+1)^s, so dimension row 0 is
    the hottest join partner. 0.0 keeps the uniform draw (and the exact
    seed-for-seed data of older configs); 1.0–1.5 is realistic skew.
    This is what makes histograms and MCV-aware join estimates earn
    their keep in the fidelity benchmarks."""
    hot_category_fraction: float = 0.0
    """Probability that a dimension row's ``cat`` is the hot category
    (0) instead of a uniform draw — the hot/cold category knob for
    group-by estimate studies. 0.0 keeps the uniform draw."""


_AGG_FUNCS = ("sum", "avg", "min", "max", "count")
_FACT_MEASURES = ("qty", "price")


def _maybe_null(rng: random.Random, value, fraction: float):
    return None if fraction > 0 and rng.random() < fraction else value


class ZipfSampler:
    """Zipf-distributed ranks in ``[0, n)``: ``P(k) ∝ 1/(k+1)^s``.

    Sampling inverts a precomputed CDF, so a draw costs one
    ``rng.random()`` plus a binary search — cheap enough for
    million-row fact loads."""

    def __init__(self, n: int, s: float):
        if n < 1:
            raise ValueError("ZipfSampler needs a non-empty domain")
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        return bisect_left(self._cdf, rng.random())


def _fk_sampler(config: RandomQueryConfig) -> Optional[ZipfSampler]:
    if config.zipf_skew > 0:
        return ZipfSampler(config.dim_rows, config.zipf_skew)
    return None


def _category(
    rng: random.Random, config: RandomQueryConfig, populated: int
) -> int:
    # The zero-probability branch draws nothing, keeping older configs'
    # rng streams (and therefore their data) bit-identical.
    if (
        config.hot_category_fraction > 0
        and rng.random() < config.hot_category_fraction
    ):
        return 0
    return rng.randrange(populated)


def build_star_database(config: RandomQueryConfig) -> Database:
    """A small star schema: fact(f) referencing dim1/dim2.

    With ``null_fraction > 0`` the measure columns and the dim ``cat``
    keys carry NULLs (and fact rows with ``flag = 2`` always have a
    NULL ``qty``); ``empty_categories`` keeps the top of the ``cat``
    domain unpopulated. Both knobs default off."""
    rng = random.Random(config.seed)
    populated = max(1, config.categories - config.empty_categories)
    nullable = (
        ["cat", "val"] if config.null_fraction > 0 else None
    )
    db = Database(CostParams(memory_pages=config.memory_pages))
    db.create_table(
        "dim1",
        [("d1_id", "int"), ("cat", "int"), ("val", "float")],
        primary_key=["d1_id"],
        nullable=nullable,
    )
    db.create_table(
        "dim2",
        [("d2_id", "int"), ("cat", "int"), ("val", "float")],
        primary_key=["d2_id"],
        nullable=nullable,
    )
    db.create_table(
        "fact",
        [
            ("f_id", "int"),
            ("d1_id", "int"),
            ("d2_id", "int"),
            ("qty", "float"),
            ("price", "float"),
            ("flag", "int"),
        ],
        primary_key=["f_id"],
        nullable=["qty", "price"] if config.null_fraction > 0 else None,
    )
    for dim in ("dim1", "dim2"):
        db.insert(
            dim,
            [
                (
                    i,
                    _maybe_null(
                        rng,
                        _category(rng, config, populated),
                        config.null_fraction,
                    ),
                    _maybe_null(
                        rng,
                        float(rng.randint(0, 100)),
                        config.null_fraction,
                    ),
                )
                for i in range(config.dim_rows)
            ],
        )
    sampler = _fk_sampler(config)
    fact_rows = []
    for i in range(config.fact_rows):
        if sampler is not None:
            d1 = sampler.sample(rng)
            d2 = sampler.sample(rng)
        else:
            d1 = rng.randrange(config.dim_rows)
            d2 = rng.randrange(config.dim_rows)
        qty = _maybe_null(
            rng, float(rng.randint(1, 50)), config.null_fraction
        )
        price = _maybe_null(
            rng, float(rng.randint(10, 500)), config.null_fraction
        )
        flag = rng.randrange(3)
        if flag == 2 and config.null_fraction > 0:
            qty = None  # guaranteed all-NULL qty group under flag
        fact_rows.append((i, d1, d2, qty, price, flag))
    db.insert("fact", fact_rows)
    db.create_index("fact_d1_idx", "fact", ["d1_id"])
    db.create_index("fact_d2_idx", "fact", ["d2_id"])
    db.add_foreign_key("fact", ["d1_id"], "dim1", ["d1_id"])
    db.add_foreign_key("fact", ["d2_id"], "dim2", ["d2_id"])
    db.analyze()
    return db


def random_queries(
    config: Optional[RandomQueryConfig] = None,
) -> Tuple[Database, List[CanonicalQuery]]:
    """Build the star database and a list of random canonical queries."""
    config = config or RandomQueryConfig()
    db = build_star_database(config)
    rng = random.Random(config.seed + 1)
    queries = [
        _random_query(rng, index, config) for index in range(config.queries)
    ]
    return db, queries


def _random_view(
    rng: random.Random, name: str, config: RandomQueryConfig
) -> Tuple[AggregateView, str, str]:
    """One aggregate view over the fact table (optionally joined to a
    dimension). Returns (view, group output name, aggregate output
    name); the group output is always a fact FK column usable for
    joining outside."""
    fact_alias = f"{name}_f"
    group_column = rng.choice(("d1_id", "d2_id"))
    relations: List[TableRef] = [TableRef("fact", fact_alias)]
    predicates: List[Expression] = []

    if rng.random() < 0.4:
        # join a dimension inside the view (tests invariant splitting)
        dim = "dim1" if group_column == "d1_id" else "dim2"
        dim_alias = f"{name}_d"
        relations.append(TableRef(dim, dim_alias))
        predicates.append(
            Comparison(
                "=",
                ColumnRef(fact_alias, group_column),
                ColumnRef(dim_alias, f"{group_column}"),
            )
        )
        if rng.random() < 0.5:
            predicates.append(
                Comparison(
                    "<",
                    ColumnRef(dim_alias, "val"),
                    lit(float(rng.randint(30, 90))),
                )
            )
    if rng.random() < 0.5:
        predicates.append(
            Comparison(
                "=", ColumnRef(fact_alias, "flag"), lit(rng.randrange(3))
            )
        )

    func = rng.choice(_AGG_FUNCS)
    measure = rng.choice(_FACT_MEASURES)
    agg_arg = None if func == "count" else ColumnRef(fact_alias, measure)
    aggregates = (("agg_out", AggregateCall(func, agg_arg)),)
    having: Tuple[Expression, ...] = ()
    if rng.random() < 0.3 and func in ("sum", "avg", "min", "max"):
        having = (
            Comparison(">", ColumnRef(None, "agg_out"), lit(0.0)),
        )
    block = QueryBlock(
        relations=tuple(relations),
        predicates=tuple(predicates),
        group_by=(ColumnRef(fact_alias, group_column),),
        aggregates=aggregates,
        having=having,
        select=(
            ("gkey", ColumnRef(fact_alias, group_column)),
            ("agg_out", ColumnRef(None, "agg_out")),
        ),
    )
    return AggregateView(alias=name, block=block), "gkey", "agg_out"


def _random_query(
    rng: random.Random, index: int, config: RandomQueryConfig
) -> CanonicalQuery:
    view_count = rng.randint(1, config.max_views)
    views: List[AggregateView] = []
    view_info: List[Tuple[str, str, str]] = []
    for v in range(view_count):
        name = f"q{index}v{v}"
        view, group_out, agg_out = _random_view(rng, name, config)
        views.append(view)
        view_info.append((name, group_out, agg_out))

    base_tables: List[TableRef] = []
    predicates: List[Expression] = []
    select: List[Tuple[str, Expression]] = []

    # Join each view to a dimension (or to the first view) on its key.
    anchor_dim = rng.choice(("dim1", "dim2"))
    dim_alias = f"q{index}dim"
    dim_key = "d1_id" if anchor_dim == "dim1" else "d2_id"
    base_tables.append(TableRef(anchor_dim, dim_alias))
    first_alias, first_group, first_agg = view_info[0]
    # views group on d1_id or d2_id of fact; join to the matching dim
    first_view = views[0]
    group_source = first_view.block.group_by[0].name  # d1_id or d2_id
    if (group_source == "d1_id") != (anchor_dim == "dim1"):
        anchor_dim = "dim1" if group_source == "d1_id" else "dim2"
        dim_key = "d1_id" if anchor_dim == "dim1" else "d2_id"
        base_tables[0] = TableRef(anchor_dim, dim_alias)
    predicates.append(
        Comparison(
            "=",
            ColumnRef(dim_alias, dim_key),
            ColumnRef(first_alias, first_group),
        )
    )
    if rng.random() < 0.6:
        predicates.append(
            Comparison(
                "<", ColumnRef(dim_alias, "val"), lit(float(rng.randint(20, 95)))
            )
        )
    if rng.random() < 0.5:
        predicates.append(
            Comparison(
                ">", ColumnRef(first_alias, first_agg), lit(float(rng.randint(0, 50)))
            )
        )
    for extra_alias, extra_group, extra_agg in view_info[1:]:
        predicates.append(
            Comparison(
                "=",
                ColumnRef(first_alias, first_group),
                ColumnRef(extra_alias, extra_group),
            )
        )

    grouped = rng.random() < 0.4
    if grouped:
        group_by = (ColumnRef(dim_alias, "cat"),)
        func = rng.choice(("sum", "avg", "max", "min"))
        aggregates = (
            (
                "outer_agg",
                AggregateCall(func, ColumnRef(first_alias, first_agg)),
            ),
        )
        having: Tuple[Expression, ...] = ()
        if rng.random() < 0.4:
            having = (
                Comparison(">", ColumnRef(None, "outer_agg"), lit(1.0)),
            )
        select = [
            ("cat", ColumnRef(dim_alias, "cat")),
            ("outer_agg", ColumnRef(None, "outer_agg")),
        ]
        return CanonicalQuery(
            base_tables=tuple(base_tables),
            views=tuple(views),
            predicates=tuple(predicates),
            group_by=group_by,
            aggregates=aggregates,
            having=having,
            select=tuple(select),
        )

    select = [
        ("dim_val", ColumnRef(dim_alias, "val")),
        ("view_agg", ColumnRef(first_alias, first_agg)),
    ]
    for extra_alias, _, extra_agg in view_info[1:]:
        select.append((f"{extra_alias}_agg", ColumnRef(extra_alias, extra_agg)))
    return CanonicalQuery(
        base_tables=tuple(base_tables),
        views=tuple(views),
        predicates=tuple(predicates),
        select=tuple(select),
    )
