"""Workload generators.

- :mod:`empdept` — the paper's running example schema (emp, dept) with
  tunable sizes and selectivities, used by Examples 1 and 2 and the
  crossover benchmarks.
- :mod:`tpcdlike` — a TPC-D-flavoured decision-support schema
  (region/nation-free, laptop-scale: supplier, customer, orders,
  lineitem) standing in for the benchmark the paper's introduction
  motivates with.
- :mod:`generator` — a seeded random generator of canonical-form
  queries (Figure 3) for the no-worse-guarantee and search-space
  experiments.
"""

from .empdept import EmpDeptConfig, build_empdept
from .tpcdlike import TpcdConfig, build_tpcd_like
from .generator import (
    JoinWorkload,
    JoinWorkloadConfig,
    RandomQueryConfig,
    build_join_workload,
    random_queries,
)

__all__ = [
    "EmpDeptConfig",
    "build_empdept",
    "TpcdConfig",
    "build_tpcd_like",
    "JoinWorkload",
    "JoinWorkloadConfig",
    "RandomQueryConfig",
    "build_join_workload",
    "random_queries",
]
