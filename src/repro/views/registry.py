"""Materialized-view records: what the catalog stores per view.

A :class:`MaterializedView` ties together the view's bound definition,
the backing heap table holding its *partial* aggregates, the base-table
dependency set, and the staleness bookkeeping (an epoch counter plus a
per-base-table delta log) that drives incremental maintenance.

The backing table stores one row per group: the grouping columns first
(in GROUP BY order), then one column per partial aggregate from
``decompose_aggregates`` — e.g. an AVG view stores ``(key..., sum,
count)``, never the finished average. Storing partials is what makes
both rewrite-time coalescing (re-grouping to a coarser grain) and
merge-based incremental refresh possible. Views whose aggregates do not
decompose (holistic, e.g. MEDIAN) store finished values instead and are
flagged by ``partials is None``; they can be refreshed (always fully)
but never answer queries through the rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import Expression
from ..algebra.query import QueryBlock
from ..catalog.catalog import TableInfo

BACKING_PREFIX = "__mv__"
"""Backing tables live under this reserved prefix; the catalog resolves
them for scans and statistics but keeps them out of ``table_names()``."""


def backing_table_name(view_name: str) -> str:
    return BACKING_PREFIX + view_name


@dataclass
class MaterializedView:
    """One materialized aggregate view registered in the catalog."""

    name: str
    definition: Any
    """The ``ViewDefAst`` (opaque here; the binder owns its meaning)."""
    block: QueryBlock
    """The bound definition. Relation aliases are uniquified to
    ``{name}__{inner_alias}`` by ``Binder.bind_view_block``, the same
    spelling queries get when they reference the view by name — so the
    matcher's common case is an exact alias match."""
    key_columns: Tuple[Tuple[str, Any], ...]
    """``(backing_column, group_ref)`` per GROUP BY item, in order."""
    partials: Optional[Tuple[Tuple[str, AggregateCall], ...]]
    """``(backing_column, partial_call)`` per decomposed partial, or
    ``None`` when some aggregate is holistic."""
    coalescers: Tuple[Tuple[str, str], ...]
    """``(backing_column, coalescer_function)`` aligned with
    ``partials`` — how two partial values for the same group merge."""
    value_columns: Tuple[str, ...]
    """Holistic fallback: finished-aggregate column names (empty when
    ``partials`` is set)."""
    backing_info: TableInfo
    """The stored table (plus lazily computed statistics) the catalog
    serves under :func:`backing_table_name`."""
    deps: FrozenSet[str]
    """Base tables the view reads; inserts into any of them stale it."""
    spec_aggregates: Tuple[Tuple[str, AggregateCall], ...]
    """Aggregate list for the populate/refresh plan: partial calls when
    decomposable, the original calls otherwise."""
    backing_select: Tuple[Tuple[str, Expression], ...]
    """Select list producing backing-table rows from the grouped plan."""
    epoch: int = 0
    fresh_epoch: int = 0
    deltas: Dict[str, List[Tuple[Any, ...]]] = dataclass_field(
        default_factory=dict
    )

    @property
    def backing_name(self) -> str:
        return backing_table_name(self.name)

    @property
    def stale(self) -> bool:
        return self.epoch > self.fresh_epoch

    @property
    def is_decomposable(self) -> bool:
        return self.partials is not None

    def notify_insert(self, table: str, rows: Sequence[Tuple[Any, ...]]) -> None:
        """Record base-table inserts: bump the epoch and log the delta."""
        if table not in self.deps or not rows:
            return
        self.epoch += 1
        self.deltas.setdefault(table, []).extend(
            tuple(row) for row in rows
        )

    def mark_fresh(self) -> None:
        """After a refresh: drop the delta log and catch the epoch up."""
        self.fresh_epoch = self.epoch
        self.deltas.clear()
        self.invalidate_backing_stats()

    def invalidate_backing_stats(self) -> None:
        """Force statistics recomputation even when the refresh left the
        row count unchanged (growth-based staleness would miss an
        in-place rewrite of the backing table)."""
        self.backing_info.invalidate_stats()

    def describe(self) -> str:
        kind = "decomposable" if self.is_decomposable else "holistic"
        state = "stale" if self.stale else "fresh"
        return (
            f"materialized view {self.name} ({kind}, {state}, "
            f"{self.backing_info.table.num_rows} groups, "
            f"deps: {', '.join(sorted(self.deps))})"
        )
