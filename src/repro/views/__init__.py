"""Materialized aggregate views: registry, matching, rewrite, and
incremental maintenance.

Kept import-light on purpose: ``optimizer.canonical`` pulls in
``matcher``/``rewrite`` and ``db`` pulls in ``maintain``; importing the
heavy modules here would close an import cycle through the optimizer.
"""

from .registry import MaterializedView, backing_table_name

__all__ = ["MaterializedView", "backing_table_name"]
