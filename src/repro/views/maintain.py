"""Creation and maintenance of materialized aggregate views.

Creation binds the view body (the same path queries take), decomposes
its aggregates, and populates a backing table of *partial* aggregates
through the batch executor — so ``OperatorMetrics`` meter the populate
exactly like any query, and the IO counter charges the backing write.

Refresh comes in two flavors:

- **incremental** — when the aggregates decompose and the accumulated
  deltas touch exactly one occurrence of one base table, the partial
  aggregates of the *delta rows alone* are computed (by swapping a temp
  delta table into the view's FROM list) and merged into the stored
  groups through the aggregate accumulators' ``merge()`` — the cost
  scales with the delta, not the base table.
- **full** — recompute from the base tables; the fallback for holistic
  views, multi-table deltas, and self-join views where one table's
  delta would need joining against both old and new states.

Backing rows are kept sorted by the grouping columns in every path, so
an incremental refresh yields a backing table *byte-identical* to a
from-scratch recompute (floating-point caveats aside: sums re-associate,
which is exact for integers and whole-number floats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.aggregates import AggregateCall, aggregate_function
from ..algebra.expressions import ColumnRef, Expression
from ..algebra.query import QueryBlock, TableRef
from ..catalog.catalog import Catalog, TableInfo
from ..catalog.schema import Column
from ..cost.params import CostParams
from ..datatypes import null_ordered_key
from ..engine.context import ExecutionContext
from ..engine.executor import execute_plan
from ..engine.metrics import ExecutionMetrics
from ..errors import CatalogError, UnsupportedFeatureError
from ..optimizer.block import BaseLeaf, BlockOptimizer, GroupingSpec
from ..sql.binder import Binder
from ..storage.iocounter import IOCounter, IOSnapshot
from ..storage.table import HeapTable
from ..transforms.coalescing import decompose_aggregates
from .registry import MaterializedView, backing_table_name

DELTA_PREFIX = "__delta__"


@dataclass
class MaintenanceReport:
    """What one populate/refresh did and what it cost."""

    view: str
    mode: str
    """``initial`` | ``incremental`` | ``full`` | ``noop``."""
    delta_rows: int
    rows: int
    io: Optional[IOSnapshot] = None
    metrics: Optional[ExecutionMetrics] = None

    def describe(self) -> str:
        text = f"refresh {self.view}: {self.mode}"
        if self.mode != "noop":
            text += f", {self.rows} groups"
            if self.mode == "incremental":
                text += f" from {self.delta_rows} delta rows"
            if self.io is not None:
                text += f", {self.io.total} page IOs"
        return text


# ----------------------------------------------------------------------
# Creation
# ----------------------------------------------------------------------


def create_materialized_view(
    catalog: Catalog,
    io: IOCounter,
    params: Optional[CostParams],
    definition: Any,
) -> Tuple[MaterializedView, MaintenanceReport]:
    """Bind, lay out, and populate one materialized view. The caller
    (``db.py``) registers the result with the catalog."""
    name = definition.name
    block = Binder(catalog).bind_view_block(definition, name)
    if not block.is_grouped:
        raise UnsupportedFeatureError(
            f"materialized view {name!r} must have a GROUP BY: "
            "the subsystem materializes aggregate views (Section 2)"
        )
    if block.having:
        raise UnsupportedFeatureError(
            f"materialized view {name!r} has a HAVING clause; materialize "
            "the ungrouped-filter form and filter in queries instead"
        )

    layout = _layout(block)
    (
        key_columns,
        partials,
        coalescers,
        value_columns,
        spec_aggregates,
        backing_select,
    ) = layout

    plan = _partial_plan(
        catalog, params, block.relations, block.predicates,
        block.group_by, spec_aggregates, backing_select,
    )
    with io.measure() as span:
        context = ExecutionContext(catalog, io, params or CostParams())
        result = execute_plan(plan, context)
        rows = sorted(
            result.rows,
            key=lambda row: null_ordered_key(row[: len(key_columns)]),
        )
        # Backing columns are nullable throughout: group keys may come
        # from nullable base columns and partial aggregates of all-NULL
        # groups are themselves NULL.
        columns = [Column(f.name, f.dtype, nullable=True) for f in plan.schema]
        table = HeapTable(backing_table_name(name), columns)
        table.insert_many(rows)
        io.write_pages(table.num_pages)
    backing_info = TableInfo(table=table)

    view = MaterializedView(
        name=name,
        definition=definition,
        block=block,
        key_columns=key_columns,
        partials=partials,
        coalescers=coalescers,
        value_columns=value_columns,
        backing_info=backing_info,
        deps=frozenset(ref.table for ref in block.relations),
        spec_aggregates=spec_aggregates,
        backing_select=backing_select,
    )
    report = MaintenanceReport(
        view=name,
        mode="initial",
        delta_rows=0,
        rows=table.num_rows,
        io=span.delta,
        metrics=context.metrics,
    )
    return view, report


def _layout(block: QueryBlock):
    """Decide the backing-table columns: grouping keys first (named
    after the view's select list when possible), then one column per
    partial aggregate — or per finished aggregate for holistic views."""
    select_names: Dict[Tuple[Optional[str], str], str] = {}
    for output_name, source in block.select:
        if isinstance(source, ColumnRef):
            select_names.setdefault(source.key, output_name)

    used: set = set()
    key_columns: List[Tuple[str, ColumnRef]] = []
    for position, ref in enumerate(block.group_by):
        candidate = select_names.get(ref.key, ref.name)
        while candidate in used:
            candidate = f"k{position}_{candidate}"
        used.add(candidate)
        key_columns.append((candidate, ref))

    decomposed = decompose_aggregates(block.aggregates)
    if decomposed is not None:
        partials: List[Tuple[str, AggregateCall]] = []
        coalescers: List[Tuple[str, str]] = []
        for position, (_, call) in enumerate(decomposed.partials):
            candidate = f"p{position}"
            while candidate in used:
                candidate = "_" + candidate
            used.add(candidate)
            partials.append((candidate, call))
            coalescer = call.function().decompose(call.arg).coalescers[0]
            coalescers.append((candidate, coalescer))
        spec_aggregates = tuple(partials)
        value_columns: Tuple[str, ...] = ()
        partials_out: Optional[Tuple[Tuple[str, AggregateCall], ...]] = (
            tuple(partials)
        )
        coalescers_out = tuple(coalescers)
    else:
        # Holistic: store finished values; refresh is always full and
        # the rewrite never uses this view.
        values: List[Tuple[str, AggregateCall]] = []
        for output_name, call in block.aggregates:
            candidate = output_name
            while candidate in used:
                candidate = "v_" + candidate
            used.add(candidate)
            values.append((candidate, call))
        spec_aggregates = tuple(values)
        value_columns = tuple(column for column, _ in values)
        partials_out = None
        coalescers_out = ()

    backing_select: Tuple[Tuple[str, Expression], ...] = tuple(
        [
            (column, ColumnRef(ref.alias, ref.name))
            for column, ref in key_columns
        ]
        + [
            (column, ColumnRef(None, column))
            for column, _ in spec_aggregates
        ]
    )
    return (
        tuple(key_columns),
        partials_out,
        coalescers_out,
        value_columns,
        spec_aggregates,
        backing_select,
    )


def _partial_plan(
    catalog: Catalog,
    params: Optional[CostParams],
    relations: Tuple[TableRef, ...],
    predicates: Tuple[Expression, ...],
    group_by,
    spec_aggregates: Tuple[Tuple[str, AggregateCall], ...],
    backing_select: Tuple[Tuple[str, Expression], ...],
):
    """A traditional-DP plan computing one backing row per group."""
    optimizer = BlockOptimizer(catalog, params, mode="traditional")
    spec = GroupingSpec(
        group_keys=tuple(ref.key for ref in group_by),
        aggregates=spec_aggregates,
        having=(),
    )
    return optimizer.optimize_block(
        leaves=[BaseLeaf(ref) for ref in relations],
        predicates=predicates,
        spec=spec,
        select=backing_select,
    )


# ----------------------------------------------------------------------
# Refresh
# ----------------------------------------------------------------------


def refresh_materialized_view(
    catalog: Catalog,
    io: IOCounter,
    params: Optional[CostParams],
    name: str,
    mode: str = "auto",
) -> MaintenanceReport:
    """Bring one view up to date.

    ``mode="auto"`` (the default) picks incremental merge when legal,
    full recompute otherwise, and does nothing for a fresh view;
    ``mode="full"`` always recomputes from the base tables."""
    if mode not in ("auto", "full"):
        raise CatalogError(f"unknown refresh mode {mode!r}")
    view = catalog.materialized_view(name)
    if mode == "auto" and not view.stale:
        return MaintenanceReport(
            view=name,
            mode="noop",
            delta_rows=0,
            rows=view.backing_info.table.num_rows,
        )
    try:
        if mode == "auto":
            delta = _incremental_delta(view)
            if delta is not None:
                table_name, delta_rows = delta
                return _refresh_incremental(
                    catalog, io, params, view, table_name, delta_rows
                )
        return _refresh_full(catalog, io, params, view)
    finally:
        # The backing table's contents changed: cached plans whose cost
        # or answers depended on it must not be reused as-is.
        catalog.bump_epoch()


def refresh_stale_views(
    catalog: Catalog,
    io: IOCounter,
    params: Optional[CostParams],
    tables: Sequence[str],
) -> List[MaintenanceReport]:
    """Lazy refresh on read: freshen every stale *decomposable* view
    whose dependencies lie inside *tables* (the relations a query is
    about to touch). Holistic views never answer queries through the
    rewrite, so they only refresh on explicit REFRESH."""
    scope = set(tables)
    reports: List[MaintenanceReport] = []
    for view in catalog.materialized_views():
        if view.stale and view.is_decomposable and view.deps <= scope:
            reports.append(
                refresh_materialized_view(catalog, io, params, view.name)
            )
    return reports


def _incremental_delta(
    view: MaterializedView,
) -> Optional[Tuple[str, List[Tuple[Any, ...]]]]:
    """The (table, rows) delta if incremental merge is legal: the view
    decomposes, exactly one base table changed, and that table appears
    exactly once in the FROM list (a self-join delta would need the
    old-state/new-state split this model does not implement)."""
    if not view.is_decomposable:
        return None
    changed = [
        (table, rows) for table, rows in view.deltas.items() if rows
    ]
    if len(changed) != 1:
        return None
    table_name, rows = changed[0]
    occurrences = [
        ref for ref in view.block.relations if ref.table == table_name
    ]
    if len(occurrences) != 1:
        return None
    return table_name, rows


def _refresh_incremental(
    catalog: Catalog,
    io: IOCounter,
    params: Optional[CostParams],
    view: MaterializedView,
    table_name: str,
    delta_rows: List[Tuple[Any, ...]],
) -> MaintenanceReport:
    temp_name = DELTA_PREFIX + view.name
    base_columns = catalog.table(table_name).columns
    temp = catalog.create_table(temp_name, base_columns)
    try:
        temp.insert_many(delta_rows)
        relations = tuple(
            TableRef(temp_name, ref.alias)
            if ref.table == table_name
            else ref
            for ref in view.block.relations
        )
        plan = _partial_plan(
            catalog, params, relations, view.block.predicates,
            view.block.group_by, view.spec_aggregates, view.backing_select,
        )
        with io.measure() as span:
            context = ExecutionContext(catalog, io, params or CostParams())
            result = execute_plan(plan, context)
            merged = _merge_groups(view, result.rows, io)
            _replace_backing(view, merged, io)
    finally:
        catalog.drop_table(temp_name)
    view.mark_fresh()
    return MaintenanceReport(
        view=view.name,
        mode="incremental",
        delta_rows=len(delta_rows),
        rows=view.backing_info.table.num_rows,
        io=span.delta,
        metrics=context.metrics,
    )


def _refresh_full(
    catalog: Catalog,
    io: IOCounter,
    params: Optional[CostParams],
    view: MaterializedView,
) -> MaintenanceReport:
    delta_rows = sum(len(rows) for rows in view.deltas.values())
    plan = _partial_plan(
        catalog, params, view.block.relations, view.block.predicates,
        view.block.group_by, view.spec_aggregates, view.backing_select,
    )
    with io.measure() as span:
        context = ExecutionContext(catalog, io, params or CostParams())
        result = execute_plan(plan, context)
        rows = sorted(
            result.rows,
            key=lambda row: null_ordered_key(row[: len(view.key_columns)]),
        )
        _replace_backing(view, rows, io)
    view.mark_fresh()
    return MaintenanceReport(
        view=view.name,
        mode="full",
        delta_rows=delta_rows,
        rows=view.backing_info.table.num_rows,
        io=span.delta,
        metrics=context.metrics,
    )


def _merge_groups(
    view: MaterializedView,
    delta_groups: Sequence[Tuple[Any, ...]],
    io: IOCounter,
) -> List[Tuple[Any, ...]]:
    """Coalesce delta partials into the stored groups via ``merge()``."""
    width = len(view.key_columns)
    merged: Dict[Tuple[Any, ...], List[Any]] = {}
    for row in view.backing_info.table.scan(io):
        merged[row[:width]] = list(row)
    functions = [
        (width + position, aggregate_function(function_name))
        for position, (_, function_name) in enumerate(view.coalescers)
    ]
    for row in delta_groups:
        key = row[:width]
        current = merged.get(key)
        if current is None:
            merged[key] = list(row)
            continue
        for slot, function in functions:
            stored = function.make_accumulator()
            stored.add(current[slot])
            incoming = function.make_accumulator()
            incoming.add(row[slot])
            stored.merge(incoming)
            current[slot] = stored.value()
    rows = [tuple(row) for row in merged.values()]
    rows.sort(key=lambda row: null_ordered_key(row[:width]))
    return rows


def _replace_backing(
    view: MaterializedView, rows: Sequence[Tuple[Any, ...]], io: IOCounter
) -> None:
    table = view.backing_info.table
    # Copy-on-write publish: concurrent snapshot readers holding the old
    # row list keep scanning the pre-refresh contents unchanged.
    table.replace_rows(rows)
    io.write_pages(table.num_pages)
