"""Build the backing-table plan for a matched view rewrite.

Given a :class:`~repro.views.matcher.ViewMatch`, produce a plan whose
output schema is exactly the block's select list (one ``(None, name)``
field per entry — the same contract ``optimize_block`` honors, so the
canonical optimizer can swap this plan in wherever the block's plan
would go):

- **exact grouping** — each backing row is one result group already:
  scan (+ residual filters), optionally filter on the finalized HAVING,
  then project the finalized outputs straight off the stored partials.
- **coarser grouping** — the query groups are unions of view groups:
  scan (+ residual filters), re-group on the resolved backing key
  columns applying each partial's *coalescer* (Section 4.2's simple
  coalescing, running over stored partials instead of an early
  group-by), then finalize.

Residual predicates and HAVING move into backing-table space via the
match's column resolution plus ``finalize_substitution`` from the
shared :class:`~repro.transforms.coalescing.DecomposedAggregates`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import ColumnRef, Expression, FieldKey
from ..algebra.plan import (
    FilterNode,
    GroupByNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from ..algebra.query import QueryBlock
from ..catalog.schema import Field
from ..cost.model import CostModel
from .matcher import ViewMatch

SCAN_ALIAS_PREFIX = "__mv_scan__"
"""Backing scans get a reserved alias so they can never collide with a
user alias inside the rewritten plan."""


def build_rewrite_plan(
    match: ViewMatch, block: QueryBlock, model: CostModel
) -> PlanNode:
    """The annotated backing-table plan answering *block*."""
    view = match.view
    alias = SCAN_ALIAS_PREFIX + view.name
    table = view.backing_info.table
    fields = [
        Field(alias, column.name, column.dtype) for column in table.columns
    ]
    column_map: Dict[FieldKey, Expression] = {
        key: ColumnRef(alias, column)
        for key, column in match.key_resolution.items()
    }
    filters = tuple(p.substitute(column_map) for p in match.residuals)
    plan: PlanNode = ScanNode(view.backing_name, alias, fields, filters=filters)

    finalize = match.decomposed.finalize_substitution()
    if match.exact_grouping:
        # One backing row per result group: partials are already fully
        # coalesced, so finalizers read the stored columns directly.
        substitution = dict(column_map)
        for partial_name, column in match.partial_columns.items():
            substitution[(None, partial_name)] = ColumnRef(alias, column)
        having = tuple(
            p.substitute(finalize).substitute(substitution)
            for p in block.having
        )
        if having:
            plan = FilterNode(plan, having)
        outputs = [
            (None, name, source.substitute(finalize).substitute(substitution))
            for name, source in block.select
        ]
        plan = ProjectNode(plan, outputs)
    else:
        group_keys: List[FieldKey] = []
        for _, column in match.group_columns:
            key = (alias, column)
            if key not in group_keys:
                group_keys.append(key)
        aggregates: List[Tuple[str, AggregateCall]] = []
        for partial_name, partial_call in match.decomposed.partials:
            coalescer = partial_call.function().decompose(
                partial_call.arg
            ).coalescers[0]
            aggregates.append(
                (
                    partial_name,
                    AggregateCall(
                        coalescer,
                        ColumnRef(alias, match.partial_columns[partial_name]),
                    ),
                )
            )
        having = tuple(
            p.substitute(finalize).substitute(column_map)
            for p in block.having
        )
        plan = GroupByNode(
            plan,
            group_keys=group_keys,
            aggregates=aggregates,
            having=having,
            method="hash",
        )
        outputs = [
            (None, name, source.substitute(finalize).substitute(column_map))
            for name, source in block.select
        ]
        plan = ProjectNode(plan, outputs)
    model.annotate_tree(plan)
    return plan
