"""View matching: which materialized views can answer a query block?

The legality conditions follow Cohen & Nutt's rewriting framework for
aggregate queries using views, specialized to this model's dialect
(conjunctive predicates, no NULLs, bag semantics):

1. **Same SPJ scope** — the block joins the same multiset of base
   tables as the view body. Matching enumerates alias bijections that
   respect table names (a view over ``emp e`` matches a query over
   ``emp e2``).
2. **Predicate subsumption** — every view predicate, translated through
   the alias bijection, appears among the query's conjuncts (up to
   comparison flipping and ``=``/``!=`` operand order). The query may
   have *extra* predicates, but only over the view's grouping columns
   (directly or through an equi-join equivalence class); those become
   residual filters over the backing table. A query predicate over a
   non-grouping column would need row-level data the view aggregated
   away — the view is ineligible, never wrong.
3. **Grouping refinement** — every query grouping column resolves to a
   view grouping column (again up to equivalences), so query groups are
   unions of view groups and can be rebuilt by *coalescing* partials.
4. **Decomposable aggregates** — the query's aggregates decompose
   (``decompose_aggregates``), and every partial they need is stored by
   the view. Views whose own aggregates are holistic never match.

A successful match yields a :class:`ViewMatch` with everything
``views.rewrite`` needs to build the backing-table plan. Stale views
are skipped (the lazy-refresh hook in ``db.py`` freshens relevant views
before optimization, so skipping only matters for direct optimizer
use).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    COMPARISON_FLIP,
    ColumnRef,
    Comparison,
    Expression,
    FieldKey,
)
from ..algebra.query import EquivalenceClasses, QueryBlock
from ..transforms.coalescing import (
    DecomposedAggregates,
    decompose_aggregates,
)
from .registry import MaterializedView

_MAX_BIJECTIONS = 24
"""Cap on alias bijections tried per (block, view) pair; self-join
views beyond 4 copies of one table stop being enumerated exhaustively."""


@dataclass(frozen=True)
class ViewMatch:
    """One legal rewrite of a query block onto a materialized view."""

    view: MaterializedView
    key_resolution: Dict[FieldKey, str]
    """Query-space column key -> backing-table column, for every
    grouping column and residual-predicate column the rewrite needs."""
    group_columns: Tuple[Tuple[FieldKey, str], ...]
    """Per query GROUP BY item: (query key, backing column)."""
    residuals: Tuple[Expression, ...]
    """Query predicates not subsumed by the view (still in query space;
    the rewrite substitutes backing columns)."""
    decomposed: DecomposedAggregates
    """The query's aggregates decomposed into partials/coalescers."""
    partial_columns: Dict[str, str]
    """Query partial name (``__p0``...) -> backing partial column."""
    exact_grouping: bool
    """True when the query's groups coincide with the view's groups, so
    each backing row is one result group and no re-grouping is needed."""


def find_matches(
    block: QueryBlock, views: Sequence[MaterializedView]
) -> List[ViewMatch]:
    """All legal single-view rewrites of *block*, one per view."""
    matches: List[ViewMatch] = []
    for view in views:
        match = match_view(block, view)
        if match is not None:
            matches.append(match)
    return matches


def match_view(
    block: QueryBlock, view: MaterializedView
) -> Optional[ViewMatch]:
    if not view.is_decomposable or view.stale:
        return None
    if not block.is_grouped:
        # The view collapsed rows; an ungrouped block needs them back.
        return None
    if len(block.relations) != len(view.block.relations):
        return None
    if sorted(ref.table for ref in block.relations) != sorted(
        ref.table for ref in view.block.relations
    ):
        return None
    decomposed = decompose_aggregates(block.aggregates)
    if decomposed is None:
        return None
    for bijection in _alias_bijections(view.block, block):
        match = _match_under(block, view, bijection, decomposed)
        if match is not None:
            return match
    return None


def _alias_bijections(
    view_block: QueryBlock, block: QueryBlock
) -> List[Dict[str, str]]:
    """Table-name-respecting bijections: view alias -> query alias."""
    view_groups: Dict[str, List[str]] = {}
    for ref in view_block.relations:
        view_groups.setdefault(ref.table, []).append(ref.alias)
    query_groups: Dict[str, List[str]] = {}
    for ref in block.relations:
        query_groups.setdefault(ref.table, []).append(ref.alias)

    per_table: List[List[List[Tuple[str, str]]]] = []
    total = 1
    for table, view_aliases in sorted(view_groups.items()):
        query_aliases = query_groups.get(table, [])
        if len(query_aliases) != len(view_aliases):
            return []
        pairings = [
            list(zip(view_aliases, permutation))
            for permutation in itertools.permutations(query_aliases)
        ]
        total *= len(pairings)
        if total > _MAX_BIJECTIONS:
            pairings = pairings[:1]
        per_table.append(pairings)

    bijections: List[Dict[str, str]] = []
    for choice in itertools.product(*per_table):
        mapping: Dict[str, str] = {}
        for pairs in choice:
            mapping.update(dict(pairs))
        bijections.append(mapping)
        if len(bijections) >= _MAX_BIJECTIONS:
            break
    return bijections


def _rename(expression: Expression, alias_map: Dict[str, str]) -> Expression:
    mapping = {
        key: ColumnRef(alias_map[key[0]], key[1])
        for key in expression.columns()
        if key[0] in alias_map
    }
    return expression.substitute(mapping) if mapping else expression


def _rename_call(
    call: AggregateCall, alias_map: Dict[str, str]
) -> AggregateCall:
    if call.arg is None:
        return call
    return AggregateCall(call.func_name, _rename(call.arg, alias_map))


def _normalize(predicate: Expression) -> Expression:
    """Canonical spelling for set comparison: flip ``>``/``>=`` to
    ``<``/``<=`` and order commutative operands deterministically."""
    if not isinstance(predicate, Comparison):
        return predicate
    left, right, op = predicate.left, predicate.right, predicate.op
    if op in (">", ">="):
        op = COMPARISON_FLIP[op]
        left, right = right, left
    if op in ("=", "!=") and right.display() < left.display():
        left, right = right, left
    return Comparison(op, left, right)


def _match_under(
    block: QueryBlock,
    view: MaterializedView,
    bijection: Dict[str, str],
    decomposed: DecomposedAggregates,
) -> Optional[ViewMatch]:
    mapped_predicates = [
        _rename(p, bijection) for p in view.block.predicates
    ]
    query_normalized = {_normalize(p) for p in block.predicates}
    view_normalized = {_normalize(p) for p in mapped_predicates}
    if not view_normalized <= query_normalized:
        return None
    residuals = tuple(
        p for p in block.predicates if _normalize(p) not in view_normalized
    )

    # View grouping columns translated into query space.
    view_keys: Dict[FieldKey, str] = {}
    for column_name, ref in view.key_columns:
        view_keys[(bijection[ref.alias], ref.name)] = column_name

    equivalences = EquivalenceClasses(block.predicates)

    def resolve(key: FieldKey) -> Optional[str]:
        direct = view_keys.get(key)
        if direct is not None:
            return direct
        for member in sorted(equivalences.members(key), key=str):
            if member in view_keys:
                return view_keys[member]
        return None

    key_resolution: Dict[FieldKey, str] = {}
    group_columns: List[Tuple[FieldKey, str]] = []
    for ref in block.group_by:
        column = resolve(ref.key)
        if column is None:
            return None
        group_columns.append((ref.key, column))
        key_resolution[ref.key] = column
    for predicate in residuals:
        for key in predicate.columns():
            column = resolve(key)
            if column is None:
                return None
            key_resolution[key] = column

    # Every partial the query needs must be stored by the view. COUNT
    # partials are interchangeable regardless of argument: with no
    # NULLs in the model, count(x) = count(y) = count(*).
    view_partials = [
        (column, _rename_call(call, bijection))
        for column, call in (view.partials or ())
    ]
    partial_columns: Dict[str, str] = {}
    for partial_name, partial_call in decomposed.partials:
        column = _find_partial(partial_call, view_partials)
        if column is None:
            return None
        partial_columns[partial_name] = column

    resolved_columns = {column for _, column in group_columns}
    exact = resolved_columns == {column for column, _ in view.key_columns}
    return ViewMatch(
        view=view,
        key_resolution=key_resolution,
        group_columns=tuple(group_columns),
        residuals=residuals,
        decomposed=decomposed,
        partial_columns=partial_columns,
        exact_grouping=exact,
    )


def _find_partial(
    wanted: AggregateCall,
    available: Sequence[Tuple[str, AggregateCall]],
) -> Optional[str]:
    for column, call in available:
        if call == wanted:
            return column
    if wanted.func_name == "count":
        for column, call in available:
            if call.func_name == "count":
                return column
    return None
