"""Abstract syntax for the supported SQL dialect.

Scalar expressions reuse the algebra's :class:`Expression` classes
directly (the parser emits :class:`ColumnRef`, :class:`Comparison`, ...),
with two parse-only extensions that the binder eliminates:

- :class:`AggregateExpr` — an aggregate call appearing in a SELECT or
  HAVING position; the binder turns it into a named aggregate output.
- :class:`SubqueryExpr` — a parenthesized SELECT used as a scalar in a
  comparison; the binder unnests it (Kim's transformation) into an
  aggregate view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..algebra.expressions import Expression, FieldKey


@dataclass(frozen=True)
class TableRefAst:
    """``name [AS] alias`` in a FROM list; *name* may be a table or view."""

    name: str
    alias: Optional[str]


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: an expression with an optional output name."""

    expression: Expression
    output_name: Optional[str]


@dataclass(frozen=True)
class JoinClauseAst:
    """An explicit ``[kind] JOIN table [alias] ON expr`` clause.

    The FROM clause is a flat sequence: comma-separated table refs, each
    optionally followed by JOIN clauses. As in SQLite, comma and JOIN
    bind with equal precedence, left-associative — the left side of each
    JOIN clause is everything parsed before it. ``kind`` is ``inner``,
    ``left`` or ``cross`` (CROSS JOIN carries no ON).
    """

    kind: str
    table: TableRefAst
    on: Optional[Expression]


@dataclass(frozen=True)
class SelectStmt:
    """A (possibly nested) SELECT statement."""

    select_items: Tuple[SelectItem, ...]
    from_tables: Tuple[TableRefAst, ...]
    where: Optional[Expression]
    group_by: Tuple[Expression, ...]
    having: Optional[Expression]
    with_views: Tuple["ViewDefAst", ...] = ()
    order_by: Tuple[Tuple[Expression, bool], ...] = ()  # (expr, desc)
    limit: Optional[int] = None
    joins: Tuple[JoinClauseAst, ...] = ()


@dataclass(frozen=True)
class ViewDefAst:
    """``WITH name(col, ...) AS (select)``."""

    name: str
    column_names: Tuple[str, ...]
    body: SelectStmt


class AggregateExpr(Expression):
    """Parse-time aggregate call: ``func(expr)`` or ``count(*)``.

    Exists only between parser and binder; the binder replaces it with a
    reference to a named aggregate output column.
    """

    __slots__ = ("func_name", "arg")

    def __init__(self, func_name: str, arg: Optional[Expression]):
        self.func_name = func_name
        self.arg = arg

    def columns(self):
        return self.arg.columns() if self.arg is not None else frozenset()

    def substitute(self, mapping):
        if self.arg is None:
            return self
        return AggregateExpr(self.func_name, self.arg.substitute(mapping))

    def bind(self, schema):
        raise NotImplementedError(
            "AggregateExpr must be eliminated by the binder before execution"
        )

    def dtype(self, schema):
        raise NotImplementedError(
            "AggregateExpr must be eliminated by the binder"
        )

    def display(self) -> str:
        inner = self.arg.display() if self.arg is not None else "*"
        return f"{self.func_name}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggregateExpr)
            and self.func_name == other.func_name
            and self.arg == other.arg
        )

    def __hash__(self) -> int:
        return hash(("aggexpr", self.func_name, self.arg))


class SubqueryExpr(Expression):
    """Parse-time scalar subquery. The binder unnests it."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: SelectStmt):
        self.stmt = stmt

    def columns(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def bind(self, schema):
        raise NotImplementedError(
            "SubqueryExpr must be eliminated by the binder before execution"
        )

    def dtype(self, schema):
        raise NotImplementedError("SubqueryExpr must be eliminated by the binder")

    def display(self) -> str:
        return "(subquery)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubqueryExpr) and self.stmt == other.stmt

    def __hash__(self) -> int:
        return hash(("subquery", id(self.stmt)))


class InSubqueryExpr(Expression):
    """Parse-time ``expr [NOT] IN (SELECT ...)``. The binder lowers it
    to a :class:`repro.algebra.query.SubquerySpec`."""

    __slots__ = ("item", "stmt", "negate")

    def __init__(self, item: Expression, stmt: SelectStmt, negate: bool):
        self.item = item
        self.stmt = stmt
        self.negate = negate

    def columns(self):
        return self.item.columns()

    def substitute(self, mapping):
        return InSubqueryExpr(
            self.item.substitute(mapping), self.stmt, self.negate
        )

    def bind(self, schema):
        raise NotImplementedError(
            "InSubqueryExpr must be eliminated by the binder before execution"
        )

    def dtype(self, schema):
        raise NotImplementedError(
            "InSubqueryExpr must be eliminated by the binder"
        )

    def display(self) -> str:
        word = "not in" if self.negate else "in"
        return f"{self.item.display()} {word} (subquery)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InSubqueryExpr)
            and self.item == other.item
            and self.negate == other.negate
            and self.stmt == other.stmt
        )

    def __hash__(self) -> int:
        return hash(("in-subquery", self.item, self.negate, id(self.stmt)))


class ExistsExpr(Expression):
    """Parse-time ``EXISTS (SELECT ...)``. The binder lowers it to a
    :class:`repro.algebra.query.SubquerySpec` (negation arrives wrapped
    in :class:`repro.algebra.expressions.Not`)."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: SelectStmt):
        self.stmt = stmt

    def columns(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def bind(self, schema):
        raise NotImplementedError(
            "ExistsExpr must be eliminated by the binder before execution"
        )

    def dtype(self, schema):
        raise NotImplementedError(
            "ExistsExpr must be eliminated by the binder"
        )

    def display(self) -> str:
        return "exists (subquery)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExistsExpr) and self.stmt == other.stmt

    def __hash__(self) -> int:
        return hash(("exists", id(self.stmt)))
