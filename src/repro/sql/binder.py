"""Binder: parsed SQL to the canonical query form of Figure 3.

Responsibilities:

- resolve table/view names and (possibly unqualified) column references;
- instantiate WITH / catalog views, flattening aggregate-free SPJ views
  into the outer block (the traditional reduction, Section 3) and
  turning grouped views into :class:`AggregateView`s;
- lower explicit JOIN clauses: INNER/CROSS joins are sugar for the
  comma form, LEFT OUTER joins become :class:`JoinUnit`s on the
  canonical query;
- lower WHERE-clause subqueries (scalar comparisons, IN / NOT IN,
  EXISTS / NOT EXISTS, correlated or not) into neutral
  :class:`SubquerySpec`s; the decorrelation pass
  (``repro.transforms.decorrelate``) later flattens them into aggregate
  views and semi/anti join units (Kim's join-aggregate transformation,
  Section 1) or leaves them for naive mark-join execution;
- name aggregate outputs and enforce SQL's grouped-select discipline
  (Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    FieldKey,
    Not,
    and_all,
    conjuncts,
    equijoin_sides,
)
from ..algebra.query import (
    AggregateView,
    CanonicalQuery,
    JoinUnit,
    QueryBlock,
    SubquerySpec,
    TableRef,
    rename_block_aliases,
)
from ..catalog.catalog import Catalog
from ..errors import BindError, UnsupportedFeatureError
from .ast import (
    AggregateExpr,
    ExistsExpr,
    InSubqueryExpr,
    JoinClauseAst,
    SelectItem,
    SelectStmt,
    SubqueryExpr,
    TableRefAst,
    ViewDefAst,
)
from .parser import parse_select

_COMPARISON_FLIP = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    ">": "<",
    "<=": ">=",
    ">=": "<=",
}


def bind_sql(sql: str, catalog: Catalog) -> CanonicalQuery:
    """Parse and bind one SQL statement against *catalog*."""
    return Binder(catalog).bind(parse_select(sql))


class _Scope:
    """Name-resolution scope: alias -> available column names."""

    def __init__(self) -> None:
        self.columns: Dict[str, Set[str]] = {}
        # flattened SPJ view outputs: (alias, name) -> inner expression
        self.substitutions: Dict[FieldKey, Expression] = {}

    def add_alias(self, alias: str, columns: Sequence[str]) -> None:
        if alias in self.columns:
            raise BindError(f"duplicate alias {alias!r}")
        self.columns[alias] = set(columns)

    def resolve(self, reference: ColumnRef) -> Expression:
        if reference.alias is not None:
            substituted = self.substitutions.get(reference.key)
            if substituted is not None:
                return substituted
            available = self.columns.get(reference.alias)
            if available is None:
                raise BindError(f"unknown alias {reference.alias!r}")
            if reference.name not in available:
                raise BindError(
                    f"alias {reference.alias!r} has no column "
                    f"{reference.name!r}"
                )
            return reference
        matches = [
            alias
            for alias, names in self.columns.items()
            if reference.name in names
        ]
        if not matches:
            raise BindError(f"unknown column {reference.name!r}")
        if len(matches) > 1:
            raise BindError(
                f"ambiguous column {reference.name!r} "
                f"(candidates: {sorted(matches)})"
            )
        return self.resolve(ColumnRef(matches[0], reference.name))


class Binder:
    """Binds parsed statements to :class:`CanonicalQuery`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._generated = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def bind(self, stmt: SelectStmt) -> CanonicalQuery:
        view_defs: Dict[str, ViewDefAst] = {}
        for name in self.catalog.view_names():
            definition = self.catalog.view(name)
            if isinstance(definition, ViewDefAst):
                view_defs[name] = definition
        for view in stmt.with_views:
            if view.name in view_defs:
                raise BindError(f"view {view.name!r} defined twice")
            view_defs[view.name] = view

        scope = _Scope()
        base_tables: List[TableRef] = []
        agg_views: List[AggregateView] = []
        predicates: List[Expression] = []
        join_units: List[JoinUnit] = []
        subquery_specs: List[SubquerySpec] = []

        for table_ast in stmt.from_tables:
            alias = table_ast.alias or table_ast.name
            if table_ast.name in view_defs:
                self._instantiate_view(
                    view_defs[table_ast.name],
                    alias,
                    scope,
                    base_tables,
                    agg_views,
                    predicates,
                )
            elif self.catalog.has_table(table_ast.name):
                table = self.catalog.table(table_ast.name)
                scope.add_alias(alias, [c.name for c in table.columns])
                base_tables.append(TableRef(table_ast.name, alias))
            else:
                raise BindError(f"unknown table or view {table_ast.name!r}")

        # JOIN clauses: INNER/CROSS are sugar for the comma form (ON
        # conjuncts join WHERE); LEFT becomes a join unit. All aliases
        # enter scope before any ON expression is resolved.
        inner_on: List[Expression] = []
        left_clauses: List[Tuple[JoinClauseAst, str]] = []
        for clause in stmt.joins:
            alias = clause.table.alias or clause.table.name
            if clause.kind in ("inner", "cross"):
                if clause.table.name in view_defs:
                    self._instantiate_view(
                        view_defs[clause.table.name],
                        alias,
                        scope,
                        base_tables,
                        agg_views,
                        predicates,
                    )
                elif self.catalog.has_table(clause.table.name):
                    table = self.catalog.table(clause.table.name)
                    scope.add_alias(alias, [c.name for c in table.columns])
                    base_tables.append(TableRef(clause.table.name, alias))
                else:
                    raise BindError(
                        f"unknown table or view {clause.table.name!r}"
                    )
                if clause.on is not None:
                    inner_on.append(clause.on)
            else:  # left
                if clause.table.name in view_defs:
                    raise UnsupportedFeatureError(
                        "LEFT JOIN against a view is not supported; join a "
                        "base table"
                    )
                if not self.catalog.has_table(clause.table.name):
                    raise BindError(
                        f"unknown table or view {clause.table.name!r}"
                    )
                table = self.catalog.table(clause.table.name)
                scope.add_alias(alias, [c.name for c in table.columns])
                left_clauses.append((clause, alias))
        for on_expression in inner_on:
            for predicate in conjuncts(on_expression):
                predicates.append(self._resolve(predicate, scope))
        for clause, alias in left_clauses:
            on = tuple(
                self._resolve(predicate, scope)
                for predicate in conjuncts(clause.on)
            )
            join_units.append(
                JoinUnit(
                    alias=alias,
                    kind="left",
                    table=TableRef(clause.table.name, alias),
                    on=on,
                )
            )

        # WHERE: resolve, then lower subqueries to specs
        for predicate in conjuncts(stmt.where):
            resolved = self._resolve(predicate, scope, allow_subquery=True)
            plain, spec = self._lower_predicate(resolved, scope)
            predicates.extend(plain)
            if spec is not None:
                subquery_specs.append(spec)

        group_by, aggregates, having, select = self._bind_projection(
            stmt, scope
        )
        order_by = self._bind_order_by(stmt, scope, select)
        query = CanonicalQuery(
            base_tables=tuple(base_tables),
            views=tuple(agg_views),
            predicates=tuple(predicates),
            group_by=group_by,
            aggregates=aggregates,
            having=having,
            select=select,
            order_by=order_by,
            limit=stmt.limit,
            joins=tuple(join_units),
            subqueries=tuple(subquery_specs),
        )
        self._validate_outer(query)
        return query

    def _bind_order_by(self, stmt: SelectStmt, scope: _Scope, select):
        """Resolve ORDER BY items to SELECT output names.

        Ordering is presentation-level, so it must reference the query's
        outputs — by output name, or by the column a SELECT item copies.
        """
        if not stmt.order_by:
            return ()
        output_names = {name for name, _ in select}
        by_source = {}
        for name, source in select:
            if isinstance(source, ColumnRef):
                by_source.setdefault(source.key, name)
        resolved = []
        for expression, descending in stmt.order_by:
            if not isinstance(expression, ColumnRef):
                raise UnsupportedFeatureError(
                    "ORDER BY supports plain column references only"
                )
            if expression.alias is None and expression.name in output_names:
                resolved.append((expression.name, descending))
                continue
            target = self._resolve(expression, scope)
            if isinstance(target, ColumnRef) and target.key in by_source:
                resolved.append((by_source[target.key], descending))
                continue
            raise UnsupportedFeatureError(
                f"ORDER BY column {expression.display()} must be one of "
                "the selected outputs"
            )
        return tuple(resolved)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def bind_view_block(
        self, definition: ViewDefAst, instance_alias: str
    ) -> QueryBlock:
        """Bind a view body to a QueryBlock with uniquified aliases and
        outputs renamed to the view's declared column names."""
        body = definition.body
        if body.with_views:
            raise UnsupportedFeatureError("nested WITH inside a view body")
        if body.joins:
            raise UnsupportedFeatureError(
                "explicit JOIN clauses inside a view body are not "
                "supported; use the comma form"
            )
        if body.order_by or body.limit is not None:
            raise UnsupportedFeatureError(
                "ORDER BY / LIMIT inside a view body has no effect on the "
                "view's (bag) semantics and is rejected"
            )
        inner_scope = _Scope()
        relations: List[TableRef] = []
        for table_ast in body.from_tables:
            alias = table_ast.alias or table_ast.name
            if not self.catalog.has_table(table_ast.name):
                raise UnsupportedFeatureError(
                    f"view {definition.name!r} references {table_ast.name!r}, "
                    "which is not a base table (views over views are out of "
                    "scope)"
                )
            table = self.catalog.table(table_ast.name)
            inner_scope.add_alias(alias, [c.name for c in table.columns])
            relations.append(TableRef(table_ast.name, alias))

        where = [
            self._resolve(p, inner_scope) for p in conjuncts(body.where)
        ]
        group_refs: List[ColumnRef] = []
        for expression in body.group_by:
            resolved = self._resolve(expression, inner_scope)
            if not isinstance(resolved, ColumnRef):
                raise UnsupportedFeatureError(
                    "GROUP BY expressions (non-columns) are not supported"
                )
            group_refs.append(resolved)

        if len(body.select_items) != len(definition.column_names):
            raise BindError(
                f"view {definition.name!r} declares "
                f"{len(definition.column_names)} columns but selects "
                f"{len(body.select_items)}"
            )

        aggregates: List[Tuple[str, AggregateCall]] = []
        select: List[Tuple[str, Expression]] = []
        for output_name, item in zip(
            definition.column_names, body.select_items
        ):
            resolved = self._resolve(item.expression, inner_scope)
            if isinstance(resolved, AggregateExpr):
                call = AggregateCall(resolved.func_name, resolved.arg)
                aggregates.append((output_name, call))
                select.append((output_name, ColumnRef(None, output_name)))
            else:
                select.append((output_name, resolved))

        having: List[Expression] = []
        if body.having is not None:
            having_scope = _HavingRewriter(aggregates, self)
            for predicate in conjuncts(body.having):
                resolved = self._resolve(
                    predicate, inner_scope, allow_aggregates=True
                )
                having.append(having_scope.rewrite(resolved))
            aggregates = having_scope.aggregates

        block = QueryBlock(
            relations=tuple(relations),
            predicates=tuple(where),
            group_by=tuple(group_refs),
            aggregates=tuple(aggregates),
            having=tuple(having),
            select=tuple(select),
        )
        block.validate()
        # Uniquify inner aliases so one view can be referenced twice.
        alias_map = {
            ref.alias: f"{instance_alias}__{ref.alias}"
            for ref in block.relations
        }
        return rename_block_aliases(block, alias_map)

    def _instantiate_view(
        self,
        definition: ViewDefAst,
        alias: str,
        scope: _Scope,
        base_tables: List[TableRef],
        agg_views: List[AggregateView],
        predicates: List[Expression],
    ) -> None:
        block = self.bind_view_block(definition, alias)
        if block.is_grouped:
            scope.add_alias(alias, definition.column_names)
            agg_views.append(AggregateView(alias=alias, block=block))
            return
        # SPJ view: flatten into the outer block (traditional reduction).
        scope.add_alias(alias, definition.column_names)
        for output_name, source in block.select:
            scope.substitutions[(alias, output_name)] = source
        base_tables.extend(block.relations)
        predicates.extend(block.predicates)

    # ------------------------------------------------------------------
    # Expression resolution
    # ------------------------------------------------------------------

    def _resolve(
        self,
        expression: Expression,
        scope: _Scope,
        allow_subquery: bool = False,
        allow_aggregates: bool = False,
    ) -> Expression:
        if isinstance(expression, SubqueryExpr):
            if not allow_subquery:
                raise UnsupportedFeatureError(
                    "subqueries are only supported in the WHERE clause"
                )
            return expression  # lowered later, with its own scope
        if isinstance(expression, InSubqueryExpr):
            if not allow_subquery:
                raise UnsupportedFeatureError(
                    "subqueries are only supported in the WHERE clause"
                )
            return InSubqueryExpr(
                self._resolve(expression.item, scope),
                expression.stmt,
                expression.negate,
            )
        if isinstance(expression, ExistsExpr):
            if not allow_subquery:
                raise UnsupportedFeatureError(
                    "subqueries are only supported in the WHERE clause"
                )
            return expression  # lowered later, with its own scope
        if isinstance(expression, AggregateExpr):
            arg = (
                self._resolve(expression.arg, scope)
                if expression.arg is not None
                else None
            )
            return AggregateExpr(expression.func_name, arg)
        if isinstance(expression, ColumnRef):
            return scope.resolve(expression)
        mapping: Dict[FieldKey, Expression] = {}
        rebuilt = expression
        # Generic recursion: substitute() rebuilds children; we resolve
        # leaf ColumnRefs via a column mapping.
        for key in expression.columns():
            resolved = scope.resolve(ColumnRef(*key))
            mapping[key] = resolved
        rebuilt = expression.substitute(mapping) if mapping else expression
        rebuilt = self._resolve_nested_specials(
            rebuilt, scope, allow_subquery, allow_aggregates
        )
        return rebuilt

    def _resolve_nested_specials(
        self, expression, scope, allow_subquery, allow_aggregates
    ):
        """Resolve SubqueryExpr/AggregateExpr nested inside composites."""
        if isinstance(expression, Comparison):
            left = expression.left
            right = expression.right
            if isinstance(left, (SubqueryExpr, AggregateExpr)):
                left = self._resolve(
                    left, scope, allow_subquery, allow_aggregates
                )
            if isinstance(right, (SubqueryExpr, AggregateExpr)):
                right = self._resolve(
                    right, scope, allow_subquery, allow_aggregates
                )
            if left is not expression.left or right is not expression.right:
                return Comparison(expression.op, left, right)
        return expression

    # ------------------------------------------------------------------
    # Subquery lowering (to neutral specs; flattening happens in
    # transforms.decorrelate, which has the optimizer options in hand)
    # ------------------------------------------------------------------

    def _lower_predicate(
        self, predicate: Expression, scope: _Scope
    ) -> Tuple[List[Expression], Optional[SubquerySpec]]:
        """Split a resolved WHERE conjunct into plain predicates and an
        optional subquery spec."""
        if isinstance(predicate, InSubqueryExpr):
            if _contains_subquery(predicate.item):
                raise UnsupportedFeatureError(
                    "the left operand of IN (subquery) cannot itself "
                    "contain a subquery"
                )
            spec = self._lower_subquery_block(
                predicate.stmt,
                scope,
                kind="in",
                negate=predicate.negate,
                outer=predicate.item,
            )
            return [], spec
        if isinstance(predicate, ExistsExpr):
            return [], self._lower_subquery_block(
                predicate.stmt, scope, kind="exists"
            )
        if isinstance(predicate, Not) and isinstance(
            predicate.item, ExistsExpr
        ):
            return [], self._lower_subquery_block(
                predicate.item.stmt, scope, kind="exists", negate=True
            )
        if isinstance(predicate, Not) and isinstance(
            predicate.item, InSubqueryExpr
        ):
            inner = predicate.item
            return [], self._lower_subquery_block(
                inner.stmt,
                scope,
                kind="in",
                negate=not inner.negate,
                outer=inner.item,
            )
        if not isinstance(predicate, Comparison):
            self._reject_stray_subquery(predicate)
            return [predicate], None
        left_sub = isinstance(predicate.left, SubqueryExpr)
        right_sub = isinstance(predicate.right, SubqueryExpr)
        if not (left_sub or right_sub):
            self._reject_stray_subquery(predicate)
            return [predicate], None
        if left_sub and right_sub:
            raise UnsupportedFeatureError(
                "comparisons between two subqueries are not supported"
            )
        subquery = predicate.right if right_sub else predicate.left
        outer_side = predicate.left if right_sub else predicate.right
        assert isinstance(subquery, SubqueryExpr)
        if _contains_subquery(outer_side):
            raise UnsupportedFeatureError(
                "comparisons between two subqueries are not supported"
            )
        op = predicate.op if right_sub else _COMPARISON_FLIP[predicate.op]
        spec = self._lower_subquery_block(
            subquery.stmt, scope, kind="scalar", outer=outer_side, op=op
        )
        return [], spec

    def _reject_stray_subquery(self, predicate: Expression) -> None:
        """Subqueries are only supported as a top-level AND-ed conjunct
        (one side of a comparison, an IN/EXISTS test, or the NOT of
        one); anywhere else (inside OR/arithmetic) must fail at bind
        time, not at execution."""
        if isinstance(predicate, SubqueryExpr):
            raise UnsupportedFeatureError(
                "a subquery must appear on one side of a comparison"
            )
        if _contains_subquery(predicate):
            raise UnsupportedFeatureError(
                "subqueries are only supported as a top-level AND-ed "
                "conjunct (not inside OR/arithmetic)"
            )

    def _lower_subquery_block(
        self,
        stmt: SelectStmt,
        outer_scope: _Scope,
        kind: str,
        negate: bool = False,
        outer: Optional[Expression] = None,
        op: Optional[str] = None,
    ) -> SubquerySpec:
        """Bind one WHERE-clause subquery body to a neutral
        :class:`SubquerySpec` with uniquified inner aliases."""
        if (
            stmt.with_views
            or stmt.group_by
            or stmt.having is not None
            or stmt.order_by
            or stmt.limit is not None
            or stmt.joins
        ):
            raise UnsupportedFeatureError(
                "subqueries must be simple single-block SELECTs (no WITH/"
                "GROUP BY/HAVING/ORDER BY/LIMIT/JOIN inside a subquery)"
            )

        inner_scope = _Scope()
        relations: List[TableRef] = []
        for table_ast in stmt.from_tables:
            alias = table_ast.alias or table_ast.name
            if not self.catalog.has_table(table_ast.name):
                raise UnsupportedFeatureError(
                    "subqueries may only reference base tables"
                )
            table = self.catalog.table(table_ast.name)
            inner_scope.add_alias(alias, [c.name for c in table.columns])
            relations.append(TableRef(table_ast.name, alias))

        local: List[Expression] = []
        correlations: List[Tuple[ColumnRef, ColumnRef]] = []
        for predicate in conjuncts(stmt.where):
            split = self._split_correlation(
                predicate, inner_scope, outer_scope
            )
            if split is None:
                local.append(self._resolve(predicate, inner_scope))
            else:
                correlations.append(split)

        value: Optional[Expression] = None
        aggregate: Optional[AggregateCall] = None
        if kind == "scalar":
            if len(stmt.select_items) != 1:
                raise UnsupportedFeatureError(
                    "a scalar subquery must select exactly one value"
                )
            agg_item = stmt.select_items[0].expression
            if not isinstance(agg_item, AggregateExpr):
                raise UnsupportedFeatureError(
                    "only aggregate scalar subqueries are supported"
                )
            arg = (
                self._resolve(agg_item.arg, inner_scope)
                if agg_item.arg is not None
                else None
            )
            aggregate = AggregateCall(agg_item.func_name, arg)
        elif kind == "in":
            if len(stmt.select_items) != 1:
                raise UnsupportedFeatureError(
                    "IN (subquery) must select exactly one value"
                )
            item = stmt.select_items[0].expression
            if isinstance(item, AggregateExpr) or _contains_subquery(item):
                raise UnsupportedFeatureError(
                    "IN (subquery) must select a plain (non-aggregate) value"
                )
            value = self._resolve(item, inner_scope)

        spec_alias = self._fresh_name("sq")
        alias_map = {
            ref.alias: f"{spec_alias}__{ref.alias}" for ref in relations
        }

        def rename(expression: Expression) -> Expression:
            mapping = {
                key: ColumnRef(alias_map[key[0]], key[1])
                for key in expression.columns()
                if key[0] in alias_map
            }
            return (
                expression.substitute(mapping) if mapping else expression
            )

        return SubquerySpec(
            alias=spec_alias,
            kind=kind,
            negate=negate,
            op=op,
            outer=outer,
            relations=tuple(
                TableRef(ref.table, alias_map[ref.alias])
                for ref in relations
            ),
            local_predicates=tuple(rename(p) for p in local),
            correlations=tuple(
                (rename(inner), outer_ref)
                for inner, outer_ref in correlations
            ),
            value=rename(value) if value is not None else None,
            aggregate=(
                AggregateCall(
                    aggregate.func_name,
                    rename(aggregate.arg)
                    if aggregate.arg is not None
                    else None,
                )
                if aggregate is not None
                else None
            ),
        )

    def _split_correlation(
        self,
        predicate: Expression,
        inner_scope: _Scope,
        outer_scope: _Scope,
    ) -> Optional[Tuple[ColumnRef, ColumnRef]]:
        """If *predicate* is an equality correlating an inner column with
        an outer column, return ``(inner_ref, outer_ref)``; else None."""
        sides = equijoin_sides(predicate)
        if sides is None:
            return None
        resolved: List[Tuple[str, ColumnRef]] = []
        for key in sides:
            reference = ColumnRef(*key)
            try:
                inner = inner_scope.resolve(reference)
                resolved.append(("inner", inner))  # type: ignore[arg-type]
                continue
            except BindError:
                pass
            outer = outer_scope.resolve(reference)
            if not isinstance(outer, ColumnRef):
                raise UnsupportedFeatureError(
                    "correlation through a flattened view output is not "
                    "supported"
                )
            resolved.append(("outer", outer))
        kinds = {kind for kind, _ in resolved}
        if kinds == {"inner"}:
            return None
        if kinds == {"outer"}:
            raise BindError(
                "subquery predicate references only outer columns"
            )
        inner_ref = next(ref for kind, ref in resolved if kind == "inner")
        outer_ref = next(ref for kind, ref in resolved if kind == "outer")
        if not isinstance(inner_ref, ColumnRef):
            raise UnsupportedFeatureError(
                "correlation columns must be plain columns"
            )
        return inner_ref, outer_ref

    # ------------------------------------------------------------------
    # Outer projection / grouping
    # ------------------------------------------------------------------

    def _bind_projection(self, stmt: SelectStmt, scope: _Scope):
        group_refs: List[ColumnRef] = []
        for expression in stmt.group_by:
            resolved = self._resolve(expression, scope)
            if not isinstance(resolved, ColumnRef):
                raise UnsupportedFeatureError(
                    "GROUP BY expressions (non-columns) are not supported"
                )
            group_refs.append(resolved)

        aggregates: List[Tuple[str, AggregateCall]] = []

        def intern_aggregate(agg: AggregateExpr, hint: Optional[str]) -> str:
            call = AggregateCall(agg.func_name, agg.arg)
            for name, existing in aggregates:
                if existing == call:
                    return name
            name = hint or self._aggregate_name(agg, aggregates)
            if any(name == existing for existing, _ in aggregates):
                name = self._fresh_name(name)
            aggregates.append((name, call))
            return name

        select: List[Tuple[str, Expression]] = []
        for position, item in enumerate(stmt.select_items):
            resolved = self._resolve(
                item.expression, scope, allow_aggregates=True
            )
            if isinstance(resolved, AggregateExpr):
                name = intern_aggregate(resolved, item.output_name)
                select.append((name, ColumnRef(None, name)))
            else:
                name = item.output_name or self._output_name(
                    resolved, position
                )
                if any(name == existing for existing, _ in select):
                    name = self._fresh_name(name)
                select.append((name, resolved))

        having: List[Expression] = []
        if stmt.having is not None:
            for predicate in conjuncts(stmt.having):
                resolved = self._resolve(
                    predicate, scope, allow_aggregates=True
                )
                having.append(
                    _replace_aggregates(resolved, intern_aggregate)
                )

        if aggregates and not group_refs:
            raise UnsupportedFeatureError(
                "aggregates without GROUP BY (scalar aggregation) are not "
                "supported at the outer block"
            )
        return (
            tuple(group_refs),
            tuple(aggregates),
            tuple(having),
            tuple(select),
        )

    def _validate_outer(self, query: CanonicalQuery) -> None:
        self._reject_non_predicate_parameters(query)
        if not query.is_grouped:
            return
        group_keys = {reference.key for reference in query.group_by}
        agg_keys = {(None, name) for name, _ in query.aggregates}
        for name, source in query.select:
            for key in source.columns():
                if key not in group_keys and key not in agg_keys:
                    raise BindError(
                        f"selected column {key} must be a grouping column or "
                        "aggregate output (SQL semantics)"
                    )
        for predicate in query.having:
            for key in predicate.columns():
                if key not in group_keys and key not in agg_keys:
                    raise BindError(
                        f"HAVING column {key} must be a grouping column or "
                        "aggregate output"
                    )

    @staticmethod
    def _reject_non_predicate_parameters(query: CanonicalQuery) -> None:
        """Parameters (``$n``) stand for literal *values* in predicates;
        a parameter in a SELECT item or aggregate argument would have no
        type until EXECUTE, so the plan's schema could not be built."""
        from ..algebra.expressions import collect_parameters

        for name, source in query.select:
            if collect_parameters(source):
                raise BindError(
                    f"parameter in SELECT item {name!r}: parameters may "
                    "only appear in WHERE/HAVING predicates"
                )
        for _, call in query.aggregates:
            if call.arg is not None and collect_parameters(call.arg):
                raise BindError(
                    "parameter in an aggregate argument: parameters may "
                    "only appear in WHERE/HAVING predicates"
                )

    # ------------------------------------------------------------------
    # Name generation
    # ------------------------------------------------------------------

    def _fresh_name(self, stem: str) -> str:
        self._generated += 1
        return f"{stem}_{self._generated}"

    @staticmethod
    def _aggregate_name(agg: AggregateExpr, existing) -> str:
        if isinstance(agg.arg, ColumnRef):
            return f"{agg.func_name}_{agg.arg.name}"
        if agg.arg is None:
            return f"{agg.func_name}_all"
        return f"{agg.func_name}_{len(existing)}"

    @staticmethod
    def _output_name(expression: Expression, position: int) -> str:
        if isinstance(expression, ColumnRef):
            return expression.name
        return f"col_{position}"


class _HavingRewriter:
    """Replaces AggregateExprs in a view's HAVING clause with references
    to (possibly newly added) aggregate outputs."""

    def __init__(self, aggregates, binder: Binder):
        self.aggregates: List[Tuple[str, AggregateCall]] = list(aggregates)
        self._binder = binder

    def rewrite(self, expression: Expression) -> Expression:
        def intern(agg: AggregateExpr, hint: Optional[str]) -> str:
            call = AggregateCall(agg.func_name, agg.arg)
            for name, existing in self.aggregates:
                if existing == call:
                    return name
            name = hint or Binder._aggregate_name(agg, self.aggregates)
            if any(name == existing for existing, _ in self.aggregates):
                name = self._binder._fresh_name(name)
            self.aggregates.append((name, call))
            return name

        return _replace_aggregates(expression, intern)


def _contains_subquery(expression: Expression) -> bool:
    if isinstance(expression, (SubqueryExpr, InSubqueryExpr, ExistsExpr)):
        return True
    from ..algebra.expressions import And, Arith, Not, Or

    if isinstance(expression, (Comparison, Arith)):
        return _contains_subquery(expression.left) or _contains_subquery(
            expression.right
        )
    if isinstance(expression, (And, Or)):
        return any(_contains_subquery(item) for item in expression.items)
    if isinstance(expression, Not):
        return _contains_subquery(expression.item)
    return False


def _replace_aggregates(expression: Expression, intern) -> Expression:
    """Recursively replace AggregateExpr nodes with output references."""
    if isinstance(expression, AggregateExpr):
        return ColumnRef(None, intern(expression, None))
    from ..algebra.expressions import And, Arith, Not, Or

    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            _replace_aggregates(expression.left, intern),
            _replace_aggregates(expression.right, intern),
        )
    if isinstance(expression, Arith):
        return Arith(
            expression.op,
            _replace_aggregates(expression.left, intern),
            _replace_aggregates(expression.right, intern),
        )
    if isinstance(expression, And):
        return And(
            [_replace_aggregates(item, intern) for item in expression.items]
        )
    if isinstance(expression, Or):
        return Or(
            [_replace_aggregates(item, intern) for item in expression.items]
        )
    if isinstance(expression, Not):
        return Not(_replace_aggregates(expression.item, intern))
    return expression
