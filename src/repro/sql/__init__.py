"""SQL frontend: lexer, parser, and binder to the canonical query form.

Supports the paper's query class: SELECT-FROM-WHERE-GROUP BY-HAVING
blocks, ``WITH`` views (aggregate views and flattenable SPJ views),
references to catalog-registered views, and correlated nested subqueries
of Kim's join-aggregate class, which the binder unnests into aggregate
views (Section 1's route from nested subqueries to this paper's
optimizer).
"""

from .lexer import Token, tokenize
from .parser import parse_select
from .binder import Binder, bind_sql

__all__ = ["Token", "tokenize", "parse_select", "Binder", "bind_sql"]
