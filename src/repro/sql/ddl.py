"""DDL and DML statements: CREATE/DROP TABLE, CREATE/DROP INDEX,
INSERT, and the materialized-view statements.

The paper's scope is query optimization, so the data-definition layer
is deliberately small: enough to build and populate a database from SQL
scripts and the interactive shell.

Grammar::

    create_table := CREATE TABLE name "(" column ("," column)*
                    ["," PRIMARY KEY "(" names ")"] ")"
    column       := name type [NULL | NOT NULL | PRIMARY KEY]
    create_index := CREATE INDEX name ON table "(" names ")"
    insert       := INSERT INTO name VALUES row ("," row)*
    row          := "(" literal ("," literal)* ")"
    create_mview := CREATE MATERIALIZED VIEW name AS select
    refresh      := REFRESH MATERIALIZED VIEW name
    drop         := DROP (TABLE | INDEX | MATERIALIZED VIEW) name
    analyze      := ANALYZE [name]

CREATE MATERIALIZED VIEW is split by a regular expression rather than
the token stream: everything after AS is handed to the SELECT parser
verbatim (the lexer drops absolute offsets, so re-slicing tokens would
lose the original spelling).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..errors import SqlSyntaxError
from .lexer import Token, tokenize

_TYPE_WORDS = {
    "int", "integer", "float", "double", "str", "string", "text",
    "bool", "boolean", "date",
}


@dataclass(frozen=True)
class CreateTableStmt:
    """Parsed CREATE TABLE.

    ``nullable`` lists the columns declared with an explicit NULL
    marker; every other column is NOT NULL (the paper's default).
    """

    name: str
    columns: Tuple[Tuple[str, str], ...]  # (column, type name)
    primary_key: Tuple[str, ...] = ()
    nullable: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CreateIndexStmt:
    """Parsed CREATE INDEX."""

    name: str
    table: str
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class InsertStmt:
    """Parsed INSERT INTO ... VALUES."""

    table: str
    rows: Tuple[Tuple[Any, ...], ...]


@dataclass(frozen=True)
class CreateMaterializedViewStmt:
    """Parsed CREATE MATERIALIZED VIEW name AS <select>.

    The body stays SQL text; binding happens against the catalog when
    the statement executes (the view subsystem owns that)."""

    name: str
    body_sql: str


@dataclass(frozen=True)
class RefreshMaterializedViewStmt:
    """Parsed REFRESH MATERIALIZED VIEW name."""

    name: str


@dataclass(frozen=True)
class DropMaterializedViewStmt:
    """Parsed DROP MATERIALIZED VIEW name."""

    name: str


@dataclass(frozen=True)
class AnalyzeStmt:
    """Parsed ANALYZE [table]: collect statistics now, for one table
    (a materialized view name analyzes its backing) or all of them."""

    table: Optional[str] = None


@dataclass(frozen=True)
class DropTableStmt:
    """Parsed DROP TABLE name."""

    name: str


@dataclass(frozen=True)
class DropIndexStmt:
    """Parsed DROP INDEX name."""

    name: str


DdlStatement = object  # union of the statement dataclasses

_MATVIEW_RE = re.compile(
    r"create\s+materialized\s+view\s+(?P<name>[A-Za-z_]\w*)\s+as\s+"
    r"(?P<body>.+)\Z",
    re.IGNORECASE | re.DOTALL,
)


def maybe_parse_ddl(sql: str) -> Optional[DdlStatement]:
    """Parse *sql* as a DDL/DML statement, or return None if it does
    not start with CREATE/INSERT/DROP/REFRESH (i.e. it is a query)."""
    head = sql.lstrip().lower()
    if not (
        head.startswith("create")
        or head.startswith("insert")
        or head.startswith("drop")
        or head.startswith("refresh")
        or head.startswith("analyze")
    ):
        return None
    matview = _MATVIEW_RE.match(sql.strip())
    if matview is not None:
        return CreateMaterializedViewStmt(
            name=matview.group("name"), body_sql=matview.group("body")
        )
    return _DdlParser(tokenize(sql)).parse()


class _DdlParser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._position += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.current
        return SqlSyntaxError(
            f"{message} (found {token.text or '<eof>'!r})",
            token.line,
            token.column,
        )

    def expect_word(self, word: str) -> None:
        token = self.current
        text = token.text.lower()
        if token.kind in ("name", "keyword") and text == word:
            self.advance()
            return
        raise self.error(f"expected {word.upper()}")

    def accept_word(self, word: str) -> bool:
        token = self.current
        if token.kind in ("name", "keyword") and token.text.lower() == word:
            self.advance()
            return True
        return False

    def expect_name(self) -> str:
        if self.current.kind != "name":
            raise self.error("expected an identifier")
        return self.advance().text

    def expect_punct(self, char: str) -> None:
        token = self.current
        if token.kind == "punctuation" and token.text == char:
            self.advance()
            return
        raise self.error(f"expected {char!r}")

    def accept_punct(self, char: str) -> bool:
        token = self.current
        if token.kind == "punctuation" and token.text == char:
            self.advance()
            return True
        return False

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise self.error("unexpected trailing input")

    # ------------------------------------------------------------------

    def parse(self) -> DdlStatement:
        if self.accept_word("create"):
            if self.accept_word("table"):
                return self._create_table()
            if self.accept_word("index"):
                return self._create_index()
            if self.accept_word("materialized"):
                # The regex in maybe_parse_ddl handles the well-formed
                # statement; reaching here means a malformed one.
                raise self.error(
                    "expected CREATE MATERIALIZED VIEW <name> AS <select>"
                )
            raise self.error(
                "expected TABLE, INDEX, or MATERIALIZED VIEW after CREATE"
            )
        if self.accept_word("drop"):
            if self.accept_word("table"):
                name = self.expect_name()
                self.expect_eof()
                return DropTableStmt(name=name)
            if self.accept_word("index"):
                name = self.expect_name()
                self.expect_eof()
                return DropIndexStmt(name=name)
            if self.accept_word("materialized"):
                self.expect_word("view")
                name = self.expect_name()
                self.expect_eof()
                return DropMaterializedViewStmt(name=name)
            raise self.error(
                "expected TABLE, INDEX, or MATERIALIZED VIEW after DROP"
            )
        if self.accept_word("refresh"):
            self.expect_word("materialized")
            self.expect_word("view")
            name = self.expect_name()
            self.expect_eof()
            return RefreshMaterializedViewStmt(name=name)
        if self.accept_word("analyze"):
            table: Optional[str] = None
            if self.current.kind == "name":
                table = self.expect_name()
            self.expect_eof()
            return AnalyzeStmt(table=table)
        self.expect_word("insert")
        self.expect_word("into")
        return self._insert()

    def _create_table(self) -> CreateTableStmt:
        name = self.expect_name()
        self.expect_punct("(")
        columns: List[Tuple[str, str]] = []
        primary_key: List[str] = []
        nullable: List[str] = []
        while True:
            if self.accept_word("primary"):
                self.expect_word("key")
                self.expect_punct("(")
                primary_key.append(self.expect_name())
                while self.accept_punct(","):
                    primary_key.append(self.expect_name())
                self.expect_punct(")")
            else:
                column = self.expect_name()
                type_token = self.current
                type_name = type_token.text.lower()
                if (
                    type_token.kind not in ("name", "keyword")
                    or type_name not in _TYPE_WORDS
                ):
                    raise self.error(
                        f"expected a column type "
                        f"({', '.join(sorted(_TYPE_WORDS))})"
                    )
                self.advance()
                if self.accept_word("null"):
                    nullable.append(column)
                elif self.accept_word("not"):
                    self.expect_word("null")  # NOT NULL is the default
                elif self.accept_word("primary"):
                    self.expect_word("key")
                    primary_key.append(column)
                columns.append((column, type_name))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        self.expect_eof()
        if not columns:
            raise self.error("a table needs at least one column")
        return CreateTableStmt(
            name=name,
            columns=tuple(columns),
            primary_key=tuple(primary_key),
            nullable=tuple(nullable),
        )

    def _create_index(self) -> CreateIndexStmt:
        name = self.expect_name()
        self.expect_word("on")
        table = self.expect_name()
        self.expect_punct("(")
        columns = [self.expect_name()]
        while self.accept_punct(","):
            columns.append(self.expect_name())
        self.expect_punct(")")
        self.expect_eof()
        return CreateIndexStmt(name=name, table=table, columns=tuple(columns))

    def _insert(self) -> InsertStmt:
        table = self.expect_name()
        self.expect_word("values")
        rows = [self._row()]
        while self.accept_punct(","):
            rows.append(self._row())
        self.expect_eof()
        return InsertStmt(table=table, rows=tuple(rows))

    def _row(self) -> Tuple[Any, ...]:
        self.expect_punct("(")
        values = [self._literal()]
        while self.accept_punct(","):
            values.append(self._literal())
        self.expect_punct(")")
        return tuple(values)

    def _literal(self) -> Any:
        token = self.current
        negative = False
        if token.kind == "punctuation" and token.text == "-":
            self.advance()
            negative = True
            token = self.current
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return -value if negative else value
        if negative:
            raise self.error("expected a number after '-'")
        if token.kind == "string":
            self.advance()
            return token.text
        if token.is_keyword("null"):
            self.advance()
            return None
        if token.is_keyword("true"):
            self.advance()
            return True
        if token.is_keyword("false"):
            self.advance()
            return False
        raise self.error("expected a literal value")
