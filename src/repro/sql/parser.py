"""Recursive-descent parser for the supported SQL dialect.

Grammar (informal)::

    statement   := [WITH view ("," view)*] select EOF
    view        := name "(" name ("," name)* ")" AS "(" select ")"
    select      := SELECT [ALL] item ("," item)*
                   FROM from_item ("," from_item)*
                   [WHERE expr] [GROUP BY column ("," column)*]
                   [HAVING expr]
    from_item   := table join_clause*
    join_clause := [INNER] JOIN table ON expr
                 | LEFT [OUTER] JOIN table ON expr
                 | CROSS JOIN table
    item        := expr [AS name]
    table       := name [[AS] name]
    expr        := or-expr with the usual precedence:
                   OR < AND < NOT < comparison < additive < multiplicative
    comparison  := additive [IS [NOT] NULL | [NOT] BETWEEN ... |
                   [NOT] IN "(" (select | expr-list) ")" | op additive]
    primary     := literal | column | aggregate "(" (expr | "*") ")"
                 | EXISTS "(" select ")" | "(" expr ")" | "(" select ")"

As in SQLite, comma and JOIN bind with equal precedence and associate
left: ``A, B LEFT JOIN C ON e`` joins C against everything before it.
``RIGHT`` and ``FULL OUTER`` joins are rejected with a positioned
error.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..algebra.aggregates import known_aggregates
from ..algebra.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    Parameter,
)
from ..errors import SqlSyntaxError
from .ast import (
    AggregateExpr,
    ExistsExpr,
    InSubqueryExpr,
    JoinClauseAst,
    SelectItem,
    SelectStmt,
    SubqueryExpr,
    TableRefAst,
    ViewDefAst,
)
from .lexer import Token, tokenize


def parse_select(sql: str) -> SelectStmt:
    """Parse one SELECT statement (with optional WITH clause)."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._position += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.current
        found = token.text or "<end of input>"
        return SqlSyntaxError(
            f"{message} (found {found!r})", token.line, token.column
        )

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word.upper()}")

    def accept_punct(self, char: str) -> bool:
        if self.current.kind == "punctuation" and self.current.text == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self.error(f"expected {char!r}")

    def expect_name(self) -> str:
        if self.current.kind != "name":
            raise self.error("expected an identifier")
        return self.advance().text

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise self.error("unexpected trailing input")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> SelectStmt:
        views: List[ViewDefAst] = []
        if self.accept_keyword("with"):
            views.append(self.parse_view_def())
            while self.accept_punct(","):
                views.append(self.parse_view_def())
        select = self.parse_select_body()
        return SelectStmt(
            select_items=select.select_items,
            from_tables=select.from_tables,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            with_views=tuple(views),
            order_by=select.order_by,
            limit=select.limit,
            joins=select.joins,
        )

    def parse_view_def(self) -> ViewDefAst:
        name = self.expect_name()
        self.expect_punct("(")
        column_names = [self.expect_name()]
        while self.accept_punct(","):
            column_names.append(self.expect_name())
        self.expect_punct(")")
        self.expect_keyword("as")
        self.expect_punct("(")
        body = self.parse_select_body()
        self.expect_punct(")")
        return ViewDefAst(
            name=name, column_names=tuple(column_names), body=body
        )

    def parse_select_body(self) -> SelectStmt:
        self.expect_keyword("select")
        if self.current.is_keyword("distinct"):
            raise self.error("SELECT DISTINCT is not supported")
        self.accept_keyword("all")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        self.expect_keyword("from")
        tables = [self.parse_table_ref()]
        joins: List[JoinClauseAst] = []
        while True:
            if self.accept_punct(","):
                tables.append(self.parse_table_ref())
                continue
            clause = self.parse_join_clause()
            if clause is None:
                break
            joins.append(clause)
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        group_by: List[Expression] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_primary())
            while self.accept_punct(","):
                group_by.append(self.parse_primary())
        having = None
        if self.accept_keyword("having"):
            having = self.parse_expression()
        order_by = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("limit"):
            token = self.current
            if token.kind != "number" or "." in token.text:
                raise self.error("LIMIT expects an integer")
            self.advance()
            limit = int(token.text)
        return SelectStmt(
            select_items=tuple(items),
            from_tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            joins=tuple(joins),
        )

    def parse_join_clause(self) -> Optional[JoinClauseAst]:
        token = self.current
        if token.is_keyword("right"):
            raise self.error(
                "RIGHT [OUTER] JOIN is not supported; swap the sides and "
                "use LEFT JOIN"
            )
        if token.is_keyword("full"):
            raise self.error("FULL [OUTER] JOIN is not supported")
        if token.is_keyword("left"):
            self.advance()
            self.accept_keyword("outer")
            self.expect_keyword("join")
            table = self.parse_table_ref()
            self.expect_keyword("on")
            return JoinClauseAst("left", table, self.parse_expression())
        if token.is_keyword("cross"):
            self.advance()
            self.expect_keyword("join")
            return JoinClauseAst("cross", self.parse_table_ref(), None)
        if token.is_keyword("inner") or token.is_keyword("join"):
            if token.is_keyword("inner"):
                self.advance()
            self.expect_keyword("join")
            table = self.parse_table_ref()
            self.expect_keyword("on")
            return JoinClauseAst("inner", table, self.parse_expression())
        return None

    def parse_order_item(self):
        expression = self.parse_primary()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return (expression, descending)

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        output_name: Optional[str] = None
        if self.accept_keyword("as"):
            output_name = self.expect_name()
        elif self.current.kind == "name":
            output_name = self.advance().text
        return SelectItem(expression=expression, output_name=output_name)

    def parse_table_ref(self) -> TableRefAst:
        name = self.expect_name()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.current.kind == "name":
            alias = self.advance().text
        return TableRefAst(name=name, alias=alias)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        items = [self.parse_and()]
        while self.accept_keyword("or"):
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else Or(items)

    def parse_and(self) -> Expression:
        items = [self.parse_not()]
        while self.accept_keyword("and"):
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else And(items)

    def parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        if self.accept_keyword("is"):
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(left, negate=negated)
        negate = False
        if self.current.is_keyword("not"):
            following = self._tokens[self._position + 1]
            if following.is_keyword("between") or following.is_keyword("in"):
                self.advance()
                negate = True
            else:
                raise self.error("expected BETWEEN or IN after NOT here")
        if self.accept_keyword("between"):
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            expression: Expression = And(
                [
                    Comparison(">=", left, low),
                    Comparison("<=", left, high),
                ]
            )
            return Not(expression) if negate else expression
        if self.accept_keyword("in"):
            self.expect_punct("(")
            if self.current.is_keyword("select"):
                stmt = self.parse_select_body()
                self.expect_punct(")")
                return InSubqueryExpr(left, stmt, negate)
            values = [self.parse_expression()]
            while self.accept_punct(","):
                values.append(self.parse_expression())
            self.expect_punct(")")
            expression = (
                Or([Comparison("=", left, value) for value in values])
                if len(values) > 1
                else Comparison("=", left, values[0])
            )
            return Not(expression) if negate else expression
        if negate:
            raise self.error("expected BETWEEN or IN after NOT")
        if self.current.kind == "op":
            op = self.advance().text
            right = self.parse_additive()
            return Comparison(op, left, right)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while self.current.kind == "punctuation" and self.current.text in (
            "+",
            "-",
        ):
            op = self.advance().text
            right = self.parse_multiplicative()
            left = Arith(op, left, right)
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while self.current.kind == "punctuation" and self.current.text in (
            "*",
            "/",
        ):
            op = self.advance().text
            right = self.parse_unary()
            left = Arith(op, left, right)
        return left

    def parse_unary(self) -> Expression:
        if self.current.kind == "punctuation" and self.current.text == "-":
            self.advance()
            inner = self.parse_unary()
            if isinstance(inner, Literal) and isinstance(
                inner.value, (int, float)
            ):
                return Literal(-inner.value)
            return Arith("-", Literal(0), inner)
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if token.kind == "param":
            self.advance()
            return Parameter(int(token.text))
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            if not self.current.is_keyword("select"):
                raise self.error("EXISTS expects a (SELECT ...) subquery")
            stmt = self.parse_select_body()
            self.expect_punct(")")
            return ExistsExpr(stmt)
        if token.kind == "punctuation" and token.text == "(":
            self.advance()
            if self.current.is_keyword("select"):
                stmt = self.parse_select_body()
                self.expect_punct(")")
                return SubqueryExpr(stmt)
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        if token.kind == "name":
            return self.parse_name_expression()
        raise self.error("expected an expression")

    def parse_name_expression(self) -> Expression:
        name = self.expect_name()
        # aggregate call?
        if (
            self.current.kind == "punctuation"
            and self.current.text == "("
            and name.lower() in known_aggregates()
        ):
            self.advance()
            if self.accept_punct("*"):
                self.expect_punct(")")
                return AggregateExpr(name.lower(), None)
            arg = self.parse_expression()
            self.expect_punct(")")
            return AggregateExpr(name.lower(), arg)
        # qualified or bare column
        if self.accept_punct("."):
            column = self.expect_name()
            return ColumnRef(name, column)
        return ColumnRef(None, name)
