"""Tokenizer for the supported SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import SqlSyntaxError

KEYWORDS = {
    "select",
    "all",
    "distinct",
    "from",
    "where",
    "group",
    "by",
    "having",
    "as",
    "and",
    "or",
    "not",
    "with",
    "in",
    "exists",
    "order",
    "between",
    "asc",
    "desc",
    "limit",
    "true",
    "false",
    "is",
    "null",
    "join",
    "left",
    "right",
    "full",
    "outer",
    "inner",
    "cross",
    "on",
}

_PUNCTUATION = {
    "(": "lparen",
    ")": "rparen",
    ",": "comma",
    ".": "dot",
    "*": "star",
    "+": "plus",
    "-": "minus",
    "/": "slash",
}

_COMPARATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location (1-based)."""

    kind: str  # keyword | name | number | string | op | punctuation | eof
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word


def tokenize(sql: str) -> List[Token]:
    """Tokenize *sql*; raises :class:`SqlSyntaxError` on bad input."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    line = 1
    column = 1
    position = 0
    length = len(sql)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and sql[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = sql[position]
        if char.isspace():
            advance(1)
            continue
        if sql.startswith("--", position):
            while position < length and sql[position] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char.isalpha() or char == "_":
            end = position
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[position:end]
            lowered = word.lower()
            kind = "keyword" if lowered in KEYWORDS else "name"
            text = lowered if kind == "keyword" else word
            advance(end - position)
            yield Token(kind, text, start_line, start_column)
            continue
        if char.isdigit():
            end = position
            seen_dot = False
            while end < length and (
                sql[end].isdigit() or (sql[end] == "." and not seen_dot)
            ):
                if sql[end] == ".":
                    # "1." followed by a name is "1" then "." (qualified)
                    if end + 1 >= length or not sql[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            text = sql[position:end]
            advance(end - position)
            yield Token("number", text, start_line, start_column)
            continue
        if char == "'":
            end = position + 1
            while end < length and sql[end] != "'":
                end += 1
            if end >= length:
                raise SqlSyntaxError(
                    "unterminated string literal", start_line, start_column
                )
            text = sql[position + 1 : end]
            advance(end + 1 - position)
            yield Token("string", text, start_line, start_column)
            continue
        matched = False
        for comparator in _COMPARATORS:
            if sql.startswith(comparator, position):
                advance(len(comparator))
                text = "!=" if comparator == "<>" else comparator
                yield Token("op", text, start_line, start_column)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCTUATION:
            advance(1)
            yield Token("punctuation", char, start_line, start_column)
            continue
        if char == "$":
            end = position + 1
            while end < length and sql[end].isdigit():
                end += 1
            if end == position + 1:
                raise SqlSyntaxError(
                    "expected a parameter number after '$'",
                    start_line,
                    start_column,
                )
            text = sql[position + 1 : end]
            advance(end - position)
            yield Token("param", text, start_line, start_column)
            continue
        raise SqlSyntaxError(
            f"unexpected character {char!r}", start_line, start_column
        )
    yield Token("eof", "", line, column)
