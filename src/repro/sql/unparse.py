"""Render a canonical query back to SQL text.

The inverse of the binder, up to alias uniquification: the emitted SQL
re-binds to a semantically equivalent canonical query. Used for
debugging, for displaying what a transformation did to a query, and in
the round-trip property tests.
"""

from __future__ import annotations

from typing import List

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Expression,
    FuncCall,
    IsNull,
    Literal,
    Not,
    Or,
)
from ..algebra.query import (
    AggregateView,
    CanonicalQuery,
    JoinUnit,
    QueryBlock,
    SubquerySpec,
    TableRef,
)
from ..catalog.schema import RID_COLUMN
from ..errors import UnsupportedFeatureError


def expression_to_sql(expression: Expression) -> str:
    """SQL text of one scalar expression."""
    if isinstance(expression, ColumnRef):
        if expression.name == RID_COLUMN:
            raise UnsupportedFeatureError(
                "the hidden row id has no SQL spelling; unparse before "
                "pull-up introduces surrogate keys"
            )
        return expression.display()
    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)
    if isinstance(expression, Comparison):
        return (
            f"({expression_to_sql(expression.left)} {expression.op} "
            f"{expression_to_sql(expression.right)})"
        )
    if isinstance(expression, Arith):
        return (
            f"({expression_to_sql(expression.left)} {expression.op} "
            f"{expression_to_sql(expression.right)})"
        )
    if isinstance(expression, And):
        return " and ".join(
            expression_to_sql(item) for item in expression.items
        )
    if isinstance(expression, Or):
        return (
            "("
            + " or ".join(expression_to_sql(item) for item in expression.items)
            + ")"
        )
    if isinstance(expression, Not):
        return f"not {expression_to_sql(expression.item)}"
    if isinstance(expression, IsNull):
        suffix = "is not null" if expression.negate else "is null"
        return f"({expression_to_sql(expression.item)} {suffix})"
    if isinstance(expression, _AggregatePlaceholder):
        return aggregate_to_sql(expression.call)
    if isinstance(expression, FuncCall):
        raise UnsupportedFeatureError(
            f"scalar function {expression.func_name!r} has no SQL spelling"
        )
    raise UnsupportedFeatureError(
        f"cannot unparse expression type {type(expression).__name__}"
    )


def aggregate_to_sql(call: AggregateCall) -> str:
    """SQL text of one aggregate call."""
    if call.arg is None:
        return f"{call.func_name}(*)"
    return f"{call.func_name}({expression_to_sql(call.arg)})"


def block_to_sql(block: QueryBlock) -> str:
    """The SELECT text of one single-block query (no trailing newline)."""
    select_parts: List[str] = []
    aggregate_map = dict(block.aggregates)
    for name, source in block.select:
        if (
            isinstance(source, ColumnRef)
            and source.alias is None
            and source.name in aggregate_map
        ):
            select_parts.append(aggregate_to_sql(aggregate_map[source.name]))
        else:
            select_parts.append(expression_to_sql(source))
    from_parts = [f"{ref.table} {ref.alias}" for ref in block.relations]
    lines = [
        "select " + ", ".join(select_parts),
        "from " + ", ".join(from_parts),
    ]
    if block.predicates:
        lines.append(
            "where "
            + " and ".join(
                expression_to_sql(predicate)
                for predicate in block.predicates
            )
        )
    if block.group_by:
        lines.append(
            "group by "
            + ", ".join(ref.display() for ref in block.group_by)
        )
    if block.having:
        lines.append(
            "having "
            + " and ".join(
                expression_to_sql(_inline_aggregates(p, aggregate_map))
                for p in block.having
            )
        )
    return "\n".join(lines)


def _inline_aggregates(expression: Expression, aggregate_map):
    """Replace aggregate-output references with their calls so HAVING
    unparsing reads ``having avg(e.sal) > 5`` rather than a made-up
    column name."""
    mapping = {}
    for key in expression.columns():
        alias, name = key
        if alias is None and name in aggregate_map:
            mapping[key] = _AggregatePlaceholder(aggregate_map[name])
    return expression.substitute(mapping) if mapping else expression


class _AggregatePlaceholder(Expression):
    """Unparse-only wrapper rendering as the aggregate call."""

    def __init__(self, call: AggregateCall):
        self.call = call

    def columns(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def display(self):
        return self.call.display()

    def bind(self, schema):  # pragma: no cover - unparse-only
        raise NotImplementedError

    def dtype(self, schema):  # pragma: no cover - unparse-only
        raise NotImplementedError


def view_to_sql(view: AggregateView) -> str:
    """The WITH-clause definition text of one aggregate view.

    The binder uniquifies a view body's inner aliases by prefixing the
    instance alias (``r3__r1``); emitting them verbatim would compound
    on every re-bind (``r3__r3__r1``), so the prefix is stripped here —
    the emitted text re-binds (and re-mangles) to the same structure,
    making unparse a fixed point."""
    names = ", ".join(name for name, _ in view.block.select)
    body = block_to_sql(_strip_block_prefix(view.block, f"{view.alias}__"))
    body = body.replace("\n", "\n    ")
    return f"{view.alias}({names}) as (\n    {body}\n)"


def _strip_block_prefix(block: QueryBlock, prefix: str) -> QueryBlock:
    """A copy of *block* with the binder's ``{alias}__`` inner-alias
    mangling undone on every component."""

    def strip_expr(expression: Expression) -> Expression:
        return _strip_alias_prefix(expression, prefix)

    def strip_call(call: AggregateCall) -> AggregateCall:
        if call.arg is None:
            return call
        return AggregateCall(call.func_name, strip_expr(call.arg))

    return QueryBlock(
        relations=tuple(
            TableRef(
                ref.table,
                ref.alias[len(prefix):]
                if ref.alias.startswith(prefix)
                else ref.alias,
            )
            for ref in block.relations
        ),
        predicates=tuple(strip_expr(p) for p in block.predicates),
        group_by=tuple(strip_expr(c) for c in block.group_by),
        aggregates=tuple(
            (name, strip_call(call)) for name, call in block.aggregates
        ),
        having=tuple(strip_expr(p) for p in block.having),
        select=tuple(
            (name, strip_expr(source)) for name, source in block.select
        ),
    )


def _strip_alias_prefix(expression: Expression, prefix: str) -> Expression:
    """Undo the binder's ``{spec_alias}__`` inner-alias mangling so the
    emitted subquery re-binds (and re-mangles) cleanly."""
    mapping = {}
    for alias, name in expression.columns():
        if alias is not None and alias.startswith(prefix):
            mapping[(alias, name)] = ColumnRef(alias[len(prefix):], name)
    return expression.substitute(mapping) if mapping else expression


def subquery_to_sql(spec: SubquerySpec) -> str:
    """The WHERE-conjunct text of one subquery spec."""
    prefix = f"{spec.alias}__"

    def strip(expression: Expression) -> str:
        return expression_to_sql(_strip_alias_prefix(expression, prefix))

    from_parts = ", ".join(
        f"{ref.table} "
        + (
            ref.alias[len(prefix):]
            if ref.alias.startswith(prefix)
            else ref.alias
        )
        for ref in spec.relations
    )
    conjuncts = [strip(predicate) for predicate in spec.local_predicates]
    conjuncts += [
        f"({strip(inner)} = {expression_to_sql(outer)})"
        for inner, outer in spec.correlations
    ]
    where = " where " + " and ".join(conjuncts) if conjuncts else ""
    if spec.kind == "scalar":
        assert spec.aggregate is not None and spec.op is not None
        if spec.aggregate.arg is None:
            item = f"{spec.aggregate.func_name}(*)"
        else:
            item = f"{spec.aggregate.func_name}({strip(spec.aggregate.arg)})"
        body = f"(select {item} from {from_parts}{where})"
        return f"({expression_to_sql(spec.outer)} {spec.op} {body})"
    if spec.kind == "in":
        assert spec.value is not None and spec.outer is not None
        body = f"(select {strip(spec.value)} from {from_parts}{where})"
        keyword = "not in" if spec.negate else "in"
        return f"({expression_to_sql(spec.outer)} {keyword} {body})"
    # EXISTS cares only about emptiness; the binder never kept the
    # original select item, and ``select 1`` re-binds identically.
    keyword = "not exists" if spec.negate else "exists"
    return f"{keyword} (select 1 from {from_parts}{where})"


def _unit_to_sql(unit: JoinUnit) -> str:
    """The JOIN-clause text of one join unit."""
    if unit.kind != "left" or unit.table is None or unit.filters:
        # semi/anti and view-backed units exist only after
        # decorrelation; their SQL spelling is the subquery they came
        # from, which the flattening discarded.
        raise UnsupportedFeatureError(
            f"a {unit.kind} join unit has no SQL spelling"
        )
    condition = " and ".join(
        expression_to_sql(predicate) for predicate in unit.on
    )
    return f"left join {unit.table.table} {unit.alias} on {condition}"


def query_to_sql(query: CanonicalQuery) -> str:
    """SQL text of a canonical query.

    View instances are emitted as WITH definitions named after their
    aliases and referenced once each, which re-binds to the same
    canonical structure (modulo the binder's alias uniquification).
    """
    lines: List[str] = []
    if query.views:
        definitions = ",\n".join(view_to_sql(view) for view in query.views)
        lines.append("with " + definitions)
    aggregate_map = dict(query.aggregates)
    select_parts = []
    for name, source in query.select:
        if (
            isinstance(source, ColumnRef)
            and source.alias is None
            and source.name in aggregate_map
        ):
            rendered = aggregate_to_sql(aggregate_map[source.name])
        else:
            rendered = expression_to_sql(source)
        select_parts.append(f"{rendered} as {name}")
    lines.append("select " + ", ".join(select_parts))
    from_parts = [f"{ref.table} {ref.alias}" for ref in query.base_tables]
    from_parts.extend(f"{view.alias} {view.alias}" for view in query.views)
    from_line = "from " + ", ".join(from_parts)
    for unit in query.joins:
        from_line += " " + _unit_to_sql(unit)
    lines.append(from_line)
    where_parts = [expression_to_sql(p) for p in query.predicates]
    where_parts.extend(subquery_to_sql(spec) for spec in query.subqueries)
    if where_parts:
        lines.append("where " + " and ".join(where_parts))
    if query.group_by:
        lines.append(
            "group by " + ", ".join(ref.display() for ref in query.group_by)
        )
    if query.having:
        lines.append(
            "having "
            + " and ".join(
                expression_to_sql(_inline_aggregates(p, aggregate_map))
                for p in query.having
            )
        )
    if query.order_by:
        lines.append(
            "order by "
            + ", ".join(
                name + (" desc" if descending else "")
                for name, descending in query.order_by
            )
        )
    if query.limit is not None:
        lines.append(f"limit {query.limit}")
    return "\n".join(lines)
