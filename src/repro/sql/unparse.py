"""Render a canonical query back to SQL text.

The inverse of the binder, up to alias uniquification: the emitted SQL
re-binds to a semantically equivalent canonical query. Used for
debugging, for displaying what a transformation did to a query, and in
the round-trip property tests.
"""

from __future__ import annotations

from typing import List

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Expression,
    FuncCall,
    IsNull,
    Literal,
    Not,
    Or,
)
from ..algebra.query import AggregateView, CanonicalQuery, QueryBlock
from ..catalog.schema import RID_COLUMN
from ..errors import UnsupportedFeatureError


def expression_to_sql(expression: Expression) -> str:
    """SQL text of one scalar expression."""
    if isinstance(expression, ColumnRef):
        if expression.name == RID_COLUMN:
            raise UnsupportedFeatureError(
                "the hidden row id has no SQL spelling; unparse before "
                "pull-up introduces surrogate keys"
            )
        return expression.display()
    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)
    if isinstance(expression, Comparison):
        return (
            f"({expression_to_sql(expression.left)} {expression.op} "
            f"{expression_to_sql(expression.right)})"
        )
    if isinstance(expression, Arith):
        return (
            f"({expression_to_sql(expression.left)} {expression.op} "
            f"{expression_to_sql(expression.right)})"
        )
    if isinstance(expression, And):
        return " and ".join(
            expression_to_sql(item) for item in expression.items
        )
    if isinstance(expression, Or):
        return (
            "("
            + " or ".join(expression_to_sql(item) for item in expression.items)
            + ")"
        )
    if isinstance(expression, Not):
        return f"not {expression_to_sql(expression.item)}"
    if isinstance(expression, IsNull):
        suffix = "is not null" if expression.negate else "is null"
        return f"({expression_to_sql(expression.item)} {suffix})"
    if isinstance(expression, _AggregatePlaceholder):
        return aggregate_to_sql(expression.call)
    if isinstance(expression, FuncCall):
        raise UnsupportedFeatureError(
            f"scalar function {expression.func_name!r} has no SQL spelling"
        )
    raise UnsupportedFeatureError(
        f"cannot unparse expression type {type(expression).__name__}"
    )


def aggregate_to_sql(call: AggregateCall) -> str:
    """SQL text of one aggregate call."""
    if call.arg is None:
        return f"{call.func_name}(*)"
    return f"{call.func_name}({expression_to_sql(call.arg)})"


def block_to_sql(block: QueryBlock) -> str:
    """The SELECT text of one single-block query (no trailing newline)."""
    select_parts: List[str] = []
    aggregate_map = dict(block.aggregates)
    for name, source in block.select:
        if (
            isinstance(source, ColumnRef)
            and source.alias is None
            and source.name in aggregate_map
        ):
            select_parts.append(aggregate_to_sql(aggregate_map[source.name]))
        else:
            select_parts.append(expression_to_sql(source))
    from_parts = [f"{ref.table} {ref.alias}" for ref in block.relations]
    lines = [
        "select " + ", ".join(select_parts),
        "from " + ", ".join(from_parts),
    ]
    if block.predicates:
        lines.append(
            "where "
            + " and ".join(
                expression_to_sql(predicate)
                for predicate in block.predicates
            )
        )
    if block.group_by:
        lines.append(
            "group by "
            + ", ".join(ref.display() for ref in block.group_by)
        )
    if block.having:
        lines.append(
            "having "
            + " and ".join(
                expression_to_sql(_inline_aggregates(p, aggregate_map))
                for p in block.having
            )
        )
    return "\n".join(lines)


def _inline_aggregates(expression: Expression, aggregate_map):
    """Replace aggregate-output references with their calls so HAVING
    unparsing reads ``having avg(e.sal) > 5`` rather than a made-up
    column name."""
    mapping = {}
    for key in expression.columns():
        alias, name = key
        if alias is None and name in aggregate_map:
            mapping[key] = _AggregatePlaceholder(aggregate_map[name])
    return expression.substitute(mapping) if mapping else expression


class _AggregatePlaceholder(Expression):
    """Unparse-only wrapper rendering as the aggregate call."""

    def __init__(self, call: AggregateCall):
        self.call = call

    def columns(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def display(self):
        return self.call.display()

    def bind(self, schema):  # pragma: no cover - unparse-only
        raise NotImplementedError

    def dtype(self, schema):  # pragma: no cover - unparse-only
        raise NotImplementedError


def view_to_sql(view: AggregateView) -> str:
    """The WITH-clause definition text of one aggregate view."""
    names = ", ".join(name for name, _ in view.block.select)
    body = block_to_sql(view.block).replace("\n", "\n    ")
    return f"{view.alias}({names}) as (\n    {body}\n)"


def query_to_sql(query: CanonicalQuery) -> str:
    """SQL text of a canonical query.

    View instances are emitted as WITH definitions named after their
    aliases and referenced once each, which re-binds to the same
    canonical structure (modulo the binder's alias uniquification).
    """
    lines: List[str] = []
    if query.views:
        definitions = ",\n".join(view_to_sql(view) for view in query.views)
        lines.append("with " + definitions)
    aggregate_map = dict(query.aggregates)
    select_parts = []
    for name, source in query.select:
        if (
            isinstance(source, ColumnRef)
            and source.alias is None
            and source.name in aggregate_map
        ):
            rendered = aggregate_to_sql(aggregate_map[source.name])
        else:
            rendered = expression_to_sql(source)
        select_parts.append(f"{rendered} as {name}")
    lines.append("select " + ", ".join(select_parts))
    from_parts = [f"{ref.table} {ref.alias}" for ref in query.base_tables]
    from_parts.extend(f"{view.alias} {view.alias}" for view in query.views)
    lines.append("from " + ", ".join(from_parts))
    if query.predicates:
        lines.append(
            "where "
            + " and ".join(
                expression_to_sql(p) for p in query.predicates
            )
        )
    if query.group_by:
        lines.append(
            "group by " + ", ".join(ref.display() for ref in query.group_by)
        )
    if query.having:
        lines.append(
            "having "
            + " and ".join(
                expression_to_sql(_inline_aggregates(p, aggregate_map))
                for p in query.having
            )
        )
    if query.order_by:
        lines.append(
            "order by "
            + ", ".join(
                name + (" desc" if descending else "")
                for name, descending in query.order_by
            )
        )
    if query.limit is not None:
        lines.append(f"limit {query.limit}")
    return "\n".join(lines)
