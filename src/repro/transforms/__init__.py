"""The paper's transformations.

- :mod:`pullup` — the pull-up transformation (Section 3, Definition 1):
  defer a view's group-by past joins, at the query level (used by the
  optimizer's Φ(V′, W) construction) and at the plan level (Figure 1).
- :mod:`invariant` — invariant grouping push-down and the minimal
  invariant set (Section 4.1), including the plan-level Figure 2(a)
  rewrite.
- :mod:`coalescing` — simple coalescing grouping (Section 4.2, Figure
  2(b)) via the aggregate decomposability protocol.
- :mod:`propagate` — predicate propagation across blocks, the
  [MFPR90, LMS94] baseline the paper's introduction contrasts with.
- :mod:`unnest` — the Kim-style flattening entry point that turns
  correlated nested subqueries into aggregate-view queries (Section 1).
- :mod:`eager` — eager partial-aggregation derivations (beyond the
  paper: partial pushdown through joins with a COUNT-carry for
  duplicate-sensitive merges), consumed by the block DP.
"""

from .eager import (
    carry_aggregates,
    eager_group_keys,
    partial_aggregates,
    weighted_coalescers,
    weighted_partials,
)
from .pullup import pull_up, pull_up_plan, key_columns
from .invariant import (
    apply_invariant_split,
    minimal_invariant_set,
    push_down_plan,
    removable_aliases,
)
from .coalescing import coalesce_plan, decompose_aggregates
from .propagate import propagate_predicates
from .unnest import unnest_sql

__all__ = [
    "pull_up",
    "pull_up_plan",
    "key_columns",
    "apply_invariant_split",
    "minimal_invariant_set",
    "push_down_plan",
    "removable_aliases",
    "coalesce_plan",
    "decompose_aggregates",
    "propagate_predicates",
    "unnest_sql",
    "carry_aggregates",
    "eager_group_keys",
    "partial_aggregates",
    "weighted_coalescers",
    "weighted_partials",
]
