"""Invariant grouping push-down and the minimal invariant set
(Section 4.1, Figure 2(a)).

Invariant grouping moves a group-by operator *past* a join: relations
that do not feed any aggregate, join on grouping-equivalent columns, and
match at most one partner per group (their join columns cover a key) can
be evaluated after the group-by instead of before it. Applying the
transformation to a view until it no longer applies leaves the view's
**minimal invariant set** V′ — the smallest set of relations that must
be joined before the group-by. The Section 5 optimizer treats relations
outside V′ like outer base tables (the B′ construction).

Soundness conditions for removing relation *s* from under G(V):

1. no aggregate argument references *s*;
2. every predicate connecting *s* to the rest is an equi-join whose
   retained-side column is (equivalent to) a grouping column — so all
   rows of a group agree on their *s* partner;
3. the *s*-side join columns cover a declared key of *s* — so each
   group has at most one partner and neither aggregate values nor
   output multiplicity change;
4. grouping columns (and select outputs) sourced from *s* have
   retained-side equivalents to rewrite to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..algebra.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    FieldKey,
    equijoin_sides,
)
from ..algebra.plan import GroupByNode, JoinNode, PlanNode, RenameNode, ScanNode
from ..algebra.query import (
    AggregateView,
    CanonicalQuery,
    QueryBlock,
    TableRef,
)
from ..catalog.catalog import Catalog
from ..errors import TransformError


@dataclass
class _Removal:
    """Bookkeeping for one removable relation."""

    ref: TableRef
    local_predicates: Tuple[Expression, ...]
    # (s-side column, retained grouping column to join against outside)
    join_pairs: Tuple[Tuple[ColumnRef, ColumnRef], ...]
    # rewriting of s-sourced grouping/select columns to retained ones
    rewrite: Dict[FieldKey, Expression]


def _try_remove(
    block: QueryBlock, alias: str, catalog: Catalog
) -> Optional[_Removal]:
    """Check the soundness conditions for removing *alias*; on success
    return the removal recipe, else None."""
    retained = block.aliases - {alias}
    if not retained:
        return None

    # Condition 1: no aggregate argument from s.
    for _, call in block.aggregates:
        if alias in call.aliases():
            return None

    group_keys = {reference.key for reference in block.group_by}
    # Full equivalence classes over the block's equi-joins: every
    # equality holds on every joined row *before* grouping, so class
    # members are interchangeable for the constancy arguments below.
    from ..algebra.query import EquivalenceClasses

    equivalence = EquivalenceClasses(block.predicates)

    def class_members(key: FieldKey) -> Set[FieldKey]:
        members = equivalence.members(key)
        members.add(key)
        return members

    def retained_substitute(key: FieldKey) -> Optional[FieldKey]:
        """A retained-side column equal to *key* on every joined row
        (used to rewrite s-sourced grouping/select columns)."""
        for member in sorted(class_members(key), key=str):
            if member[0] in retained:
                return member
        return None

    def exposed_join_column(r_key: FieldKey) -> Optional[FieldKey]:
        """The (post-rewrite) grouping column the removed relation will
        join against outside. Requires a grouping column in r_key's
        equivalence class; if that grouping column itself comes from the
        removed relation, it gets rewritten to a retained member."""
        members = class_members(r_key)
        grouping_members = [k for k in members if k in group_keys]
        if not grouping_members:
            return None
        for member in sorted(grouping_members, key=str):
            if member[0] != alias:
                return member
        # the grouping column is s-sourced; it will be rewritten to a
        # retained class member, which is then the exposed column
        return retained_substitute(r_key)

    local: List[Expression] = []
    join_pairs: List[Tuple[ColumnRef, ColumnRef]] = []
    s_join_columns: Set[str] = set()
    for predicate in block.predicates:
        aliases = predicate.aliases()
        if alias not in aliases:
            continue
        if aliases == {alias}:
            local.append(predicate)
            continue
        # Condition 2: cross predicates must be grouping-column equijoins.
        sides = equijoin_sides(predicate)
        if sides is None:
            return None
        left, right = sides
        s_key, r_key = (left, right) if left[0] == alias else (right, left)
        if s_key[0] != alias or r_key[0] not in retained:
            return None
        grouping_key = exposed_join_column(r_key)
        if grouping_key is None:
            return None
        join_pairs.append((ColumnRef(*s_key), ColumnRef(*grouping_key)))
        s_join_columns.add(s_key[1])

    if not join_pairs:
        return None  # a cross product under the group-by cannot move out

    # Condition 3: join columns of s cover its primary key.
    ref = next(r for r in block.relations if r.alias == alias)
    primary_key = catalog.primary_key(ref.table)
    if not primary_key or not set(primary_key) <= s_join_columns:
        return None

    # Condition 4: rewrite s-sourced grouping and select columns to
    # retained-side equivalents.
    rewrite: Dict[FieldKey, Expression] = {}

    def rewrite_key(key: FieldKey) -> bool:
        if key in rewrite:
            return True
        substitute = retained_substitute(key)
        if substitute is None:
            return False
        rewrite[key] = ColumnRef(*substitute)
        return True

    for reference in block.group_by:
        if reference.alias == alias and not rewrite_key(reference.key):
            return None
    for _, source in block.select:
        for key in source.columns():
            if key[0] == alias and not rewrite_key(key):
                return None

    return _Removal(
        ref=ref,
        local_predicates=tuple(local),
        join_pairs=tuple(join_pairs),
        rewrite=rewrite,
    )


def removable_aliases(block: QueryBlock, catalog: Catalog) -> FrozenSet[str]:
    """Aliases removable from under the block's group-by right now."""
    if not block.is_grouped:
        return frozenset()
    return frozenset(
        alias
        for alias in block.aliases
        if _try_remove(block, alias, catalog) is not None
    )


def minimal_invariant_set(
    block: QueryBlock, catalog: Catalog
) -> FrozenSet[str]:
    """The minimal invariant set of G(V): aliases that must be joined
    before the group-by (fixpoint of invariant-grouping removals)."""
    if not block.is_grouped:
        return block.aliases
    current = block
    while True:
        removed_one = False
        for alias in sorted(current.aliases):
            removal = _try_remove(current, alias, catalog)
            if removal is not None:
                current, _, _ = _remove_from_block(current, removal)
                removed_one = True
                break
        if not removed_one or len(current.relations) == 1:
            return current.aliases


def _remove_from_block(
    block: QueryBlock, removal: _Removal
) -> Tuple[QueryBlock, Tuple[Expression, ...], Dict[FieldKey, str]]:
    """Rewrite *block* without the removed relation.

    Returns the new block, the predicates that must join the removed
    relation with the block's *output* (still in inner-column terms;
    the caller maps them to view outputs), and a map from inner grouping
    columns the outside now needs to ``None`` placeholders (filled by
    the caller with output names).
    """
    alias = removal.ref.alias
    new_group = []
    seen: Set[FieldKey] = set()
    for reference in block.group_by:
        target = removal.rewrite.get(reference.key)
        resolved = target if isinstance(target, ColumnRef) else reference
        if resolved.key not in seen:
            new_group.append(resolved)
            seen.add(resolved.key)

    new_block = QueryBlock(
        relations=tuple(r for r in block.relations if r.alias != alias),
        predicates=tuple(
            p for p in block.predicates if alias not in p.aliases()
        ),
        group_by=tuple(new_group),
        aggregates=block.aggregates,
        having=tuple(p.substitute(removal.rewrite) for p in block.having),
        select=tuple(
            (name, source.substitute(removal.rewrite))
            for name, source in block.select
        ),
    )
    outer_join_predicates = tuple(
        Comparison("=", s_ref, grouping_ref)
        for s_ref, grouping_ref in removal.join_pairs
    ) + removal.local_predicates
    needed_inner = {
        grouping_ref.key: "" for _, grouping_ref in removal.join_pairs
    }
    return new_block, outer_join_predicates, needed_inner


def split_view(
    view: AggregateView, catalog: Catalog
) -> Tuple[AggregateView, Tuple[TableRef, ...], Tuple[Expression, ...]]:
    """Reduce *view* to its minimal invariant set.

    Returns the reduced view (with extra outputs for the join-back
    columns), the relations that moved out, and the outer predicates
    that reconnect them to the view. The moved relations keep their
    original aliases, so they must not clash with outer aliases — the
    binder's alias uniquification guarantees that for SQL queries.
    """
    block = view.block
    moved_tables: List[TableRef] = []
    moved_predicates: List[Expression] = []
    extra_outputs: Dict[FieldKey, str] = {}

    changed = True
    while changed and len(block.relations) > 1:
        changed = False
        for alias in sorted(block.aliases):
            removal = _try_remove(block, alias, catalog)
            if removal is None:
                continue
            block, join_back, needed_inner = _remove_from_block(
                block, removal
            )
            moved_tables.append(removal.ref)
            moved_predicates.extend(join_back)
            for key in needed_inner:
                extra_outputs.setdefault(key, "")
            changed = True
            break

    # Expose the inner grouping columns the moved relations join on.
    select_new = list(block.select)
    existing = {name for name, _ in select_new}
    inner_to_output: Dict[FieldKey, Expression] = {}
    for key in sorted(extra_outputs, key=str):
        # Reuse an existing output whose source is exactly this column.
        reused = None
        for name, source in select_new:
            if isinstance(source, ColumnRef) and source.key == key:
                reused = name
                break
        if reused is None:
            reused = f"{key[0]}_{key[1]}"
            while reused in existing:
                reused += "_"
            existing.add(reused)
            select_new.append((reused, ColumnRef(*key)))
        inner_to_output[key] = ColumnRef(view.alias, reused)

    final_block = QueryBlock(
        relations=block.relations,
        predicates=block.predicates,
        group_by=block.group_by,
        aggregates=block.aggregates,
        having=block.having,
        select=tuple(select_new),
    )
    rewritten_predicates = tuple(
        p.substitute(inner_to_output) for p in moved_predicates
    )
    return (
        AggregateView(alias=view.alias, block=final_block),
        tuple(moved_tables),
        rewritten_predicates,
    )


def apply_invariant_split(
    query: CanonicalQuery, catalog: Catalog
) -> CanonicalQuery:
    """Reduce every view of *query* to its minimal invariant set,
    producing the equivalent query over B′ = B ∪ ⋃(Vᵢ − Vᵢ′)
    (Sections 5.3–5.4)."""
    new_views: List[AggregateView] = []
    extra_tables: List[TableRef] = []
    extra_predicates: List[Expression] = []
    for view in query.views:
        reduced, moved, join_back = split_view(view, catalog)
        new_views.append(reduced)
        extra_tables.extend(moved)
        extra_predicates.extend(join_back)
    if not extra_tables:
        return query
    taken = {ref.alias for ref in query.base_tables} | {
        view.alias for view in query.views
    }
    clashes = [ref.alias for ref in extra_tables if ref.alias in taken]
    if clashes:
        raise TransformError(
            f"invariant split would duplicate aliases {clashes}; "
            "uniquify view-internal aliases first"
        )
    return CanonicalQuery(
        base_tables=query.base_tables + tuple(extra_tables),
        views=tuple(new_views),
        predicates=query.predicates + tuple(extra_predicates),
        group_by=query.group_by,
        aggregates=query.aggregates,
        having=query.having,
        select=query.select,
        order_by=query.order_by,
        limit=query.limit,
    )


# ----------------------------------------------------------------------
# Plan-level push-down: Figure 2(a)
# ----------------------------------------------------------------------


def push_down_plan(group: GroupByNode, catalog: Catalog) -> PlanNode:
    """Rewrite ``G(J(R1, R2))`` into ``J(G′(R1), R2)`` when invariant
    grouping applies to the join's right input (Figure 2(a)). The HAVING
    clause moves down with the group-by (Section 4.1)."""
    join = group.child
    if not isinstance(join, JoinNode):
        raise TransformError("push-down needs a join under the group-by")
    partner = join.right
    if not isinstance(partner, ScanNode):
        raise TransformError("push-down partner must be a base-table scan")

    partner_alias = partner.alias
    group_keys = set(group.group_keys)
    for _, call in group.aggregates:
        if partner_alias in call.aliases():
            raise TransformError(
                "aggregate arguments reference the partner relation"
            )
    for key in group.group_keys:
        if key[0] == partner_alias:
            raise TransformError(
                "grouping columns reference the partner relation; rewrite "
                "them to the kept side first"
            )
    partner_join_columns: Set[str] = set()
    for left_key, right_key in join.equi_keys:
        if left_key not in group_keys:
            raise TransformError(
                f"join column {left_key} is not a grouping column"
            )
        partner_join_columns.add(right_key[1])
    for predicate in join.residuals:
        if partner_alias in predicate.aliases():
            raise TransformError(
                "residual predicates touch the partner relation"
            )
    primary_key = catalog.primary_key(partner.table_name)
    if not primary_key or not set(primary_key) <= partner_join_columns:
        raise TransformError(
            "the partner's join columns do not cover its primary key "
            "(each group must match at most one partner row)"
        )

    pushed = GroupByNode(
        join.left,
        group_keys=group.group_keys,
        aggregates=group.aggregates,
        having=group.having,  # the HAVING clause is pushed down too
        method=group.method,
    )
    return JoinNode(
        pushed,
        partner,
        method=join.method,
        equi_keys=join.equi_keys,
        residuals=join.residuals,
        projection=group.projection,
        index_name=join.index_name,
    )
