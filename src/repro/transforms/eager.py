"""Eager partial-aggregation derivations for the block DP.

Beyond the paper: its pull-up/push-down transforms move a *whole*
group-by across a join, and its Section 5.2 greedy heuristic pushes the
complete partial set onto the one side holding every aggregate
argument. The modern generalization (*Partial Partial Aggregates*,
Brisson) pushes only the **local compute phase** of decomposable
aggregates through joins, so the join sees pre-collapsed groups. This
module derives, for a DP subset whose output feeds a decomposable
aggregate, the legal eager alternatives:

- **partial group-by** — when the subset holds *all* aggregate
  arguments: group on the columns anything above still needs (border
  join keys, contributed final grouping columns, select columns) and
  compute the decomposed partials (``__p0``, ``__p1``, ...). The final
  group-by coalesces and a projection finalizes — the existing
  Section 4.2 machinery (:mod:`.coalescing`).

- **COUNT-carry pre-collapse** — when the subset holds *no* aggregate
  argument: collapse its duplicate rows into one row per live-column
  combination plus a carry column ``__cnt = COUNT(*)``. Joining the
  collapsed side preserves which rows match but loses multiplicity;
  the carry restores it above the join by *weighting* the
  duplicate-sensitive aggregates (``SUM(x) -> SUM(x * __cnt)``,
  ``COUNT(x) -> SUM(__cnt per non-NULL x)``, ``COUNT(*) ->
  SUM(__cnt)``; MIN/MAX are duplicate-insensitive and pass through).

Legality (all enforced here or by the DP's state bookkeeping):

- every aggregate must be decomposable (all-or-nothing, the same
  condition as coalescing — a holistic MEDIAN disables both shapes);
- the eager grouping keys must cover every column an ancestor still
  reads: pending predicate columns, final grouping keys, select
  columns, and shared-finalization extras — rows that agree on all of
  them are interchangeable above this point except for multiplicity,
  which the partial aggregates (or the carry) preserve;
- at most one carry per plan, and a carry-bearing input is never
  re-grouped into partials (the weighting happens once, at the final
  group-by).

The derivations are *alternatives*: the DP retains the lazy plan
alongside them and the final choice is by cost, which is what keeps
the paper's no-worse guarantee.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Set, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    ColumnRef,
    Arith,
    Expression,
    FieldKey,
    FuncCall,
)
from ..catalog.schema import RowSchema
from .coalescing import DecomposedAggregates

CARRY_COLUMN = "__cnt"
"""Output name of the carry count; alias ``None`` like partial columns,
so join projections keep it automatically."""

CARRY_KEY: FieldKey = (None, CARRY_COLUMN)


def carry_aggregates() -> Tuple[Tuple[str, AggregateCall], ...]:
    """The aggregate list of a carry pre-collapse: ``__cnt = COUNT(*)``."""
    return ((CARRY_COLUMN, AggregateCall("count", None)),)


def eager_group_keys(
    schema: RowSchema, keep: Set[FieldKey]
) -> List[FieldKey]:
    """The grouping keys of an eager group-by over a plan with *schema*:
    every schema column some ancestor still needs (*keep*), in schema
    order. Alias-``None`` columns (prior partials, a carry) never become
    keys — eager grouping only applies below any such column exists."""
    return [
        field.key
        for field in schema
        if field.alias is not None and field.key in keep
    ]


def partial_aggregates(
    decomposed: DecomposedAggregates,
    schema: RowSchema,
    already_grouped: bool,
) -> Optional[Tuple[Tuple[str, AggregateCall], ...]]:
    """The aggregate list of a partial (or re-coalescing) eager
    group-by, or ``None`` when some partial argument is not resolvable
    in *schema* — the all-or-nothing condition: either every partial
    computes here, or none does."""
    if already_grouped:
        return decomposed.coalescers
    for _, call in decomposed.partials:
        for key in call.columns():
            if not schema.has(*key):
                return None
    return decomposed.partials


# ----------------------------------------------------------------------
# Carry weighting
# ----------------------------------------------------------------------


def _pick_carry(value: Any, carry: Any) -> Any:
    return carry


def _carry_per_non_null(
    arg: Expression, carry: Expression
) -> Expression:
    """Per-row COUNT weight under a carry: the carry count when the
    counted argument is non-NULL, else NULL (``FuncCall`` is
    NULL-propagating, so SUM skips the row — matching COUNT's
    NULL-skipping semantics)."""
    return FuncCall("pick_carry", _pick_carry, [arg, carry])


def weight_partial_call(
    call: AggregateCall, carry: Expression
) -> AggregateCall:
    """Rewrite one partial aggregate call to account for each input row
    standing for ``carry`` collapsed rows. Partial calls are only ever
    COUNT/SUM/MIN/MAX (see the decompositions in
    :mod:`repro.algebra.aggregates`)."""
    name = call.func_name.lower()
    if name == "sum":
        assert call.arg is not None
        return AggregateCall("sum", Arith("*", call.arg, carry))
    if name == "count":
        if call.arg is None:
            return AggregateCall("sum", carry)
        return AggregateCall(
            "sum", _carry_per_non_null(call.arg, carry)
        )
    if name in ("min", "max"):
        return call  # duplicate-insensitive
    raise AssertionError(f"unexpected partial aggregate {name!r}")


def weighted_partials(
    decomposed: DecomposedAggregates,
) -> Tuple[Tuple[str, AggregateCall], ...]:
    """Final-group-by aggregates for a carry-bearing input whose
    aggregate arguments are still raw rows: each partial, weighted by
    the carry, under its partial name — so the finalizers (and
    ``finalize_substitution``) apply unchanged."""
    carry = ColumnRef(*CARRY_KEY)
    return tuple(
        (name, weight_partial_call(call, carry))
        for name, call in decomposed.partials
    )


def weighted_coalescers(
    decomposed: DecomposedAggregates,
) -> Tuple[Tuple[str, AggregateCall], ...]:
    """Final-group-by aggregates when partials were computed on one
    side and a carry on another: each partial-group row joined a carry
    row standing for ``__cnt`` collapsed partners, so SUM coalescers
    weight by the carry (a NULL partial stays skipped: NULL * carry is
    NULL) while MIN/MAX pass through."""
    carry = ColumnRef(*CARRY_KEY)
    out: List[Tuple[str, AggregateCall]] = []
    for name, call in decomposed.coalescers:
        op = call.func_name.lower()
        if op == "sum":
            assert call.arg is not None
            out.append(
                (name, AggregateCall("sum", Arith("*", call.arg, carry)))
            )
        elif op in ("min", "max"):
            out.append((name, call))
        else:  # pragma: no cover - decompositions only emit sum/min/max
            raise AssertionError(f"unexpected coalescer {op!r}")
    return tuple(out)
