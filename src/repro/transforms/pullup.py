"""The pull-up transformation (Section 3, Definition 1).

Pull-up defers the evaluation of an aggregate view's group-by until
after joins with relations from *other* query blocks, enabling
cross-block join reordering. Equivalence is preserved by:

1. extending the grouping columns with a key of each pulled-through
   relation (declared primary key, or the hidden tuple id when none is
   declared — both options named in Section 3);
2. keeping every pulled-relation column the rest of the query needs as
   an additional grouping column (they are functionally determined by
   the added keys, but SQL's grouped-select discipline requires them);
3. deferring join predicates that touch the view's *aggregated* columns
   into the HAVING clause of the deferred group-by;
4. skipping a pulled relation's key when the join equates its full
   primary key with columns already in the grouping set (the paper's
   foreign-key-join special case).

Two granularities are provided:

- :func:`pull_up` rewrites a :class:`CanonicalQuery`: the chosen base
  tables W move inside the named view, which becomes Φ(V, W). This is
  the building block of the Section 5.3/5.4 optimizer.
- :func:`pull_up_plan` rewrites an operator tree exactly as Figure 1
  draws it: ``J1(G1(...), R2)`` becomes ``G2(J2(..., R2))``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    ColumnRef,
    Expression,
    FieldKey,
    equijoin_sides,
)
from ..algebra.plan import GroupByNode, JoinNode, PlanNode, ScanNode
from ..algebra.query import AggregateView, CanonicalQuery, QueryBlock, TableRef
from ..catalog.catalog import Catalog
from ..catalog.schema import RID_COLUMN
from ..errors import TransformError


def key_columns(ref: TableRef, catalog: Catalog) -> Tuple[ColumnRef, ...]:
    """A key of *ref*: its declared primary key, or the internal tuple
    id when none is declared (Section 3)."""
    primary_key = catalog.primary_key(ref.table)
    if primary_key:
        return tuple(ColumnRef(ref.alias, name) for name in primary_key)
    return (ColumnRef(ref.alias, RID_COLUMN),)


# ----------------------------------------------------------------------
# Query-level pull-up: CanonicalQuery -> CanonicalQuery
# ----------------------------------------------------------------------


def pull_up(
    query: CanonicalQuery,
    view_alias: str,
    pulled_aliases: Sequence[str],
    catalog: Catalog,
) -> CanonicalQuery:
    """Pull the base tables *pulled_aliases* through the view
    *view_alias*, producing an equivalent query whose view is the
    paper's Φ(V, W).

    The pulled relations leave the outer FROM list and join the view's
    relations *before* its (deferred) group-by. Their columns that the
    rest of the query still needs are exposed as new view outputs named
    ``{alias}_{column}``.
    """
    pulled = frozenset(pulled_aliases)
    if not pulled:
        return query
    view = query.view(view_alias)
    base_by_alias = {ref.alias: ref for ref in query.base_tables}
    missing = pulled - set(base_by_alias)
    if missing:
        raise TransformError(
            f"cannot pull non-base aliases {sorted(missing)} "
            "(reordering across two aggregate views is excluded, "
            "Section 5.4)"
        )
    pulled_refs = [base_by_alias[alias] for alias in sorted(pulled)]
    block = view.block

    # Substitution from the view's output namespace into its inner
    # namespace (view outputs are grouping columns or aggregate outputs).
    to_inner: Dict[FieldKey, Expression] = {
        (view_alias, name): source for name, source in block.select
    }
    agg_keys = block.aggregate_output_keys()

    moved: List[Expression] = []
    kept: List[Expression] = []
    for predicate in query.predicates:
        if predicate.aliases() <= pulled | {view_alias}:
            moved.append(predicate.substitute(to_inner))
        else:
            kept.append(predicate)

    where_new: List[Expression] = []
    having_new: List[Expression] = []
    for predicate in moved:
        if predicate.columns() & agg_keys:
            having_new.append(predicate)  # deferred (Definition 1, item 4)
        else:
            where_new.append(predicate)

    # Columns of pulled relations the rest of the query references.
    needed: Set[FieldKey] = set()
    for predicate in kept:
        needed |= {key for key in predicate.columns() if key[0] in pulled}
    for predicate in having_new:
        needed |= {key for key in predicate.columns() if key[0] in pulled}
    for reference in query.group_by:
        if reference.alias in pulled:
            needed.add(reference.key)
    for _, source in query.select:
        needed |= {key for key in source.columns() if key[0] in pulled}
    for _, call in query.aggregates:
        needed |= {key for key in call.columns() if key[0] in pulled}
    for predicate in query.having:
        needed |= {key for key in predicate.columns() if key[0] in pulled}

    # New grouping columns: original ∪ needed ∪ keys (Definition 1,
    # item 2), with the foreign-key-join key omission.
    group_keys: List[ColumnRef] = list(block.group_by)
    present = {reference.key for reference in group_keys}

    def add_group(reference: ColumnRef) -> None:
        if reference.key not in present:
            group_keys.append(reference)
            present.add(reference.key)

    for key in sorted(needed, key=str):
        add_group(ColumnRef(*key))
    key_refs: Dict[str, Tuple[ColumnRef, ...]] = {
        ref.alias: key_columns(ref, catalog) for ref in pulled_refs
    }
    tentative = set(present)
    for refs in key_refs.values():
        tentative |= {reference.key for reference in refs}
    for ref in pulled_refs:
        if not _key_determined(
            ref, key_refs[ref.alias], where_new, tentative
        ):
            for reference in key_refs[ref.alias]:
                add_group(reference)

    # Expose needed pulled columns as view outputs.
    select_new = list(block.select)
    existing_names = {name for name, _ in select_new}
    outer_rewrite: Dict[FieldKey, Expression] = {}
    for key in sorted(needed, key=str):
        alias, name = key
        output_name = f"{alias}_{name}"
        while output_name in existing_names:
            output_name = output_name + "_"
        existing_names.add(output_name)
        select_new.append((output_name, ColumnRef(alias, name)))
        outer_rewrite[key] = ColumnRef(view_alias, output_name)

    new_block = QueryBlock(
        relations=block.relations + tuple(pulled_refs),
        predicates=block.predicates + tuple(where_new),
        group_by=tuple(group_keys),
        aggregates=block.aggregates,
        having=block.having + tuple(having_new),
        select=tuple(select_new),
    )
    new_view = AggregateView(alias=view_alias, block=new_block)

    def rewrite(expression: Expression) -> Expression:
        return expression.substitute(outer_rewrite)

    new_group_by = tuple(
        ColumnRef(*_rewritten_key(reference.key, outer_rewrite))
        for reference in query.group_by
    )
    return CanonicalQuery(
        base_tables=tuple(
            ref for ref in query.base_tables if ref.alias not in pulled
        ),
        views=tuple(
            new_view if v.alias == view_alias else v for v in query.views
        ),
        predicates=tuple(rewrite(p) for p in kept),
        group_by=new_group_by,
        aggregates=tuple(
            (name, call.substitute(outer_rewrite))
            for name, call in query.aggregates
        ),
        having=tuple(rewrite(p) for p in query.having),
        select=tuple((name, rewrite(s)) for name, s in query.select),
        order_by=query.order_by,
        limit=query.limit,
    )


def _rewritten_key(key: FieldKey, mapping: Dict[FieldKey, Expression]):
    replacement = mapping.get(key)
    if replacement is None:
        return key
    assert isinstance(replacement, ColumnRef)
    return replacement.key


def _key_determined(
    ref: TableRef,
    keys: Tuple[ColumnRef, ...],
    where_new: Sequence[Expression],
    grouping_keys: Set[FieldKey],
) -> bool:
    """True when the pulled relation's full key is equated (by the moved
    WHERE equijoins) to grouping columns outside itself — the paper's
    foreign-key-join case where the key need not be added."""
    own = {reference.key for reference in keys}
    others = grouping_keys - own
    for reference in keys:
        determined = False
        for predicate in where_new:
            sides = equijoin_sides(predicate)
            if sides is None:
                continue
            left, right = sides
            if left == reference.key and right in others:
                determined = True
            elif right == reference.key and left in others:
                determined = True
        if not determined:
            return False
    return True


# ----------------------------------------------------------------------
# Plan-level pull-up: Figure 1
# ----------------------------------------------------------------------


def pull_up_plan(join: JoinNode, catalog: Catalog) -> GroupByNode:
    """Apply Definition 1 to an operator tree: rewrite
    ``J1(G1(...), R2)`` (or the mirror image) into ``G2(J2(..., R2))``.

    ``R2`` must be a base-table scan so a key is available (declared
    primary key or row id). Returns the new group-by root; its output
    schema equals the original join's output schema (item 1 of the
    definition).
    """
    if isinstance(join.left, GroupByNode):
        grouped_left = True
        group_node = join.left
        partner = join.right
    elif isinstance(join.right, GroupByNode):
        grouped_left = False
        group_node = join.right
        partner = join.left
    else:
        raise TransformError("pull-up needs a group-by child under the join")
    if not isinstance(partner, ScanNode):
        raise TransformError(
            "plan-level pull-up requires a base-table partner (a key is "
            "needed; use the query-level pull_up for derived partners)"
        )
    if group_node.projection != tuple(
        field.key for field in group_node.internal_schema
    ):
        # The group-by's own projection may hide grouping columns the
        # join predicates need; keep the transform simple and explicit.
        raise TransformError(
            "pull-up over a projected group-by is not supported; project "
            "after pulling up instead"
        )

    agg_keys = {(None, name) for name, _ in group_node.aggregates}

    deferred: List[Expression] = list(group_node.having)
    j2_equi: List[Tuple[FieldKey, FieldKey]] = []
    j2_residuals: List[Expression] = []
    deferred_new: List[Expression] = []
    from ..algebra.expressions import Comparison

    for left_key, right_key in join.equi_keys:
        if left_key in agg_keys or right_key in agg_keys:
            deferred_new.append(
                Comparison(
                    "=", ColumnRef(*left_key), ColumnRef(*right_key)
                )
            )
        else:
            j2_equi.append((left_key, right_key))
    for predicate in join.residuals:
        if predicate.columns() & agg_keys:
            deferred_new.append(predicate)
        else:
            j2_residuals.append(predicate)

    inner = group_node.child
    partner_ref = TableRef(partner.table_name, partner.alias)
    keys = key_columns(partner_ref, catalog)
    if any(
        reference.name == RID_COLUMN and not partner.schema.has(*reference.key)
        for reference in keys
    ):
        partner = ScanNode(
            partner.table_name,
            partner.alias,
            list(partner.schema.fields),
            filters=partner.filters,
            include_rid=True,
            index_name=partner.index_name,
            index_values=partner.index_values,
        )

    if grouped_left:
        j2 = JoinNode(
            inner,
            partner,
            method=join.method,
            equi_keys=j2_equi,
            residuals=j2_residuals,
            index_name=join.index_name,
        )
    else:
        j2 = JoinNode(
            partner,
            inner,
            method=join.method,
            equi_keys=j2_equi,
            residuals=j2_residuals,
            index_name=None,
        )

    # Grouping columns of G2 (Definition 1, item 2): grouping of G1 ∪
    # non-aggregated projection columns of J1 ∪ key of R2, plus the
    # partner columns referenced by deferred predicates.
    group_keys: List[FieldKey] = list(group_node.group_keys)
    seen = set(group_keys)

    def add_key(key: FieldKey) -> None:
        if key not in seen and j2.schema.has(*key):
            group_keys.append(key)
            seen.add(key)

    for key in join.projection:
        if key not in agg_keys:
            add_key(key)
    for predicate in deferred_new:
        for key in predicate.columns():
            if key not in agg_keys:
                add_key(key)
    for reference in keys:
        add_key(reference.key)

    return GroupByNode(
        j2,
        group_keys=group_keys,
        aggregates=group_node.aggregates,
        having=tuple(deferred) + tuple(deferred_new),
        method="hash",
        projection=join.projection,  # item 1: same output as J1
    )
