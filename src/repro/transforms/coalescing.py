"""Simple coalescing grouping (Section 4.2, Figure 2(b)).

Unlike invariant grouping, simple coalescing does not *move* the
group-by: it **adds** an early group-by G2 below the join, computing
partial aggregates, while the original G1 stays above and *coalesces*
groups that were split by the finer early grouping. Applicability
requires the aggregate functions to be decomposable — "we must be able
to subsequently coalesce two groups that agree on the grouping columns."

The decomposition machinery here is shared with the optimizer's eager-
aggregation steps (greedy conservative heuristic, Section 5.2): an early
group-by always computes the *partials*; the final group-by applies the
*coalescers* and a projection applies each aggregate's *finalizer*
(e.g. ``avg = sum_partial / count_partial``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.aggregates import AggregateCall, aggregate_function
from ..algebra.expressions import ColumnRef, Expression, FieldKey
from ..algebra.plan import GroupByNode, JoinNode, PlanNode, ProjectNode
from ..errors import TransformError


@dataclass(frozen=True)
class DecomposedAggregates:
    """A decomposed aggregate list, shared by coalescing and the
    optimizer's eager aggregation.

    - ``partials``: aggregate calls the early group-by computes, with
      generated column names; the calls' arguments are in the *input*
      namespace (original relation columns).
    - ``coalescers``: aggregate calls the final group-by computes over
      the partial columns; outputs reuse the partial names so repeated
      coalescing composes (a sum of sums is again a sum).
    - ``finalizers``: for each original aggregate output name, the
      expression over coalesced columns producing its value.
    """

    partials: Tuple[Tuple[str, AggregateCall], ...]
    coalescers: Tuple[Tuple[str, AggregateCall], ...]
    finalizers: Dict[str, Expression]

    def finalize_substitution(self) -> Dict[FieldKey, Expression]:
        """Mapping from original aggregate-output keys to finalizer
        expressions (for rewriting HAVING/select)."""
        return {
            (None, name): expression
            for name, expression in self.finalizers.items()
        }


def decompose_aggregates(
    aggregates: Sequence[Tuple[str, AggregateCall]],
) -> Optional[DecomposedAggregates]:
    """Decompose every aggregate, or return None if any is holistic."""
    partials: List[Tuple[str, AggregateCall]] = []
    coalescers: List[Tuple[str, AggregateCall]] = []
    finalizers: Dict[str, Expression] = {}
    partial_index: Dict[AggregateCall, str] = {}

    for name, call in aggregates:
        decomposition = call.function().decompose(call.arg)
        if decomposition is None:
            return None
        columns: List[Expression] = []
        for partial_call, coalescer_name in zip(
            decomposition.partials, decomposition.coalescers
        ):
            existing = partial_index.get(partial_call)
            if existing is None:
                existing = f"__p{len(partials)}"
                partial_index[partial_call] = existing
                partials.append((existing, partial_call))
                coalescers.append(
                    (
                        existing,
                        AggregateCall(
                            coalescer_name, ColumnRef(None, existing)
                        ),
                    )
                )
            columns.append(ColumnRef(None, existing))
        finalizers[name] = decomposition.finalize(columns)

    return DecomposedAggregates(
        partials=tuple(partials),
        coalescers=tuple(coalescers),
        finalizers=finalizers,
    )


def coalesce_plan(group: GroupByNode) -> PlanNode:
    """Figure 2(b): rewrite ``G1(J(R1, R2))`` by adding an early partial
    group-by on the left join input and coalescing above.

    Requires every aggregate argument to come from the left input and
    every aggregate function to be decomposable. The result's output
    schema equals the original's (a finalizing projection on top).
    """
    join = group.child
    if not isinstance(join, JoinNode):
        raise TransformError("coalescing needs a join under the group-by")
    left_schema = join.left.schema

    for _, call in group.aggregates:
        for key in call.columns():
            if not left_schema.has(*key):
                raise TransformError(
                    "aggregate arguments must come from the left join input"
                )
    decomposed = decompose_aggregates(group.aggregates)
    if decomposed is None:
        raise TransformError(
            "simple coalescing requires decomposable aggregate functions"
        )

    # Early grouping keys: left-side final grouping columns plus every
    # left-side column the join still needs (join keys, residuals).
    early_keys: List[FieldKey] = []
    seen: Set[FieldKey] = set()

    def add(key: FieldKey) -> None:
        if key not in seen and left_schema.has(*key):
            early_keys.append(key)
            seen.add(key)

    for key in group.group_keys:
        if left_schema.has(*key):
            add(key)
    for left_key, _ in join.equi_keys:
        add(left_key)
    for predicate in join.residuals:
        for key in predicate.columns():
            if left_schema.has(*key):
                add(key)
    if not early_keys:
        raise TransformError(
            "no early grouping keys available on the left input"
        )

    early = GroupByNode(
        join.left,
        group_keys=early_keys,
        aggregates=decomposed.partials,
        method="hash",
    )
    new_join = JoinNode(
        early,
        join.right,
        method=join.method,
        equi_keys=join.equi_keys,
        residuals=join.residuals,
        index_name=join.index_name,
    )
    finalize = decomposed.finalize_substitution()
    final = GroupByNode(
        new_join,
        group_keys=group.group_keys,
        aggregates=decomposed.coalescers,
        having=tuple(p.substitute(finalize) for p in group.having),
        method="hash",
    )
    # Restore the original output schema: grouping columns pass through,
    # aggregate outputs are finalized expressions.
    internal = group.internal_schema
    outputs = []
    for alias, name in group.projection:
        field = internal.field_of(alias, name)
        if field.alias is None and name in decomposed.finalizers:
            outputs.append((None, name, decomposed.finalizers[name]))
        else:
            outputs.append((alias, name, ColumnRef(alias, name)))
    return ProjectNode(final, outputs)
