"""Kim-style unnesting of correlated nested subqueries (Section 1).

The binder (:mod:`repro.sql.binder`) lowers each WHERE-clause subquery
to a neutral :class:`SubquerySpec`; the decorrelation pass
(:mod:`repro.transforms.decorrelate`) flattens correlated
scalar-aggregate subqueries into aggregate views grouped on their
correlation columns, joined in the outer block. This module is the
programmatic entry point used by examples and the E8 benchmark: it
exposes the flattened canonical query together with a description of
what was unnested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..algebra.query import CanonicalQuery
from ..catalog.catalog import Catalog
from ..sql.binder import bind_sql
from .decorrelate import decorrelate_query


@dataclass(frozen=True)
class UnnestReport:
    """The flattened query plus a summary of the unnesting."""

    query: CanonicalQuery
    view_aliases: Tuple[str, ...]

    @property
    def unnested_count(self) -> int:
        return len(self.view_aliases)


def unnest_sql(sql: str, catalog: Catalog) -> UnnestReport:
    """Bind *sql*, unnesting its correlated subqueries into aggregate
    views (Kim's join-aggregate transformation), and report the views
    that were introduced."""
    query = decorrelate_query(bind_sql(sql, catalog))
    generated = tuple(
        view.alias for view in query.views if view.alias.startswith("sq_")
    )
    return UnnestReport(query=query, view_aliases=generated)
