"""Decorrelation: flatten WHERE-clause subqueries into the outer block.

This is Kim's join-aggregate transformation (Section 1 of the paper)
generalized beyond the scalar case:

- A **correlated scalar-aggregate** subquery becomes an aggregate view
  grouped on its correlation columns, inner-joined into the outer block
  (the classic rewrite). ``COUNT`` is the famous exception — Kim's
  flattening is unsound for empty groups (footnote 3 of the paper: the
  transformation "may introduce outerjoins") — so a COUNT subquery
  joins its view through a **LEFT OUTER** unit and compares
  ``IFNULL(agg, 0)`` after the join, which restores the missing-group
  zero.
- ``IN`` / ``EXISTS`` become **semi-join** units against the inner
  relation: the membership equality and the correlation equalities form
  the ON condition, the inner block's local predicates filter the inner
  side first.
- ``NOT EXISTS`` becomes a regular **anti-join** unit (an UNKNOWN ON
  match leaves a row unmatched, hence kept — exactly NOT EXISTS).
- Uncorrelated ``NOT IN`` becomes a **null-aware anti-join**: SQL's
  three-valued logic makes ``x NOT IN (S)`` UNKNOWN when ``x`` is NULL
  and ``S`` non-empty, or when ``S`` contains a NULL and ``x`` has no
  match; the engines implement that contract for ``null_aware`` joins.

Everything else — correlated ``NOT IN``, multi-relation semi/anti
inners, uncorrelated scalar subqueries — stays behind as a
:class:`SubquerySpec` on the query and executes as a naive mark join
(inner side materialized once, correlation matched per outer row).
With ``enable_decorrelation`` off, *every* spec stays behind: the
ablation baseline the fuzzer's ``full-nodecorrelate`` config and the
subquery benchmark measure against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..algebra.aggregates import AggregateCall
from ..algebra.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    IfNull,
    Literal,
)
from ..algebra.query import (
    AggregateView,
    CanonicalQuery,
    JoinUnit,
    QueryBlock,
    SubquerySpec,
)
from ..optimizer.options import OptimizerOptions
from ..optimizer.stats import SearchStats


def decorrelate_query(
    query: CanonicalQuery,
    options: Optional[OptimizerOptions] = None,
    stats: Optional[SearchStats] = None,
) -> CanonicalQuery:
    """Flatten *query*'s subquery specs where legal.

    Returns a query whose ``subqueries`` tuple holds only the specs
    that could not (or were not allowed to) be flattened; those execute
    as mark joins. Queries without subqueries pass through untouched.
    """
    if not query.subqueries:
        return query
    if options is None:
        options = OptimizerOptions()

    views: List[AggregateView] = list(query.views)
    joins: List[JoinUnit] = list(query.joins)
    predicates: List[Expression] = list(query.predicates)
    remaining: List[SubquerySpec] = []

    for spec in query.subqueries:
        if stats is not None:
            stats.decorrelation_considered += 1
        if not options.enable_decorrelation:
            remaining.append(spec)
            continue
        flattened = _flatten_spec(spec, views, joins, predicates)
        if flattened:
            if stats is not None:
                stats.decorrelation_adopted += 1
        else:
            remaining.append(spec)

    return CanonicalQuery(
        base_tables=query.base_tables,
        views=tuple(views),
        predicates=tuple(predicates),
        group_by=query.group_by,
        aggregates=query.aggregates,
        having=query.having,
        select=query.select,
        order_by=query.order_by,
        limit=query.limit,
        joins=tuple(joins),
        subqueries=tuple(remaining),
    )


def _flatten_spec(
    spec: SubquerySpec,
    views: List[AggregateView],
    joins: List[JoinUnit],
    predicates: List[Expression],
) -> bool:
    """Try to flatten one spec in place; False leaves it for mark-join
    execution."""
    if spec.kind == "scalar":
        return _flatten_scalar(spec, views, joins, predicates)
    if spec.kind == "in":
        return _flatten_membership(spec, joins)
    if spec.kind == "exists":
        return _flatten_exists(spec, joins)
    return False


def _flatten_scalar(
    spec: SubquerySpec,
    views: List[AggregateView],
    joins: List[JoinUnit],
    predicates: List[Expression],
) -> bool:
    """Kim's transformation: group the inner block on its correlation
    columns; COUNT joins through a LEFT unit with IFNULL(agg, 0)."""
    if not spec.correlations:
        # No grouping columns: the view machinery needs a GROUP BY, so
        # the inner side runs once as a mark join (which is cheap here —
        # one aggregate over the materialized inner rows).
        return False
    assert spec.aggregate is not None and spec.op is not None
    agg_name = "agg"
    group_refs = tuple(inner for inner, _ in spec.correlations)
    select: List[Tuple[str, Expression]] = []
    for position, reference in enumerate(group_refs):
        select.append((f"g{position}", reference))
    select.append((agg_name, ColumnRef(None, agg_name)))
    block = QueryBlock(
        relations=spec.relations,
        predicates=spec.local_predicates,
        group_by=group_refs,
        aggregates=((agg_name, spec.aggregate),),
        having=(),
        select=tuple(select),
    )
    views.append(AggregateView(alias=spec.alias, block=block))
    join_predicates = [
        Comparison("=", outer, ColumnRef(spec.alias, f"g{position}"))
        for position, (_, outer) in enumerate(spec.correlations)
    ]
    agg_column = ColumnRef(spec.alias, agg_name)
    if spec.aggregate.func_name == "count":
        # Kim's COUNT bug: a missing group means COUNT = 0, not "no
        # row". Join the view LEFT so unmatched outer rows survive, and
        # coalesce the NULL-padded aggregate to 0 in the comparison
        # (applied after the join as a post-join filter).
        joins.append(
            JoinUnit(
                alias=spec.alias,
                kind="left",
                table=None,
                on=tuple(join_predicates),
            )
        )
        predicates.append(
            Comparison(spec.op, spec.outer, IfNull(agg_column, Literal(0)))
        )
    else:
        predicates.extend(join_predicates)
        predicates.append(Comparison(spec.op, spec.outer, agg_column))
    return True


def _membership_on(spec: SubquerySpec) -> Tuple[Expression, ...]:
    """The ON condition of an IN/EXISTS unit: the membership equality
    (IN only) plus the correlation equalities."""
    on: List[Expression] = []
    if spec.value is not None and spec.outer is not None:
        on.append(Comparison("=", spec.outer, spec.value))
    for inner, outer in spec.correlations:
        on.append(Comparison("=", outer, inner))
    return tuple(on)


def _flatten_membership(spec: SubquerySpec, joins: List[JoinUnit]) -> bool:
    if len(spec.relations) != 1:
        return False
    relation = spec.relations[0]
    if not spec.negate:
        joins.append(
            JoinUnit(
                alias=relation.alias,
                kind="semi",
                table=relation,
                on=_membership_on(spec),
                filters=spec.local_predicates,
            )
        )
        return True
    # NOT IN: only the uncorrelated single-equality form flattens — the
    # null-aware anti-join contract covers exactly one membership
    # equality over plain columns (3VL over one key column). Correlated
    # NOT IN and computed membership expressions fall back.
    if spec.correlations:
        return False
    if not isinstance(spec.outer, ColumnRef) or not isinstance(
        spec.value, ColumnRef
    ):
        return False
    joins.append(
        JoinUnit(
            alias=relation.alias,
            kind="anti",
            table=relation,
            on=_membership_on(spec),
            filters=spec.local_predicates,
            null_aware=True,
        )
    )
    return True


def _flatten_exists(spec: SubquerySpec, joins: List[JoinUnit]) -> bool:
    if len(spec.relations) != 1:
        return False
    relation = spec.relations[0]
    joins.append(
        JoinUnit(
            alias=relation.alias,
            kind="anti" if spec.negate else "semi",
            table=relation,
            on=_membership_on(spec),
            filters=spec.local_predicates,
        )
    )
    return True
