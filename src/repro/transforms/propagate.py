"""Predicate propagation across query blocks ([MFPR90, LMS94]).

The paper positions prior art thus: "the techniques for optimizing
queries with aggregate views have been limited to propagating
predicates across query blocks ... to reduce the cost of optimizing
each query block" (Section 1). This module implements that baseline
preprocessing: an outer conjunct that constrains only a view's
*grouping-column* outputs (compared to literals) holds uniformly for
every row of a group, so it can be moved inside the view's WHERE —
filtering before the group-by instead of after the join.

Predicates touching aggregate outputs, multiple relations, or
non-grouping outputs stay put. The transformation strictly reduces the
data each block processes and is applied by every optimizer level,
matching the paper's premise that traditional optimizers already do
this.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebra.expressions import ColumnRef, Expression, FieldKey
from ..algebra.query import AggregateView, CanonicalQuery, QueryBlock


def propagate_predicates(query: CanonicalQuery) -> CanonicalQuery:
    """Move movable outer conjuncts into their view's WHERE clause."""
    if not query.views:
        return query

    movable: Dict[str, List[Expression]] = {}
    kept: List[Expression] = []
    for predicate in query.predicates:
        target = _movable_target(predicate, query)
        if target is None:
            kept.append(predicate)
        else:
            movable.setdefault(target, []).append(predicate)
    if not movable:
        return query

    new_views: List[AggregateView] = []
    for view in query.views:
        pushed = movable.get(view.alias)
        if not pushed:
            new_views.append(view)
            continue
        to_inner = {
            (view.alias, name): source
            for name, source in view.block.select
        }
        inner_predicates = tuple(
            predicate.substitute(to_inner) for predicate in pushed
        )
        block = view.block
        new_views.append(
            AggregateView(
                alias=view.alias,
                block=QueryBlock(
                    relations=block.relations,
                    predicates=block.predicates + inner_predicates,
                    group_by=block.group_by,
                    aggregates=block.aggregates,
                    having=block.having,
                    select=block.select,
                ),
            )
        )
    return CanonicalQuery(
        base_tables=query.base_tables,
        views=tuple(new_views),
        predicates=tuple(kept),
        group_by=query.group_by,
        aggregates=query.aggregates,
        having=query.having,
        select=query.select,
        order_by=query.order_by,
        limit=query.limit,
        joins=query.joins,
        subqueries=query.subqueries,
    )


def _movable_target(
    predicate: Expression, query: CanonicalQuery
) -> "str | None":
    """The view alias *predicate* can move into, or None.

    Movable = references exactly one alias, that alias is a view, and
    every referenced output's source is a grouping column (never an
    aggregate), so the predicate's value is constant per group and
    filtering rows before grouping equals filtering groups after.
    """
    aliases = predicate.aliases()
    if len(aliases) != 1:
        return None
    (alias,) = aliases
    if alias not in query.view_aliases:
        return None
    if any(unit.alias == alias for unit in query.joins):
        # The view is the target of a non-inner join unit: a WHERE
        # conjunct over it filters the *padded* join output and must
        # not move inside the view (it would turn kept-but-unmatched
        # rows into matches).
        return None
    view = query.view(alias)
    group_keys = {reference.key for reference in view.block.group_by}
    for key in predicate.columns():
        if key[0] != alias:
            return None  # a bare (None, x) reference: not view-scoped
        source = _output_source(view, key[1])
        if source is None:
            return None
        for source_key in source.columns():
            if source_key not in group_keys:
                return None
    return alias


def _output_source(view: AggregateView, name: str):
    for output_name, source in view.block.select:
        if output_name == name:
            return source
    return None
