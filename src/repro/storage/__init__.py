"""Physical storage: paginated heap tables, ordered indexes, IO accounting.

The paper's optimizer minimizes IO cost (Section 5). To make cost-based
claims testable rather than self-referential, this package gives every
stored table a physical pagination (4096-byte pages whose capacity depends
on tuple width) and charges every page touch to an :class:`IOCounter`.
Benchmarks can therefore report *executed* page IO next to the optimizer's
*estimated* page IO.
"""

from .iocounter import IOCounter, IOSnapshot
from .page import PAGE_SIZE, rows_per_page, pages_for
from .table import HeapTable
from .index import OrderedIndex
from .snapshot import DatabaseSnapshot, IndexSnapshot, TableSnapshot

__all__ = [
    "IOCounter",
    "IOSnapshot",
    "PAGE_SIZE",
    "rows_per_page",
    "pages_for",
    "HeapTable",
    "OrderedIndex",
    "DatabaseSnapshot",
    "IndexSnapshot",
    "TableSnapshot",
]
