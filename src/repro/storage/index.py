"""Ordered (B-tree-style) secondary indexes.

The index stores ``(key, rid)`` entries in key order. IO is charged the
way a B-tree would: a root-to-leaf traversal of ``height`` page reads,
then one read per leaf page of matching entries. Fetching the indexed
rows through :meth:`HeapTable.fetch` charges data-page reads separately
(unclustered-index discipline).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from .iocounter import IOCounter
from .page import PAGE_SIZE
from .table import HeapTable

_ENTRY_OVERHEAD = 8  # rid + slot bookkeeping per index entry


class OrderedIndex:
    """An ordered index over one or more columns of a heap table."""

    def __init__(self, name: str, table: HeapTable, column_names: Sequence[str]):
        if not column_names:
            raise SchemaError("an index needs at least one column")
        self.name = name
        self.table = table
        self.column_names: Tuple[str, ...] = tuple(column_names)
        self._positions = [
            table.column_position(column) for column in self.column_names
        ]
        key_width = sum(
            table.columns[position].dtype.width for position in self._positions
        )
        self.entries_per_page = max(
            2, PAGE_SIZE // (key_width + _ENTRY_OVERHEAD)
        )
        # entries: parallel arrays of keys and rids, sorted by key.
        # Published as ONE (keys, rids) tuple so a rebuild is atomic
        # with respect to concurrent readers: a reader that unpacked
        # ``_data`` sees a matched pair of arrays, never new keys with
        # old rids (immutable-after-publish; the arrays are never
        # mutated once assigned).
        self._data: Tuple[List[Tuple[Any, ...]], List[int]] = ([], [])
        self.build()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def build(self) -> None:
        """(Re)build the index from the table's current rows."""
        # NULL never compares equal to anything, so NULL-keyed rows can
        # never satisfy an index probe; leaving them out keeps the key
        # list totally ordered for bisect.
        pairs = sorted(
            (key, rid)
            for rid, row in enumerate(self.table.rows)
            for key in (self._key_of(row),)
            if None not in key
        )
        self._data = (
            [key for key, _ in pairs],
            [rid for _, rid in pairs],
        )

    def snapshot_data(self) -> Tuple[List[Tuple[Any, ...]], List[int]]:
        """The current (keys, rids) pair — safe to hold across rebuilds
        (rebuilds publish a fresh pair, they never mutate this one)."""
        return self._data

    @property
    def _keys(self) -> List[Tuple[Any, ...]]:
        return self._data[0]

    @property
    def _rids(self) -> List[int]:
        return self._data[1]

    def _key_of(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(row[position] for position in self._positions)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._keys)

    @property
    def num_leaf_pages(self) -> int:
        return max(1, math.ceil(len(self._keys) / self.entries_per_page))

    @property
    def height(self) -> int:
        """Root-to-leaf page reads for one traversal."""
        return max(1, math.ceil(math.log(self.num_leaf_pages + 1, 16)) + 1)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def lookup_rids(self, io: IOCounter, key: Sequence[Any]) -> List[int]:
        """Rids of rows whose indexed columns equal *key* (charges IO)."""
        keys, rids = self._data  # one read: keys/rids stay paired
        probe = tuple(key)
        lo = bisect.bisect_left(keys, probe)
        hi = bisect.bisect_right(keys, probe)
        io.read_pages(self.height)
        if hi > lo:
            first_leaf = lo // self.entries_per_page
            last_leaf = (hi - 1) // self.entries_per_page
            extra_leaves = last_leaf - first_leaf
            if extra_leaves:
                io.read_pages(extra_leaves)
        return rids[lo:hi]

    def lookup_rows(
        self, io: IOCounter, key: Sequence[Any], include_rid: bool = False
    ) -> Iterator[Tuple[Any, ...]]:
        """Rows matching *key*, fetched through the heap (charges IO)."""
        last_page: Optional[int] = None
        for rid in self.lookup_rids(io, key):
            row, last_page = self.table.fetch(io, rid, last_page)
            yield row + (rid,) if include_rid else row

    def range_rids(
        self,
        io: IOCounter,
        low: Optional[Sequence[Any]] = None,
        high: Optional[Sequence[Any]] = None,
    ) -> List[int]:
        """Rids with low <= key <= high (either bound may be open)."""
        keys, rids = self._data  # one read: keys/rids stay paired
        lo = 0 if low is None else bisect.bisect_left(keys, tuple(low))
        hi = (
            len(keys)
            if high is None
            else bisect.bisect_right(keys, tuple(high))
        )
        io.read_pages(self.height)
        if hi > lo:
            first_leaf = lo // self.entries_per_page
            last_leaf = (hi - 1) // self.entries_per_page
            extra_leaves = last_leaf - first_leaf
            if extra_leaves:
                io.read_pages(extra_leaves)
        return rids[lo:hi]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        columns = ", ".join(self.column_names)
        return f"OrderedIndex({self.name!r} on {self.table.name}({columns}))"
