"""Page-IO accounting shared by every physical operator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable point-in-time reading of an :class:`IOCounter`."""

    page_reads: int
    page_writes: int

    @property
    def total(self) -> int:
        return self.page_reads + self.page_writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
        )


class IOCounter:
    """Counts page reads and writes performed by physical operators.

    One counter is shared per database; operators receive it at open time
    and charge each page touch. ``measure()`` is the ergonomic way to get
    the IO attributable to a region of code::

        with io.measure() as span:
            run_query(...)
        print(span.delta.total)
    """

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0

    def read_pages(self, count: int = 1) -> None:
        """Charge *count* page reads."""
        self.page_reads += count

    def write_pages(self, count: int = 1) -> None:
        """Charge *count* page writes."""
        self.page_writes += count

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(self.page_reads, self.page_writes)

    def measure(self) -> "_MeasureSpan":
        """Return a context manager capturing the IO delta of its body."""
        return _MeasureSpan(self)

    @property
    def total(self) -> int:
        return self.page_reads + self.page_writes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOCounter(reads={self.page_reads}, writes={self.page_writes})"


class _MeasureSpan:
    """Context manager produced by :meth:`IOCounter.measure`."""

    def __init__(self, counter: IOCounter) -> None:
        self._counter = counter
        self._start: IOSnapshot | None = None
        self.delta: IOSnapshot = IOSnapshot(0, 0)

    def __enter__(self) -> "_MeasureSpan":
        self._start = self._counter.snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.delta = self._counter.snapshot() - self._start
