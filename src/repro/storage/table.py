"""Append-only heap tables with logical pagination.

Rows are held in memory but grouped into fixed-size pages; every scan
charges one read per page to the :class:`~repro.storage.IOCounter`. The
row's position doubles as its hidden row-id (``_rid``), which pull-up uses
as a surrogate key when no primary key is declared (Section 3).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..catalog.schema import Column
from ..errors import SchemaError
from .iocounter import IOCounter
from .page import pages_for, rows_per_page


class HeapTable:
    """A stored relation: named, typed columns and an ordered bag of rows."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.rows: List[Tuple[Any, ...]] = []
        self._column_index = {
            column.name: position for position, column in enumerate(columns)
        }

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def row_width(self) -> int:
        """Payload bytes per stored tuple."""
        return sum(column.dtype.width for column in self.columns)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_pages(self) -> int:
        return pages_for(len(self.rows), self.row_width)

    @property
    def rows_per_page(self) -> int:
        return rows_per_page(self.row_width)

    def column_position(self, name: str) -> int:
        position = self._column_index.get(name)
        if position is None:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return position

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Validate and append one row; returns its row-id."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        validated = tuple(
            column.dtype.validate(value, nullable=column.nullable)
            for column, value in zip(self.columns, row)
        )
        self.rows.append(validated)
        return len(self.rows) - 1

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def replace_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Replace the table's contents copy-on-write: validate into a
        FRESH list, then publish it with one attribute assignment.

        The previously published row list is never mutated, so any
        reader that captured it (a :class:`TableSnapshot`, an in-flight
        scan generator) keeps seeing the old contents in full. This is
        how destructive rewrites (matview refresh) coexist with
        concurrent snapshot reads; plain :meth:`insert` is already safe
        for snapshot readers because appends never move existing rows.
        """
        fresh: List[Tuple[Any, ...]] = []
        for row in rows:
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"table {self.name!r} expects {len(self.columns)} "
                    f"values, got {len(row)}"
                )
            fresh.append(
                tuple(
                    column.dtype.validate(value, nullable=column.nullable)
                    for column, value in zip(self.columns, row)
                )
            )
        self.rows = fresh

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def scan(
        self, io: IOCounter, include_rid: bool = False
    ) -> Iterator[Tuple[Any, ...]]:
        """Full scan, charging one page read per page of rows."""
        per_page = self.rows_per_page
        if not self.rows:
            io.read_pages(1)  # header page of an empty table
            return
        for start in range(0, len(self.rows), per_page):
            io.read_pages(1)
            chunk = self.rows[start : start + per_page]
            if include_rid:
                for offset, row in enumerate(chunk):
                    yield row + (start + offset,)
            else:
                yield from chunk

    def scan_pages(
        self, io: IOCounter, include_rid: bool = False
    ) -> Iterator[List[Tuple[Any, ...]]]:
        """Full scan yielding one page's rows at a time.

        Charges exactly the page reads :meth:`scan` charges; the batch
        executor consumes pages so its per-batch loops touch the row
        list with C-speed slices instead of one ``yield`` per tuple.
        """
        per_page = self.rows_per_page
        if not self.rows:
            io.read_pages(1)  # header page of an empty table
            return
        for start in range(0, len(self.rows), per_page):
            io.read_pages(1)
            chunk = self.rows[start : start + per_page]
            if include_rid:
                yield [
                    row + (start + offset,)
                    for offset, row in enumerate(chunk)
                ]
            else:
                yield chunk

    def scan_page_columns(
        self, io: IOCounter, include_rid: bool = False
    ) -> Iterator[Tuple[List[Any], int]]:
        """Full scan yielding one page at a time in *column-major* form:
        ``(columns, row_count)`` with one sequence per column.

        Charges exactly the page reads :meth:`scan` charges. The
        transpose is a single C-speed ``zip`` per page, and the hidden
        ``_rid`` column is a ``range`` — never materialized unless a
        consumer actually gathers it.
        """
        per_page = self.rows_per_page
        if not self.rows:
            io.read_pages(1)  # header page of an empty table
            return
        for start in range(0, len(self.rows), per_page):
            io.read_pages(1)
            chunk = self.rows[start : start + per_page]
            columns: List[Any] = list(zip(*chunk))
            if include_rid:
                columns.append(range(start, start + len(chunk)))
            yield columns, len(chunk)

    def fetch(
        self, io: IOCounter, rid: int, last_page: Optional[int] = None
    ) -> Tuple[Tuple[Any, ...], int]:
        """Fetch one row by row-id, charging a page read unless the row
        lives on *last_page* (the page the caller just touched).

        Returns ``(row, page_number)`` so callers can thread the page hint
        through consecutive fetches — the standard unclustered-index
        charging discipline.
        """
        if not 0 <= rid < len(self.rows):
            raise SchemaError(f"row id {rid} out of range for {self.name!r}")
        page_number = rid // self.rows_per_page
        if page_number != last_page:
            io.read_pages(1)
        return self.rows[rid], page_number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeapTable({self.name!r}, rows={self.num_rows}, "
            f"pages={self.num_pages})"
        )
