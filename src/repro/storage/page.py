"""Page-size arithmetic shared by storage and the cost model.

Pages are logical: a heap table's rows are grouped into runs of
``rows_per_page(width)`` tuples, and each run counts as one 4096-byte page
for IO accounting. The same arithmetic is used by the cost model so that
estimated and executed page counts are directly comparable.
"""

from __future__ import annotations

import math

PAGE_SIZE = 4096
"""Bytes per page; the unit the IO-only cost model counts."""

ROW_OVERHEAD = 8
"""Per-tuple bookkeeping bytes (slot pointer + header) added to the
payload width before computing page capacity."""


def rows_per_page(row_width: int) -> int:
    """How many tuples of *row_width* payload bytes fit on one page."""
    if row_width < 0:
        raise ValueError(f"negative row width: {row_width}")
    return max(1, PAGE_SIZE // (row_width + ROW_OVERHEAD))


def pages_for(row_count: int, row_width: int) -> int:
    """Number of pages needed to hold *row_count* tuples of *row_width*.

    An empty relation still occupies one page (its header page), which
    keeps costs strictly positive and avoids divide-by-zero corner cases
    in the optimizer.
    """
    if row_count <= 0:
        return 1
    return math.ceil(row_count / rows_per_page(row_width))
