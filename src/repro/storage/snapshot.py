"""Copy-on-write table snapshots: stable reads under a concurrent writer.

The serving layer (``repro.server``) lets many reader sessions execute
while one writer inserts or refreshes materialized views. Readers never
take locks during execution; instead each query captures a
:class:`DatabaseSnapshot` — per table, the *published row-list object*
plus the row count visible at capture time — and scans that, not the
live table.

Two storage-layer disciplines make the capture sound:

- **Appends never move rows.** ``HeapTable.insert`` only appends, so a
  snapshot ``(rows, count)`` pair keeps denoting exactly the pre-insert
  prefix; pages built from ``rows[:count]`` are byte-identical before
  and after any number of concurrent appends (CPython's GIL keeps list
  reads/appends internally consistent).
- **Destructive rewrites publish, never mutate.**
  ``HeapTable.replace_rows`` (matview refresh) validates into a fresh
  list and swings ``table.rows`` in one assignment; the captured list
  object is frozen history. ``OrderedIndex`` likewise publishes its
  ``(keys, rids)`` arrays as one tuple per rebuild.

IO charging mirrors the live access paths exactly: a snapshot scan of N
visible rows charges the same page reads a live scan of an N-row table
would, so estimated-vs-executed IO comparisons stay meaningful under
concurrency.

This extends the zero-copy aliasing contract of the columnar engine
(``engine/batch.py``): storage never mutates what it has published, so
downstream consumers may alias it freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import SchemaError
from .index import OrderedIndex
from .iocounter import IOCounter
from .page import pages_for
from .table import HeapTable


@dataclass(frozen=True)
class IndexSnapshot:
    """One index's published ``(keys, rids)`` arrays at capture time.

    Probes replay :class:`OrderedIndex`'s charging discipline (height
    page reads per traversal plus extra leaf pages) against the captured
    arrays, and drop any rid at or beyond the owning table snapshot's
    visible row count — entries a concurrent writer's index rebuild
    added for rows this snapshot cannot see.
    """

    name: str
    column_names: Tuple[str, ...]
    keys: Sequence[Tuple[Any, ...]]
    rids: Sequence[int]
    entries_per_page: int
    height: int

    def lookup_rids(self, io: IOCounter, key: Sequence[Any]) -> List[int]:
        import bisect

        probe = tuple(key)
        lo = bisect.bisect_left(self.keys, probe)
        hi = bisect.bisect_right(self.keys, probe)
        io.read_pages(self.height)
        if hi > lo:
            first_leaf = lo // self.entries_per_page
            last_leaf = (hi - 1) // self.entries_per_page
            extra_leaves = last_leaf - first_leaf
            if extra_leaves:
                io.read_pages(extra_leaves)
        return list(self.rids[lo:hi])


class TableSnapshot:
    """A stable view of one table: the published row list and the
    visible row count, with the same access-path surface scans use on
    :class:`HeapTable` (``scan_page_columns`` / ``scan_pages`` /
    ``scan`` / ``fetch`` and index probes)."""

    def __init__(
        self,
        name: str,
        rows: List[Tuple[Any, ...]],
        row_count: int,
        rows_per_page: int,
        row_width: int,
        indexes: Mapping[str, IndexSnapshot],
    ):
        self.name = name
        self.rows = rows
        self.row_count = row_count
        self.rows_per_page = rows_per_page
        self.row_width = row_width
        self.indexes = dict(indexes)

    @classmethod
    def capture(
        cls, table: HeapTable, indexes: Mapping[str, OrderedIndex]
    ) -> "TableSnapshot":
        index_snaps: Dict[str, IndexSnapshot] = {}
        for index_name, index in indexes.items():
            keys, rids = index.snapshot_data()
            index_snaps[index_name] = IndexSnapshot(
                name=index_name,
                column_names=index.column_names,
                keys=keys,
                rids=rids,
                entries_per_page=index.entries_per_page,
                height=index.height,
            )
        return cls(
            name=table.name,
            rows=table.rows,
            row_count=len(table.rows),
            rows_per_page=table.rows_per_page,
            row_width=table.row_width,
            indexes=index_snaps,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.row_count

    @property
    def num_pages(self) -> int:
        return pages_for(self.row_count, self.row_width)

    # ------------------------------------------------------------------
    # Access paths (charging identical to HeapTable's)
    # ------------------------------------------------------------------

    def scan(
        self, io: IOCounter, include_rid: bool = False
    ) -> Iterator[Tuple[Any, ...]]:
        per_page = self.rows_per_page
        count = self.row_count
        if not count:
            io.read_pages(1)
            return
        for start in range(0, count, per_page):
            io.read_pages(1)
            chunk = self.rows[start : min(start + per_page, count)]
            if include_rid:
                for offset, row in enumerate(chunk):
                    yield row + (start + offset,)
            else:
                yield from chunk

    def scan_pages(
        self, io: IOCounter, include_rid: bool = False
    ) -> Iterator[List[Tuple[Any, ...]]]:
        per_page = self.rows_per_page
        count = self.row_count
        if not count:
            io.read_pages(1)
            return
        for start in range(0, count, per_page):
            io.read_pages(1)
            chunk = self.rows[start : min(start + per_page, count)]
            if include_rid:
                yield [
                    row + (start + offset,)
                    for offset, row in enumerate(chunk)
                ]
            else:
                yield list(chunk)

    def scan_page_columns(
        self, io: IOCounter, include_rid: bool = False
    ) -> Iterator[Tuple[List[Any], int]]:
        per_page = self.rows_per_page
        count = self.row_count
        if not count:
            io.read_pages(1)
            return
        for start in range(0, count, per_page):
            io.read_pages(1)
            chunk = self.rows[start : min(start + per_page, count)]
            columns: List[Any] = list(zip(*chunk))
            if include_rid:
                columns.append(range(start, start + len(chunk)))
            yield columns, len(chunk)

    def fetch(
        self, io: IOCounter, rid: int, last_page: Optional[int] = None
    ) -> Tuple[Tuple[Any, ...], int]:
        if not 0 <= rid < self.row_count:
            raise SchemaError(
                f"row id {rid} out of range for snapshot of {self.name!r}"
            )
        page_number = rid // self.rows_per_page
        if page_number != last_page:
            io.read_pages(1)
        return self.rows[rid], page_number

    def index(self, index_name: str) -> Optional[IndexSnapshot]:
        return self.indexes.get(index_name)

    def index_lookup_rows(
        self,
        io: IOCounter,
        index: IndexSnapshot,
        key: Sequence[Any],
        include_rid: bool = False,
    ) -> Iterator[Tuple[Any, ...]]:
        """Probe a captured index and fetch the visible matching rows
        through this snapshot (unclustered-index charging)."""
        last_page: Optional[int] = None
        count = self.row_count
        for rid in index.lookup_rids(io, key):
            if rid >= count:
                continue  # inserted after this snapshot was taken
            row, last_page = self.fetch(io, rid, last_page)
            yield row + (rid,) if include_rid else row


class DatabaseSnapshot:
    """All tables' snapshots, captured atomically with respect to the
    single writer (the caller holds the database write lock during
    capture — capture itself is O(tables), no row copying)."""

    def __init__(self, tables: Dict[str, TableSnapshot], epoch: int):
        self.tables = tables
        self.epoch = epoch

    def table(self, name: str) -> Optional[TableSnapshot]:
        return self.tables.get(name)
