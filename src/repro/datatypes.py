"""Column data types and their physical widths.

The cost model in the paper is IO-only (Section 5), which makes the byte
width of intermediate tuples a first-class quantity: pulling up a group-by
widens tuples ("Increased Size of Projection Columns", Section 3), and the
greedy conservative heuristic explicitly compares widths (Section 5.2).
This module defines the small type system used to compute those widths.
"""

from __future__ import annotations

import enum
from typing import Any

from .errors import SchemaError


class DataType(enum.Enum):
    """Supported column types with fixed physical widths in bytes."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    DATE = "date"  # stored as integer day number

    @property
    def width(self) -> int:
        """Physical width in bytes used for page-count estimation."""
        return _WIDTHS[self]

    def validate(self, value: Any, nullable: bool = False) -> Any:
        """Check *value* against this type, returning the canonical form.

        Raises :class:`SchemaError` on a mismatch. ``None`` is rejected
        unless the column is declared *nullable*: the paper assumes a
        NULL-free database (Section 2), so NULL-bearing columns are
        opt-in (``CREATE TABLE t (x int null)``).
        """
        if value is None:
            if nullable:
                return None
            raise SchemaError(
                "NULL in a NOT NULL column (declare the column with "
                "NULL to allow it; the paper assumes a NULL-free "
                "database, Section 2)"
            )
        checker = _CHECKERS[self]
        converted = checker(value)
        if converted is _INVALID:
            raise SchemaError(f"value {value!r} is not a valid {self.value}")
        return converted


_WIDTHS = {
    DataType.INT: 4,
    DataType.FLOAT: 8,
    DataType.STR: 16,  # average string payload assumed by the cost model
    DataType.BOOL: 1,
    DataType.DATE: 4,
}

_INVALID = object()


def _check_int(value: Any) -> Any:
    if isinstance(value, bool):
        return _INVALID
    if isinstance(value, int):
        return value
    return _INVALID


def _check_float(value: Any) -> Any:
    if isinstance(value, bool):
        return _INVALID
    if isinstance(value, (int, float)):
        return float(value)
    return _INVALID


def _check_str(value: Any) -> Any:
    if isinstance(value, str):
        return value
    return _INVALID


def _check_bool(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    return _INVALID


_CHECKERS = {
    DataType.INT: _check_int,
    DataType.FLOAT: _check_float,
    DataType.STR: _check_str,
    DataType.BOOL: _check_bool,
    DataType.DATE: _check_int,
}


class NullOrdered:
    """Total-order wrapper placing NULL (None) before every value.

    Python refuses ``None < 3``, but sort operators and merge joins must
    order rows whose keys contain NULLs. SQL leaves NULL placement to
    the implementation; NULLS FIRST is this engine's convention (it also
    matches SQLite's default ASC ordering, which the differential oracle
    relies on).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "NullOrdered") -> bool:
        a, b = self.value, other.value
        if a is None:
            return b is not None
        if b is None:
            return False
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullOrdered) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NullOrdered({self.value!r})"


def null_ordered_key(values: Any) -> Any:
    """A sort key for a tuple of possibly-NULL values (NULLS FIRST)."""
    return tuple(NullOrdered(value) for value in values)


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value (for literals)."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STR
    raise SchemaError(f"cannot infer a column type for {value!r}")
