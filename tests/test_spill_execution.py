"""Execution-path tests for the out-of-memory disciplines.

Forces each spill path to actually trigger at runtime (tiny buffer
pool) and checks that results stay correct and that executed IO equals
the cost model's estimate — the strongest form of the E12 property.
"""

import random

import pytest

from repro import CostParams, Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import col
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode, SortNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan, execute_plan_rows
from repro.engine.reference import rows_equal_bag


@pytest.fixture
def big_db():
    """Tables far larger than the 3-page buffer pool."""
    db = Database(CostParams(memory_pages=3))
    db.create_table(
        "a", [("k", "int"), ("v", "float")], primary_key=["k"]
    )
    db.create_table(
        "b", [("k", "int"), ("g", "int"), ("w", "float")],
        primary_key=["k"],
    )
    rng = random.Random(77)
    db.insert("a", [(i, float(rng.randint(0, 999))) for i in range(4000)])
    db.insert(
        "b",
        [
            (i, i % 1500, float(rng.randint(0, 999)))
            for i in range(4000)
        ],
    )
    db.analyze()
    return db


def scan(db, table, alias):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
    )


def run_checked(db, plan):
    """Annotate, execute, and assert estimated == executed IO."""
    CostModel(db.catalog, db.params).annotate_tree(plan)
    context = ExecutionContext(db.catalog, db.io, db.params)
    with db.io.measure() as span:
        result = execute_plan(plan, context)
    assert span.delta.total == pytest.approx(plan.props.cost), plan.describe()
    return result


class TestSpillPaths:
    def test_grace_hash_join_spills(self, big_db):
        plan = JoinNode(
            scan(big_db, "a", "x"),
            scan(big_db, "b", "y"),
            method="hj",
            equi_keys=[(("x", "k"), ("y", "k"))],
        )
        result = run_checked(big_db, plan)
        assert len(result.rows) == 4000
        # the build side exceeded 3 pages: the spill really happened
        assert plan.props.cost > (
            plan.left.props.cost + plan.right.props.cost
        )

    def test_external_sort_merge_join(self, big_db):
        plan = JoinNode(
            scan(big_db, "a", "x"),
            scan(big_db, "b", "y"),
            method="smj",
            equi_keys=[(("x", "k"), ("y", "k"))],
        )
        result = run_checked(big_db, plan)
        assert len(result.rows) == 4000

    def test_block_nlj_rescans_inner(self, big_db):
        plan = JoinNode(
            scan(big_db, "a", "x"),
            scan(big_db, "b", "y"),
            method="nlj",
            equi_keys=[(("x", "k"), ("y", "k"))],
        )
        result = run_checked(big_db, plan)
        assert len(result.rows) == 4000
        table_pages = big_db.catalog.table("b").num_pages
        # more than one full inner pass was charged
        assert plan.props.cost > plan.left.props.cost + table_pages

    def test_hash_group_by_spills(self, big_db):
        plan = GroupByNode(
            scan(big_db, "b", "y"),
            group_keys=[("y", "g")],  # 1500 groups: exceeds 3 pages
            aggregates=[("s", AggregateCall("sum", col("y.w")))],
        )
        result = run_checked(big_db, plan)
        assert len(result.rows) == 1500
        assert plan.props.cost > plan.child.props.cost

    def test_external_sort_node(self, big_db):
        plan = SortNode(scan(big_db, "b", "y"), [("y", "w")])
        result = run_checked(big_db, plan)
        values = [row[2] for row in result.rows]
        assert values == sorted(values)
        assert plan.props.cost > plan.child.props.cost

    def test_nlj_with_materialized_derived_inner(self, big_db):
        # inner is a group-by (not a base scan): it must be materialized
        # and re-read per outer block
        inner = GroupByNode(
            scan(big_db, "b", "y"),
            group_keys=[("y", "g")],
            aggregates=[("s", AggregateCall("sum", col("y.w")))],
        )
        plan = JoinNode(
            scan(big_db, "a", "x"),
            inner,
            method="nlj",
            residuals=(),
            equi_keys=[(("x", "k"), ("y", "g"))],
        )
        result = run_checked(big_db, plan)
        assert len(result.rows) == 1500  # one a-row per group key < 1500

    def test_columnar_hash_join_spill_matches_rowexec(self, big_db):
        """A Grace-spilling hash join through ColumnBatch pipelines:
        row-identical (same rows, same order) to the legacy interpreter
        and to the row-batch engine, page IO identical, and the charge
        still equals the cost model's estimate."""

        def hj_plan():
            return JoinNode(
                scan(big_db, "a", "x"),
                scan(big_db, "b", "y"),
                method="hj",
                equi_keys=[(("x", "k"), ("y", "k"))],
            )

        reference_plan = hj_plan()
        CostModel(big_db.catalog, big_db.params).annotate_tree(
            reference_plan
        )
        with big_db.io.measure() as span:
            reference = execute_plan_rows(
                reference_plan,
                ExecutionContext(big_db.catalog, big_db.io, big_db.params),
            )
        reference_io = span.delta
        assert reference_io.total == pytest.approx(reference_plan.props.cost)

        for engine in ("columnar", "rows"):
            plan = hj_plan()
            CostModel(big_db.catalog, big_db.params).annotate_tree(plan)
            context = ExecutionContext(
                big_db.catalog, big_db.io, big_db.params, engine=engine
            )
            with big_db.io.measure() as span:
                result = execute_plan(plan, context)
            assert result.rows == reference.rows, engine
            assert span.delta.page_reads == reference_io.page_reads, engine
            assert span.delta.page_writes == reference_io.page_writes, engine
            # the spill really happened under this engine too
            assert plan.op_metrics.spill_reads > 0, engine
            assert plan.op_metrics.spill_writes > 0, engine

    def test_columnar_group_by_spill_matches_rowexec(self, big_db):
        """A spilling hash group-by through ColumnBatch pipelines:
        differential vs the legacy interpreter, IO equal to estimate."""

        def gb_plan():
            return GroupByNode(
                scan(big_db, "b", "y"),
                group_keys=[("y", "g")],
                aggregates=[
                    ("s", AggregateCall("sum", col("y.w"))),
                    ("n", AggregateCall("count", None)),
                ],
            )

        reference_plan = gb_plan()
        CostModel(big_db.catalog, big_db.params).annotate_tree(
            reference_plan
        )
        with big_db.io.measure() as span:
            reference = execute_plan_rows(
                reference_plan,
                ExecutionContext(big_db.catalog, big_db.io, big_db.params),
            )
        reference_io = span.delta

        for engine in ("columnar", "rows"):
            plan = gb_plan()
            CostModel(big_db.catalog, big_db.params).annotate_tree(plan)
            context = ExecutionContext(
                big_db.catalog, big_db.io, big_db.params, engine=engine
            )
            with big_db.io.measure() as span:
                result = execute_plan(plan, context)
            assert result.rows == reference.rows, engine
            assert span.delta.page_reads == reference_io.page_reads, engine
            assert span.delta.page_writes == reference_io.page_writes, engine
            assert span.delta.total == pytest.approx(
                plan.props.cost
            ), engine
            if engine == "columnar":
                # the grouping ran a compiled accumulation kernel
                assert context.kernels_compiled > 0

    def test_spilled_results_match_in_memory_results(self, big_db):
        """The same join under a huge buffer pool gives the same rows."""
        roomy = Database(CostParams(memory_pages=512))
        roomy.catalog = big_db.catalog  # same data, bigger memory
        spilled_plan = JoinNode(
            scan(big_db, "a", "x"),
            scan(big_db, "b", "y"),
            method="hj",
            equi_keys=[(("x", "k"), ("y", "k"))],
        )
        roomy_plan = JoinNode(
            scan(roomy, "a", "x"),
            scan(roomy, "b", "y"),
            method="hj",
            equi_keys=[(("x", "k"), ("y", "k"))],
        )
        spilled = run_checked(big_db, spilled_plan)
        in_memory = run_checked(roomy, roomy_plan)
        assert rows_equal_bag(spilled.rows, in_memory.rows)
        assert spilled_plan.props.cost > roomy_plan.props.cost
